// Experiment E3 — ambiguous-session growth (paper section 4.7 and
// Theorem 1).
//
// Replays the paper's exponential execution for growing n: with the
// basic protocol the driving process records 2^(n-|G|) ambiguous
// sessions (2^⌊n/2⌋ for odd n, the paper's figure); the optimized
// protocol's garbage collection keeps the record at O(1) on this
// execution, and never above the Theorem-1 bound n - Min_Quorum + 1
// anywhere (verified on random schedules as well).
#include <cstdio>
#include <string>

#include "dv/basic_protocol.hpp"
#include "harness/availability.hpp"
#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/schedule.hpp"
#include "harness/sweep.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

std::size_t run_exponential(ProtocolKind kind, std::uint32_t n) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = 470 + n;
  Cluster cluster(options);

  const std::uint32_t g_size = (n + 2) / 2;  // ceil((n+1)/2)
  ProcessSet g;
  for (std::uint32_t i = 0; i < g_size; ++i) g.insert(ProcessId(i));
  const std::uint32_t tail = n - g_size;

  FaultInjector faults(cluster.sim().network());
  for (std::uint32_t bits = 0; bits < (1u << tail); ++bits) {
    ProcessSet members = g;
    for (std::uint32_t b = 0; b < tail; ++b) {
      if (bits & (1u << b)) members.insert(ProcessId(g_size + b));
    }
    faults.clear();
    for (ProcessId p : members) {
      if (p != ProcessId(0)) faults.drop_to(p, "dv.info");
    }
    std::vector<ProcessSet> groups{members};
    for (std::uint32_t q = 0; q < n; ++q) {
      if (!members.contains(ProcessId(q))) {
        groups.push_back(ProcessSet{ProcessId(q)});
      }
    }
    cluster.partition(groups);
    cluster.settle();
  }
  faults.clear();
  return dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(0)))
      .max_ambiguous_recorded();
}

std::size_t random_schedule_high_water(ProtocolKind kind, std::uint32_t n,
                                       std::size_t min_quorum) {
  // The five seeds are independent simulations; run them on the sweep
  // pool. max() over the index-ordered slots is order-insensitive, so
  // the verdict is identical at any thread count.
  const auto high_waters = sweep_map<std::size_t>(5, 0, [&](std::size_t i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    ScheduleOptions schedule_options;
    schedule_options.seed = seed * 997 + n;
    schedule_options.duration = 1'500'000;
    const auto schedule = generate_schedule(ProcessSet::range(n), schedule_options);
    ClusterOptions base;
    base.n = n;
    base.config.min_quorum = min_quorum;
    return run_schedule(kind, schedule, base).max_ambiguous;
  });
  std::size_t high_water = 0;
  for (const std::size_t hw : high_waters) high_water = std::max(high_water, hw);
  return high_water;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("E3: ambiguous-session growth (paper 4.7 + Theorem 1)\n");

  std::puts("The paper's adversarial execution (section 4.7):");
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E3"));
  JsonValue adversarial_rows = JsonValue::array();
  Table adversarial({"n", "sessions driven", "basic records", "paper 2^(n-|G|)",
                     "optimized records"});
  for (std::uint32_t n : {4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    const std::size_t sessions = 1u << (n - (n + 2) / 2);
    const std::size_t basic = run_exponential(ProtocolKind::kBasic, n);
    const std::size_t optimized = run_exponential(ProtocolKind::kOptimized, n);
    adversarial.add_row({std::to_string(n), std::to_string(sessions),
                         std::to_string(basic), std::to_string(sessions),
                         std::to_string(optimized)});
    JsonValue row = JsonValue::object();
    row.set("n", JsonValue(std::uint64_t{n}));
    row.set("sessions_driven", JsonValue(std::uint64_t{sessions}));
    row.set("basic_records", JsonValue(std::uint64_t{basic}));
    row.set("optimized_records", JsonValue(std::uint64_t{optimized}));
    adversarial_rows.push_back(std::move(row));
  }
  result.set("adversarial", std::move(adversarial_rows));
  std::printf("%s\n", adversarial.to_string().c_str());

  std::puts("Random failure schedules (5 seeds each), high-water marks vs the");
  std::puts("Theorem-1 bound n - Min_Quorum + 1 for the optimized protocol:");
  Table random_table({"n", "Min_Quorum", "basic high-water",
                      "optimized high-water", "Theorem 1 bound"});
  JsonValue random_rows = JsonValue::array();
  for (std::uint32_t n : {5u, 7u, 9u}) {
    for (std::size_t min_quorum : {std::size_t{1}, std::size_t{2}}) {
      const auto basic =
          random_schedule_high_water(ProtocolKind::kBasic, n, min_quorum);
      const auto optimized =
          random_schedule_high_water(ProtocolKind::kOptimized, n, min_quorum);
      random_table.add_row({std::to_string(n), std::to_string(min_quorum),
                            std::to_string(basic), std::to_string(optimized),
                            std::to_string(n - min_quorum + 1)});
      JsonValue row = JsonValue::object();
      row.set("n", JsonValue(std::uint64_t{n}));
      row.set("min_quorum", JsonValue(std::uint64_t{min_quorum}));
      row.set("basic_high_water", JsonValue(std::uint64_t{basic}));
      row.set("optimized_high_water", JsonValue(std::uint64_t{optimized}));
      row.set("theorem1_bound", JsonValue(std::uint64_t{n - min_quorum + 1}));
      random_rows.push_back(std::move(row));
    }
  }
  result.set("random_schedules", std::move(random_rows));
  std::printf("%s\n", random_table.to_string().c_str());
  std::puts("Paper expectation: column 3 doubles with every step of n (odd n:");
  std::puts("2^ floor(n/2)); the optimized protocol stays constant on the");
  std::puts("adversarial run and always within the Theorem-1 bound.");
  emit_bench_result("ambiguous_growth", result);
  return 0;
}
