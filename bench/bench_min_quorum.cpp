// Experiment E8 — the Min_Quorum mechanism (paper sections 1 and 4.1).
//
// The criticism Min_Quorum answers: under pure dynamic voting the quorum
// can shrink to a single process, and if that process then dies, "almost
// all of the processes in the system are connected but cannot form a new
// quorum". Min_Quorum = x rules out quorums below x AND guarantees any
// component of more than n - x core members proceeds regardless of
// history.
//
// Two measurements over a Min_Quorum sweep:
//   (1) the worst case made concrete: shrink the quorum chain to one
//       process, crash it, reconnect the other n-1;
//   (2) Monte-Carlo availability — the trade-off curve (larger
//       Min_Quorum sacrifices deep-shrink availability but caps the
//       damage a tiny stale quorum can do).
#include <cstdio>
#include <string>

#include "harness/availability.hpp"
#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

constexpr std::uint32_t kN = 5;

struct ShrinkOutcome {
  std::string deepest;   // smallest primary the chain reached
  std::string rest_after_loss;  // do the n-1 others recover once it dies?
};

ShrinkOutcome run_shrink(std::size_t min_quorum) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = kN;
  options.config.min_quorum = min_quorum;
  options.sim.seed = 80 + min_quorum;
  Cluster cluster(options);
  cluster.start();

  // Shrink towards the top-ranked process: 5 -> 3 -> 2 -> 1, recording
  // the smallest primary the chain ever reaches.
  std::optional<Session> deepest = cluster.live_primary();
  auto note_depth = [&] {
    const auto live = cluster.live_primary();
    if (live && (!deepest || live->members.size() < deepest->members.size())) {
      deepest = live;
    }
  };
  cluster.partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
  cluster.settle();
  note_depth();
  cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({2}),
                     ProcessSet::of({0, 1})});
  cluster.settle();
  note_depth();
  cluster.partition({ProcessSet::of({4}), ProcessSet::of({3}),
                     ProcessSet::of({2}), ProcessSet::of({0, 1})});
  cluster.settle();
  note_depth();

  ShrinkOutcome outcome;
  outcome.deepest = deepest ? deepest->members.to_string() : "none";

  // The current quorum holder dies; everyone else reconnects.
  cluster.crash(ProcessId(4));
  cluster.partition({ProcessSet::of({0, 1, 2, 3})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  outcome.rest_after_loss = primary ? primary->members.to_string() : "STUCK";
  return outcome;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::printf("E8: the Min_Quorum floor (n = %u)\n\n", kN);

  std::puts("(1) shrink the quorum chain 5->3->2->1, then crash the holder and");
  std::puts("    reconnect the other four:");
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E8"));
  result.set("n", JsonValue(std::uint64_t{kN}));
  JsonValue shrink_rows = JsonValue::array();
  Table shrink_table({"Min_Quorum", "deepest primary", "other 4 after loss",
                      "always-safe size (> n - Min_Quorum)"});
  for (std::size_t min_quorum : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    const auto outcome = run_shrink(min_quorum);
    shrink_table.add_row({std::to_string(min_quorum), outcome.deepest,
                          outcome.rest_after_loss,
                          ">= " + std::to_string(kN - min_quorum + 1)});
    JsonValue row = JsonValue::object();
    row.set("min_quorum", JsonValue(std::uint64_t{min_quorum}));
    row.set("deepest_primary", JsonValue(outcome.deepest));
    row.set("rest_after_loss", JsonValue(outcome.rest_after_loss));
    row.set("always_safe_size", JsonValue(std::uint64_t{kN - min_quorum + 1}));
    shrink_rows.push_back(std::move(row));
  }
  result.set("shrink", std::move(shrink_rows));
  std::printf("%s\n", shrink_table.to_string().c_str());

  std::puts("(2) Monte-Carlo availability vs Min_Quorum (paired schedules):");
  Table avail_table({"Min_Quorum", "gap=120ms", "gap=50ms", "gap=25ms"});
  JsonValue avail_rows = JsonValue::array();
  for (std::size_t min_quorum : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<std::string> row{std::to_string(min_quorum)};
    JsonValue availability = JsonValue::object();
    for (SimTime gap : {120'000u, 50'000u, 25'000u}) {
      ClusterOptions base;
      base.n = kN;
      base.config.min_quorum = min_quorum;
      ScheduleOptions schedule;
      schedule.duration = 4'000'000;
      schedule.mean_event_gap = gap;
      schedule.seed = 8000 + gap;
      const auto results = compare_protocols({ProtocolKind::kOptimized}, base,
                                             schedule, 5);
      row.push_back(format_percent(results[0].availability));
      availability.set("gap_" + std::to_string(gap),
                       JsonValue(results[0].availability));
    }
    avail_table.add_row(row);
    JsonValue json_row = JsonValue::object();
    json_row.set("min_quorum", JsonValue(std::uint64_t{min_quorum}));
    json_row.set("availability", std::move(availability));
    avail_rows.push_back(std::move(json_row));
  }
  result.set("availability_sweep", std::move(avail_rows));
  std::printf("%s\n", avail_table.to_string().c_str());

  std::puts("Paper expectation: with Min_Quorum = 1 the chain reaches a single");
  std::puts("process and its loss strands the other four (the dynamic-voting");
  std::puts("criticism); Min_Quorum = 2 stops the shrink at two members and a");
  std::puts("component of > n-2 = 3 core members always proceeds. The");
  std::puts("availability sweep shows the trade-off is schedule-dependent —");
  std::puts("the floor costs some availability in deep-partition regimes and");
  std::puts("buys it back whenever small quorums would have died.");
  emit_bench_result("min_quorum", result);
  return 0;
}
