// Scale bench — simulator throughput across cluster sizes, and the
// parallel seed-sweep harness exercised end to end.
//
// For each n the same random failure schedules run twice through the
// sweep pool (harness/sweep.hpp): once on 1 thread, once on the full
// pool. The per-seed digests (events executed, horizon, formed sessions,
// message/byte counts) must match exactly between the two passes — the
// sweep's determinism contract — and the reported throughput is virtual
// events per second of wall time. Large n also pushes ProcessSet past
// its 256-id inline-bitset limit, so the sorted-vector fallback is on
// the measured path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/schedule.hpp"
#include "harness/sweep.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

/// 32 seeds per n up to 128. A single full-cluster session already costs
/// O(n^2) messages, so the n >= 256 rows default to a 4-seed sample to
/// keep the bench under a few minutes on one core; set
/// DYNVOTE_SCALE_FULL=1 for the full 32-seed grid everywhere.
std::size_t seeds_for(std::uint32_t n) {
  if (std::getenv("DYNVOTE_SCALE_FULL") != nullptr) return 32;
  return n <= 128 ? 32 : 4;
}

/// Virtual duration of the failure schedule. Shorter for n >= 256: the
/// initial full-cluster session dominates there, and more topology
/// events just multiply an already-measured cost.
SimTime duration_for(std::uint32_t n) {
  return n <= 128 ? SimTime{600'000} : SimTime{120'000};
}

struct RunDigest {
  std::uint64_t executed = 0;  // simulator events run
  std::uint64_t horizon = 0;   // final virtual time
  std::uint64_t formed = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_cell(std::uint32_t n, std::uint64_t seed) {
  ScheduleOptions schedule_options;
  schedule_options.seed = 77'000 + seed;
  schedule_options.duration = duration_for(n);
  schedule_options.mean_event_gap = 120'000;
  const auto schedule =
      generate_schedule(ProcessSet::range(n), schedule_options);

  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = n;
  options.sim.seed = seed;
  // Throughput bench: skip the debug replay-equals-snapshot audit (it
  // re-reads O(state) per persist; bench_persistence measures its cost).
  options.config.persistence.cross_check = false;
  Cluster cluster(options);
  sim::Simulator& sim = cluster.sim();
  for (const ScheduleEvent& event : schedule) {
    sim.queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const ProcessSet& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  cluster.merge();
  cluster.settle();

  RunDigest digest;
  digest.executed = sim.queue().executed();
  digest.horizon = sim.now();
  digest.formed = cluster.checker().formed_session_count();
  digest.messages = sim.network().stats().messages_sent;
  digest.bytes = sim.network().stats().bytes_sent;
  return digest;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::size_t pool = sweep_thread_count(0);
  std::puts("Scale: simulator throughput by cluster size, serial vs sweep pool");
  std::printf("       pool = %zu thread(s); DYNVOTE_THREADS overrides, "
              "DYNVOTE_SCALE_FULL=1 forces 32 seeds at every n\n\n",
              pool);

  Table table({"n", "seeds", "events", "serial ms", "pool ms", "speedup",
               "events/sec (pool)"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("scale"));
  result.set("pool_threads", JsonValue(std::uint64_t{pool}));
  JsonValue rows = JsonValue::array();
  bool deterministic = true;

  for (std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const std::size_t seeds = seeds_for(n);
    using Clock = std::chrono::steady_clock;
    const auto serial_start = Clock::now();
    const auto serial = sweep_map<RunDigest>(
        seeds, 1, [n](std::size_t i) { return run_cell(n, i); });
    const auto serial_end = Clock::now();
    const auto pooled = sweep_map<RunDigest>(
        seeds, pool, [n](std::size_t i) { return run_cell(n, i); });
    const auto pooled_end = Clock::now();

    const bool match = serial == pooled;
    deterministic &= match;

    std::uint64_t events = 0;
    for (const RunDigest& d : pooled) events += d.executed;
    const double serial_ms =
        std::chrono::duration<double, std::milli>(serial_end - serial_start)
            .count();
    const double pool_ms =
        std::chrono::duration<double, std::milli>(pooled_end - serial_end)
            .count();
    const double speedup = pool_ms > 0 ? serial_ms / pool_ms : 0;
    const double events_per_sec =
        pool_ms > 0 ? static_cast<double>(events) * 1000.0 / pool_ms : 0;

    char speedup_text[32];
    std::snprintf(speedup_text, sizeof speedup_text, "%.2fx%s", speedup,
                  match ? "" : " MISMATCH");
    char eps_text[32];
    std::snprintf(eps_text, sizeof eps_text, "%.0f", events_per_sec);
    table.add_row({std::to_string(n), std::to_string(seeds),
                   std::to_string(events),
                   std::to_string(static_cast<long long>(serial_ms)),
                   std::to_string(static_cast<long long>(pool_ms)),
                   speedup_text, eps_text});

    JsonValue row = JsonValue::object();
    row.set("n", JsonValue(std::uint64_t{n}));
    row.set("seeds", JsonValue(std::uint64_t{seeds}));
    row.set("events", JsonValue(events));
    row.set("serial_ms", JsonValue(serial_ms));
    row.set("pool_ms", JsonValue(pool_ms));
    row.set("speedup", JsonValue(speedup));
    row.set("events_per_sec", JsonValue(events_per_sec));
    row.set("digests_match", JsonValue(match));
    rows.push_back(std::move(row));
  }

  result.set("rows", std::move(rows));
  result.set("deterministic", JsonValue(deterministic));
  std::printf("%s\n", table.to_string().c_str());
  if (!deterministic) {
    std::puts("FAIL: pooled digests diverge from the serial pass");
  } else {
    std::puts("Per-seed digests identical between the serial and pooled passes.");
  }
  emit_bench_result("scale", result);
  return deterministic ? 0 : 1;
}
