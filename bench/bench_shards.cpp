// Shard bench — the multi-group service at four-digit fleet sizes.
//
// Each row runs a sharded fleet (src/shard/): hundreds of independent
// primary-component groups over one shared simulator, with machines
// hosting replicas of many groups and every fault cutting machines —
// so one fleet event reconfigures all hosted groups at once. Each seed
// drives a fixed schedule of correlated partitions, a machine
// crash/recover cycle, and key-value traffic routed by the ShardMap,
// then audits every group for split-brain evidence (none, ever, for the
// consistent protocol).
//
// Reported: aggregate formed-quorums/sec (distinct formed sessions
// across all groups per wall second of the pooled pass) and the p50/p99
// reconfiguration latency in virtual ticks (fleet fault -> first
// formation in each affected group), estimated from the merged
// power-of-two histograms (obs::Histogram::quantile) the telemetry
// layer maintains per group. Every seed runs twice through the sweep
// pool (1 thread, then the full pool); the per-seed digests — the
// fleet-telemetry JSON included — must be byte-identical: the sweep
// determinism contract at fleet scale.
//
// Two extra sections exercise the telemetry layer itself:
//   * overhead: the small shape runs with telemetry on and off
//     (best-of-N CPU time, identical digests required); the overhead
//     must stay within the 5% budget that tools/check_perf.py gates
//     via telemetry_overhead_frac_budget;
//   * violation demo: a two-group fleet on the INCONSISTENT naive
//     protocol replays the paper's section-4.5 scenario in group 0,
//     which must produce a consistency violation and a flight-recorder
//     post-mortem (exported for dvtrace fleet / --group).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "harness/bench_report.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "harness/trace_replay.hpp"
#include "obs/metrics.hpp"
#include "shard/sharded_fleet.hpp"
#include "shard/sharded_kv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

struct FleetShape {
  std::uint32_t groups;
  std::uint32_t group_size;
  std::uint32_t machines;
};

struct RunDigest {
  std::uint64_t executed = 0;
  std::uint64_t horizon = 0;
  std::uint64_t formed = 0;
  std::uint64_t messages = 0;
  std::uint64_t accepted_writes = 0;
  std::uint64_t rejected_writes = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_sum = 0;  // virtual ticks
  std::uint64_t divergences = 0;
  std::uint64_t violations = 0;

  bool operator==(const RunDigest&) const = default;
};

struct RunResult {
  RunDigest digest;
  /// Reconfiguration latencies folded into the power-of-two histogram
  /// the row percentiles are estimated from; merging across seeds in
  /// index order keeps the estimate deterministic at any pool width.
  obs::Histogram reconfig_hist;
  /// The full fleet-telemetry document (empty when telemetry is off).
  /// Part of the digest comparison: the export itself must be
  /// byte-identical between the serial and pooled passes.
  std::string telemetry;

  bool operator==(const RunResult&) const = default;
};

/// A random disjoint machine partition covering every machine: shuffle,
/// then cut into `sides` contiguous chunks.
shard::ShardedFleet::MachinePartition random_partition(Rng& rng,
                                                       std::uint32_t machines,
                                                       std::uint32_t sides) {
  std::vector<std::uint32_t> order(machines);
  for (std::uint32_t m = 0; m < machines; ++m) order[m] = m;
  for (std::uint32_t i = machines - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  shard::ShardedFleet::MachinePartition out(sides);
  for (std::uint32_t m = 0; m < machines; ++m) {
    out[m % sides].push_back(order[m]);
  }
  return out;
}

RunResult run_cell(const FleetShape& shape, std::uint64_t seed,
                   bool telemetry, int rounds = 4) {
  shard::ShardedFleetOptions options;
  options.num_groups = shape.groups;
  options.group_size = shape.group_size;
  options.num_machines = shape.machines;
  options.kind = ProtocolKind::kOptimized;
  options.sim.seed = 91'000 + seed;
  options.telemetry.enabled = telemetry;
  shard::ShardedFleet fleet(options);
  shard::ShardedKv kv(fleet);
  Rng schedule_rng(13'000 + seed);

  fleet.start();

  constexpr int kWritesPerRound = 64;
  std::uint64_t next_key = 0;
  for (int round = 0; round < rounds; ++round) {
    // Correlated cut: two or three sides, hitting every machine and
    // therefore every hosted group at once.
    const auto sides = 2 + (round % 2);
    fleet.partition_fleet(random_partition(
        schedule_rng, shape.machines, static_cast<std::uint32_t>(sides)));
    fleet.settle();
    for (int w = 0; w < kWritesPerRound; ++w) {
      kv.write("key-" + std::to_string(next_key++),
               "r" + std::to_string(round));
    }
    if (round == 1) {
      // One machine dies mid-partition: every group with a replica on it
      // reconfigures again.
      const auto machine = static_cast<std::uint32_t>(
          schedule_rng.next_below(shape.machines));
      fleet.crash_machine(machine);
      fleet.settle();
      fleet.recover_machine(machine);
      fleet.settle();
    }
    fleet.merge_fleet();
    fleet.settle();
    kv.sync_primaries();
  }

  RunResult result;
  for (const double sample : fleet.reconfig_latencies()) {
    result.reconfig_hist.observe(static_cast<std::uint64_t>(sample));
  }
  if (telemetry) result.telemetry = fleet.telemetry_json().dump();
  RunDigest& digest = result.digest;
  digest.executed = fleet.sim().queue().executed();
  digest.horizon = fleet.sim().now();
  digest.formed = fleet.total_formed_sessions();
  digest.messages = fleet.sim().network().stats().messages_sent;
  digest.accepted_writes = kv.accepted_writes();
  digest.rejected_writes = kv.rejected_writes();
  digest.latency_count = fleet.reconfig_latencies().size();
  for (const double sample : fleet.reconfig_latencies()) {
    digest.latency_sum += static_cast<std::uint64_t>(sample);
  }
  digest.divergences = kv.audit().size();
  // Order checks are O(k^3) in formed sessions per group; groups are
  // small, so the default limit is fine.
  digest.violations = fleet.check_all_groups().size();
  return result;
}

/// Process CPU time in milliseconds. Wall clocks on shared hosts
/// jitter +/-10% on the ~300ms cells below; CPU time strips the
/// scheduler out of the measurement and leaves only frequency drift,
/// which best-of-N then suppresses.
double cpu_time_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Telemetry-overhead measurement on the small shape: N adjacent
/// on/off pairs of long cells (`rounds` fault rounds, ~300ms each at
/// the defaults), CPU-timed, identical simulation digests required.
///
/// The estimator is the MINIMUM over per-pair ratios, floored at 0.
/// Rationale: shared-runner noise here comes in multi-second episodes
/// (frequency scaling, cache contention) that inflate CPU time of
/// identical work by 5-10%, which no per-mode best-of-N can see
/// through — but a real telemetry regression shifts EVERY pair by the
/// regression, while a noise episode must land on all N pairs at once
/// to fake one. The cleanest pair is therefore the honest reading: a
/// true 2x cost still fails the 5% budget by an order of magnitude,
/// and the ~1-2% true overhead passes regardless of episodes.
/// Adjacent pairing (not pooled minima) keeps both sides of each
/// ratio inside the same noise epoch; alternating which mode runs
/// first cancels intra-pair drift across pairs.
bool measure_overhead(const FleetShape& shape, double& overhead, int reps,
                      int rounds) {
  // Discarded warmup pair: the very first cell runs on a pristine heap
  // no later cell sees again, and letting it into a ratio biases that
  // pair by a few percent.
  (void)run_cell(shape, 0, /*telemetry=*/false, rounds);
  (void)run_cell(shape, 0, /*telemetry=*/true, rounds);
  double best_ratio = 0;
  RunDigest digest_on, digest_off;
  for (int rep = 0; rep < reps; ++rep) {
    const bool off_first = rep % 2 == 0;
    const double t0 = cpu_time_ms();
    const RunResult first =
        run_cell(shape, 0, /*telemetry=*/!off_first, rounds);
    const double t1 = cpu_time_ms();
    const RunResult second =
        run_cell(shape, 0, /*telemetry=*/off_first, rounds);
    const double t2 = cpu_time_ms();
    const double ms_off = off_first ? t1 - t0 : t2 - t1;
    const double ms_on = off_first ? t2 - t1 : t1 - t0;
    const double ratio = ms_off > 0 ? ms_on / ms_off : 1.0;
    if (rep == 0 || ratio < best_ratio) best_ratio = ratio;
    digest_on = off_first ? second.digest : first.digest;
    digest_off = off_first ? first.digest : second.digest;
  }
  overhead = std::max(0.0, best_ratio - 1.0);
  return digest_on == digest_off;
}

struct ViolationDemo {
  std::uint64_t violations = 0;
  std::size_t postmortems = 0;
  bool ok = false;
};

/// The paper's section-4.5 split-brain scenario, staged inside group 0
/// of a two-group fleet on the deliberately INCONSISTENT naive
/// protocol: replica 2 misses the closing info messages of the
/// {0,1,2}-side session, then the cut moves and both {0,1} and {2,3,4}
/// go primary. The consistency checker must flag it and the group's
/// flight recorder must dump a post-mortem whose causal chains dvtrace
/// fleet renders. Group 1 reconfigures normally throughout — its ring
/// stays out of the post-mortem, which is the per-group isolation the
/// recorder exists for.
ViolationDemo run_violation_demo() {
  shard::ShardedFleetOptions options;
  options.num_groups = 2;
  options.group_size = 5;
  options.num_machines = 5;
  options.kind = ProtocolKind::kNaiveDynamic;
  options.sim.seed = 424'242;
  shard::ShardedFleet fleet(options);
  FaultInjector faults(fleet.sim().network());
  fleet.start();

  // Machine m hosts group-0 replica m, so the machine cuts below
  // reproduce the cluster-level recipe exactly for group 0.
  const int rule = faults.drop_to(ProcessId(2), "dv.info", 2);
  fleet.partition_fleet({{0, 1, 2}, {3, 4}});
  fleet.settle();
  const bool dropped = faults.dropped(rule) == 2;
  faults.clear();
  fleet.partition_fleet({{0, 1}, {2, 3, 4}});
  fleet.settle();

  ViolationDemo demo;
  demo.violations = fleet.check_all_groups().size();
  demo.postmortems = fleet.check_and_record_postmortems();
  demo.ok = dropped && demo.violations > 0 && demo.postmortems > 0;
  write_json_file("fleet_violation_telemetry.json", fleet.telemetry_json());

  // Sharded trace export (meta carries the fleet shape), the input for
  // dvtrace --group: per-group replay of the same evidence.
  obs::TraceMeta meta;
  meta.protocol = to_string(options.kind);
  meta.n = fleet.fleet_n();
  meta.min_quorum = options.min_quorum;
  meta.seed = options.sim.seed;
  ProcessSet all;
  for (std::uint32_t g = 0; g < options.num_groups; ++g) {
    for (const ProcessId p : fleet.group_members(g)) all.insert(p);
  }
  meta.core = std::move(all);
  meta.num_groups = options.num_groups;
  meta.group_size = options.group_size;
  write_json_file("fleet_trace.json",
                  trace_to_json(meta, fleet.sim().trace()));
  return demo;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::size_t pool = sweep_thread_count(0);
  const bool full = std::getenv("DYNVOTE_SHARDS_FULL") != nullptr;
  // Quick mode trims to the small shape with 2 seeds: the sanitizer
  // passes in run_experiments.sh use it to race/overflow-check the
  // multi-group path without paying the four-digit row under ASan.
  // Wall-time assertions are also waived there — sanitizer slowdowns
  // swamp the telemetry overhead being measured.
  const bool quick = std::getenv("DYNVOTE_SHARDS_QUICK") != nullptr;
  std::puts("Shards: multi-group fleet throughput, serial vs sweep pool");
  std::printf("       pool = %zu thread(s); DYNVOTE_THREADS overrides, "
              "DYNVOTE_SHARDS_FULL=1 adds the n=2048 row, "
              "DYNVOTE_SHARDS_QUICK=1 trims for sanitizer runs\n\n",
              pool);

  std::vector<FleetShape> shapes = {
      {32, 8, 16},    // n = 256
      {128, 8, 32},   // n = 1024 — the four-digit flagship row
  };
  if (full) shapes.push_back({256, 8, 64});  // n = 2048
  if (quick) shapes.resize(1);
  const std::size_t seeds_per_shape = quick ? 2 : 4;

  Table table({"groups", "gsize", "machines", "n", "seeds", "formed",
               "formed/sec", "p50 reconf", "p99 reconf", "pool ms",
               "speedup"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("shards"));
  result.set("pool_threads", JsonValue(std::uint64_t{pool}));
  JsonValue rows = JsonValue::array();
  bool deterministic = true;
  bool clean = true;

  for (const FleetShape& shape : shapes) {
    const std::size_t seeds = seeds_per_shape;
    using Clock = std::chrono::steady_clock;
    const auto serial_start = Clock::now();
    const auto serial = sweep_map<RunResult>(
        seeds, 1,
        [&shape](std::size_t i) { return run_cell(shape, i, true); });
    const auto serial_end = Clock::now();
    const auto pooled = sweep_map<RunResult>(
        seeds, pool,
        [&shape](std::size_t i) { return run_cell(shape, i, true); });
    const auto pooled_end = Clock::now();

    const bool match = serial == pooled;
    deterministic &= match;

    std::uint64_t formed = 0;
    std::uint64_t divergences = 0;
    std::uint64_t violations = 0;
    std::uint64_t accepted = 0;
    obs::Histogram latency;
    for (const RunResult& r : pooled) {
      formed += r.digest.formed;
      divergences += r.digest.divergences;
      violations += r.digest.violations;
      accepted += r.digest.accepted_writes;
      latency.merge_from(r.reconfig_hist);
    }
    clean &= divergences == 0 && violations == 0;

    const double serial_ms =
        std::chrono::duration<double, std::milli>(serial_end - serial_start)
            .count();
    const double pool_ms =
        std::chrono::duration<double, std::milli>(pooled_end - serial_end)
            .count();
    const double speedup = pool_ms > 0 ? serial_ms / pool_ms : 0;
    const double formed_per_sec =
        pool_ms > 0 ? static_cast<double>(formed) * 1000.0 / pool_ms : 0;
    const double p50 = latency.quantile(0.50);
    const double p99 = latency.quantile(0.99);

    char speedup_text[32];
    std::snprintf(speedup_text, sizeof speedup_text, "%.2fx%s", speedup,
                  match ? "" : " MISMATCH");
    const std::uint32_t n = shape.groups * shape.group_size;
    table.add_row({std::to_string(shape.groups),
                   std::to_string(shape.group_size),
                   std::to_string(shape.machines), std::to_string(n),
                   std::to_string(seeds), std::to_string(formed),
                   format_double(formed_per_sec, 0), format_double(p50, 0),
                   format_double(p99, 0),
                   std::to_string(static_cast<long long>(pool_ms)),
                   speedup_text});

    JsonValue row = JsonValue::object();
    row.set("groups", JsonValue(std::uint64_t{shape.groups}));
    row.set("group_size", JsonValue(std::uint64_t{shape.group_size}));
    row.set("machines", JsonValue(std::uint64_t{shape.machines}));
    row.set("n", JsonValue(std::uint64_t{n}));
    row.set("seeds", JsonValue(std::uint64_t{seeds}));
    row.set("formed", JsonValue(formed));
    row.set("formed_per_sec", JsonValue(formed_per_sec));
    row.set("reconfig_p50_ticks", JsonValue(p50));
    row.set("reconfig_p99_ticks", JsonValue(p99));
    row.set("reconfig_samples", JsonValue(latency.count()));
    row.set("accepted_writes", JsonValue(accepted));
    row.set("divergences", JsonValue(divergences));
    row.set("violations", JsonValue(violations));
    row.set("serial_ms", JsonValue(serial_ms));
    row.set("pool_ms", JsonValue(pool_ms));
    row.set("speedup", JsonValue(speedup));
    row.set("digests_match", JsonValue(match));
    rows.push_back(std::move(row));

    // The flagship shape's seed-0 telemetry is the exported artifact
    // dvtrace fleet renders in run_experiments.sh. In quick mode the
    // small shape stands in.
    if ((quick && shape.groups == shapes.back().groups) ||
        shape.groups == 128) {
      write_json_file("fleet_telemetry.json",
                      JsonValue::parse(pooled.front().telemetry));
    }
  }

  result.set("rows", std::move(rows));
  result.set("deterministic", JsonValue(deterministic));
  result.set("clean", JsonValue(clean));

  // Telemetry overhead: the whole layer must stay within its 5% budget
  // (check_perf.py gates the exported fraction against the budget key).
  double overhead = 0;
  // Quick mode keeps the digest cross-check but trims the timing work:
  // sanitizer runs waive the budget anyway.
  const bool modes_match = quick
                               ? measure_overhead(shapes.front(), overhead,
                                                  /*reps=*/2, /*rounds=*/6)
                               : measure_overhead(shapes.front(), overhead,
                                                  /*reps=*/6, /*rounds=*/24);
  constexpr double kOverheadBudget = 0.05;
  const bool overhead_ok = modes_match && (quick || overhead <= kOverheadBudget);
  result.set("telemetry_overhead_frac", JsonValue(overhead));
  result.set("telemetry_overhead_frac_budget", JsonValue(kOverheadBudget));
  result.set("telemetry_modes_digest_match", JsonValue(modes_match));
  std::printf("telemetry overhead: %.2f%% of CPU time (budget %.0f%%), "
              "digests %s across modes\n",
              overhead * 100.0, kOverheadBudget * 100.0,
              modes_match ? "identical" : "DIVERGED");

  // Violation demo: the flight recorder must turn an injected
  // split-brain into a post-mortem.
  const ViolationDemo demo = run_violation_demo();
  JsonValue demo_json = JsonValue::object();
  demo_json.set("violations", JsonValue(demo.violations));
  demo_json.set("postmortems", JsonValue(std::uint64_t{demo.postmortems}));
  demo_json.set("ok", JsonValue(demo.ok));
  result.set("violation_demo", std::move(demo_json));
  std::printf("violation demo: %llu violation(s), %zu post-mortem(s)%s\n",
              static_cast<unsigned long long>(demo.violations),
              demo.postmortems, demo.ok ? "" : " — FAIL");

  std::printf("%s\n", table.to_string().c_str());
  if (!deterministic) {
    std::puts("FAIL: pooled digests diverge from the serial pass");
  } else if (!clean) {
    std::puts("FAIL: a consistent protocol produced divergences/violations");
  } else if (!overhead_ok) {
    std::puts("FAIL: telemetry overhead breached its budget or perturbed "
              "the simulation");
  } else if (!demo.ok) {
    std::puts("FAIL: injected violation produced no flight-recorder "
              "post-mortem");
  } else {
    std::puts(
        "Per-seed digests identical between passes; every group audit clean.");
  }
  emit_bench_result("shards", result);
  return deterministic && clean && overhead_ok && demo.ok ? 0 : 1;
}
