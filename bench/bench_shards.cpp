// Shard bench — the multi-group service at four-digit fleet sizes.
//
// Each row runs a sharded fleet (src/shard/): hundreds of independent
// primary-component groups over one shared simulator, with machines
// hosting replicas of many groups and every fault cutting machines —
// so one fleet event reconfigures all hosted groups at once. Each seed
// drives a fixed schedule of correlated partitions, a machine
// crash/recover cycle, and key-value traffic routed by the ShardMap,
// then audits every group for split-brain evidence (none, ever, for the
// consistent protocol).
//
// Reported: aggregate formed-quorums/sec (distinct formed sessions
// across all groups per wall second of the pooled pass) and the p50/p99
// reconfiguration latency in virtual ticks (fleet fault -> first
// formation in each affected group). Every seed runs twice through the
// sweep pool (1 thread, then the full pool); the per-seed digests must
// be byte-identical — the sweep determinism contract at fleet scale.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.hpp"
#include "harness/sweep.hpp"
#include "shard/sharded_fleet.hpp"
#include "shard/sharded_kv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

struct FleetShape {
  std::uint32_t groups;
  std::uint32_t group_size;
  std::uint32_t machines;
};

struct RunDigest {
  std::uint64_t executed = 0;
  std::uint64_t horizon = 0;
  std::uint64_t formed = 0;
  std::uint64_t messages = 0;
  std::uint64_t accepted_writes = 0;
  std::uint64_t rejected_writes = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_sum = 0;  // virtual ticks
  std::uint64_t divergences = 0;
  std::uint64_t violations = 0;

  bool operator==(const RunDigest&) const = default;
};

struct RunResult {
  RunDigest digest;
  std::vector<double> latencies;  // virtual ticks, formation order

  bool operator==(const RunResult&) const = default;
};

/// A random disjoint machine partition covering every machine: shuffle,
/// then cut into `sides` contiguous chunks.
shard::ShardedFleet::MachinePartition random_partition(Rng& rng,
                                                       std::uint32_t machines,
                                                       std::uint32_t sides) {
  std::vector<std::uint32_t> order(machines);
  for (std::uint32_t m = 0; m < machines; ++m) order[m] = m;
  for (std::uint32_t i = machines - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  shard::ShardedFleet::MachinePartition out(sides);
  for (std::uint32_t m = 0; m < machines; ++m) {
    out[m % sides].push_back(order[m]);
  }
  return out;
}

RunResult run_cell(const FleetShape& shape, std::uint64_t seed) {
  shard::ShardedFleetOptions options;
  options.num_groups = shape.groups;
  options.group_size = shape.group_size;
  options.num_machines = shape.machines;
  options.kind = ProtocolKind::kOptimized;
  options.sim.seed = 91'000 + seed;
  shard::ShardedFleet fleet(options);
  shard::ShardedKv kv(fleet);
  Rng schedule_rng(13'000 + seed);

  fleet.start();

  constexpr int kRounds = 4;
  constexpr int kWritesPerRound = 64;
  std::uint64_t next_key = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Correlated cut: two or three sides, hitting every machine and
    // therefore every hosted group at once.
    const auto sides = 2 + (round % 2);
    fleet.partition_fleet(random_partition(
        schedule_rng, shape.machines, static_cast<std::uint32_t>(sides)));
    fleet.settle();
    for (int w = 0; w < kWritesPerRound; ++w) {
      kv.write("key-" + std::to_string(next_key++),
               "r" + std::to_string(round));
    }
    if (round == 1) {
      // One machine dies mid-partition: every group with a replica on it
      // reconfigures again.
      const auto machine = static_cast<std::uint32_t>(
          schedule_rng.next_below(shape.machines));
      fleet.crash_machine(machine);
      fleet.settle();
      fleet.recover_machine(machine);
      fleet.settle();
    }
    fleet.merge_fleet();
    fleet.settle();
    kv.sync_primaries();
  }

  RunResult result;
  result.latencies = fleet.reconfig_latencies();
  RunDigest& digest = result.digest;
  digest.executed = fleet.sim().queue().executed();
  digest.horizon = fleet.sim().now();
  digest.formed = fleet.total_formed_sessions();
  digest.messages = fleet.sim().network().stats().messages_sent;
  digest.accepted_writes = kv.accepted_writes();
  digest.rejected_writes = kv.rejected_writes();
  digest.latency_count = result.latencies.size();
  for (const double sample : result.latencies) {
    digest.latency_sum += static_cast<std::uint64_t>(sample);
  }
  digest.divergences = kv.audit().size();
  // Order checks are O(k^3) in formed sessions per group; groups are
  // small, so the default limit is fine.
  digest.violations = fleet.check_all_groups().size();
  return result;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::size_t pool = sweep_thread_count(0);
  const bool full = std::getenv("DYNVOTE_SHARDS_FULL") != nullptr;
  // Quick mode trims to the small shape with 2 seeds: the sanitizer
  // passes in run_experiments.sh use it to race/overflow-check the
  // multi-group path without paying the four-digit row under ASan.
  const bool quick = std::getenv("DYNVOTE_SHARDS_QUICK") != nullptr;
  std::puts("Shards: multi-group fleet throughput, serial vs sweep pool");
  std::printf("       pool = %zu thread(s); DYNVOTE_THREADS overrides, "
              "DYNVOTE_SHARDS_FULL=1 adds the n=2048 row, "
              "DYNVOTE_SHARDS_QUICK=1 trims for sanitizer runs\n\n",
              pool);

  std::vector<FleetShape> shapes = {
      {32, 8, 16},    // n = 256
      {128, 8, 32},   // n = 1024 — the four-digit flagship row
  };
  if (full) shapes.push_back({256, 8, 64});  // n = 2048
  if (quick) shapes.resize(1);
  const std::size_t seeds_per_shape = quick ? 2 : 4;

  Table table({"groups", "gsize", "machines", "n", "seeds", "formed",
               "formed/sec", "p50 reconf", "p99 reconf", "pool ms",
               "speedup"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("shards"));
  result.set("pool_threads", JsonValue(std::uint64_t{pool}));
  JsonValue rows = JsonValue::array();
  bool deterministic = true;
  bool clean = true;

  for (const FleetShape& shape : shapes) {
    const std::size_t seeds = seeds_per_shape;
    using Clock = std::chrono::steady_clock;
    const auto serial_start = Clock::now();
    const auto serial = sweep_map<RunResult>(
        seeds, 1, [&shape](std::size_t i) { return run_cell(shape, i); });
    const auto serial_end = Clock::now();
    const auto pooled = sweep_map<RunResult>(
        seeds, pool, [&shape](std::size_t i) { return run_cell(shape, i); });
    const auto pooled_end = Clock::now();

    const bool match = serial == pooled;
    deterministic &= match;

    std::uint64_t formed = 0;
    std::uint64_t divergences = 0;
    std::uint64_t violations = 0;
    std::uint64_t accepted = 0;
    Summary latency;
    for (const RunResult& r : pooled) {
      formed += r.digest.formed;
      divergences += r.digest.divergences;
      violations += r.digest.violations;
      accepted += r.digest.accepted_writes;
      latency.add_all(r.latencies);
    }
    clean &= divergences == 0 && violations == 0;

    const double serial_ms =
        std::chrono::duration<double, std::milli>(serial_end - serial_start)
            .count();
    const double pool_ms =
        std::chrono::duration<double, std::milli>(pooled_end - serial_end)
            .count();
    const double speedup = pool_ms > 0 ? serial_ms / pool_ms : 0;
    const double formed_per_sec =
        pool_ms > 0 ? static_cast<double>(formed) * 1000.0 / pool_ms : 0;
    const double p50 = latency.empty() ? 0 : latency.percentile(0.50);
    const double p99 = latency.empty() ? 0 : latency.percentile(0.99);

    char speedup_text[32];
    std::snprintf(speedup_text, sizeof speedup_text, "%.2fx%s", speedup,
                  match ? "" : " MISMATCH");
    const std::uint32_t n = shape.groups * shape.group_size;
    table.add_row({std::to_string(shape.groups),
                   std::to_string(shape.group_size),
                   std::to_string(shape.machines), std::to_string(n),
                   std::to_string(seeds), std::to_string(formed),
                   format_double(formed_per_sec, 0), format_double(p50, 0),
                   format_double(p99, 0),
                   std::to_string(static_cast<long long>(pool_ms)),
                   speedup_text});

    JsonValue row = JsonValue::object();
    row.set("groups", JsonValue(std::uint64_t{shape.groups}));
    row.set("group_size", JsonValue(std::uint64_t{shape.group_size}));
    row.set("machines", JsonValue(std::uint64_t{shape.machines}));
    row.set("n", JsonValue(std::uint64_t{n}));
    row.set("seeds", JsonValue(std::uint64_t{seeds}));
    row.set("formed", JsonValue(formed));
    row.set("formed_per_sec", JsonValue(formed_per_sec));
    row.set("reconfig_p50_ticks", JsonValue(p50));
    row.set("reconfig_p99_ticks", JsonValue(p99));
    row.set("reconfig_samples", JsonValue(std::uint64_t{latency.count()}));
    row.set("accepted_writes", JsonValue(accepted));
    row.set("divergences", JsonValue(divergences));
    row.set("violations", JsonValue(violations));
    row.set("serial_ms", JsonValue(serial_ms));
    row.set("pool_ms", JsonValue(pool_ms));
    row.set("speedup", JsonValue(speedup));
    row.set("digests_match", JsonValue(match));
    rows.push_back(std::move(row));
  }

  result.set("rows", std::move(rows));
  result.set("deterministic", JsonValue(deterministic));
  result.set("clean", JsonValue(clean));
  std::printf("%s\n", table.to_string().c_str());
  if (!deterministic) {
    std::puts("FAIL: pooled digests diverge from the serial pass");
  } else if (!clean) {
    std::puts("FAIL: a consistent protocol produced divergences/violations");
  } else {
    std::puts(
        "Per-seed digests identical between passes; every group audit clean.");
  }
  emit_bench_result("shards", result);
  return deterministic && clean ? 0 : 1;
}
