// Persistence bench — stable-storage cost of snapshot-per-persist vs the
// delta WAL (dv/wal.hpp), and the price of its replay cross-check.
//
// For each n the same deterministic churn schedules run three times over
// the optimized protocol: persistence mode kSnapshot, kWal, and kWal
// with the replay-equals-snapshot cross-check left on (the test-suite
// default). Protocol outcomes must be identical across modes — the
// persistence layer schedules no simulator events and sends no messages
// — so the digest columns (events, formed) double as a self-check, and
// the storage columns isolate the write-amplification difference.
//
// The WAL's promise is bytes/step ~ O(delta) instead of O(state): the
// bench fails (exit 1) if the WAL does not cut stable-storage bytes per
// persist by at least 5x at n = 128.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/schedule.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

constexpr std::size_t kSeeds = 4;

struct CellResult {
  std::uint64_t executed = 0;   // simulator events (outcome digest)
  std::uint64_t formed = 0;     // formed sessions (outcome digest)
  std::uint64_t writes = 0;     // StableStorage::writes()
  std::uint64_t bytes = 0;      // StableStorage::bytes_written()
  std::uint64_t persists = 0;   // WalPersistence commits
  std::uint64_t appends = 0;    // WAL batches appended
  std::uint64_t checkpoints = 0;

  CellResult& operator+=(const CellResult& other) {
    executed += other.executed;
    formed += other.formed;
    writes += other.writes;
    bytes += other.bytes;
    persists += other.persists;
    appends += other.appends;
    checkpoints += other.checkpoints;
    return *this;
  }
};

CellResult run_cell(std::uint32_t n, std::uint64_t seed,
                    const PersistenceOptions& persistence) {
  ScheduleOptions schedule_options;
  schedule_options.seed = 91'000 + seed;
  schedule_options.duration = SimTime{600'000};
  schedule_options.mean_event_gap = 120'000;
  const auto schedule =
      generate_schedule(ProcessSet::range(n), schedule_options);

  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = n;
  options.sim.seed = seed;
  options.config.persistence = persistence;
  Cluster cluster(options);
  sim::Simulator& sim = cluster.sim();
  for (const ScheduleEvent& event : schedule) {
    sim.queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const ProcessSet& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  cluster.merge();
  cluster.settle();

  CellResult result;
  result.executed = sim.queue().executed();
  result.formed = cluster.checker().formed_session_count();
  for (ProcessId p : cluster.all_processes()) {
    const sim::StableStorage& storage = sim.storage(p);
    result.writes += storage.writes();
    result.bytes += storage.bytes_written();
  }
  const obs::MetricsRegistry& metrics = sim.metrics();
  result.persists = metrics.counter_value("dv.storage.persists");
  result.appends = metrics.counter_value("dv.storage.wal_appends");
  result.checkpoints = metrics.counter_value("dv.storage.checkpoints");
  return result;
}

struct Mode {
  const char* name;
  PersistenceOptions persistence;
};

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("Persistence: stable-storage cost, full snapshot vs delta WAL");
  std::puts("            (wal+check = WAL with the replay-equals-snapshot "
            "cross-check, the test-suite default)\n");

  const Mode modes[] = {
      {"snapshot",
       {.mode = PersistenceMode::kSnapshot, .cross_check = false}},
      {"wal", {.mode = PersistenceMode::kWal, .cross_check = false}},
      {"wal+check", {.mode = PersistenceMode::kWal, .cross_check = true}},
  };

  Table table({"n", "mode", "persists", "appends", "ckpts", "storage bytes",
               "bytes/step", "ns/persist"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("persistence"));
  JsonValue rows = JsonValue::array();
  bool ok = true;

  for (std::uint32_t n : {8u, 32u, 128u}) {
    double bytes_per_step_snapshot = 0.0;
    double bytes_per_step_wal = 0.0;
    CellResult reference;  // outcome digest of the first mode

    for (std::size_t m = 0; m < std::size(modes); ++m) {
      const Mode& mode = modes[m];
      using Clock = std::chrono::steady_clock;
      const auto start = Clock::now();
      CellResult total;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        total += run_cell(n, seed, mode.persistence);
      }
      const double wall_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - start)
              .count();

      if (m == 0) {
        reference = total;
      } else if (total.executed != reference.executed ||
                 total.formed != reference.formed) {
        std::printf("FAIL: mode %s changed the protocol outcome "
                    "(events %llu vs %llu, formed %llu vs %llu)\n",
                    mode.name,
                    static_cast<unsigned long long>(total.executed),
                    static_cast<unsigned long long>(reference.executed),
                    static_cast<unsigned long long>(total.formed),
                    static_cast<unsigned long long>(reference.formed));
        ok = false;
      }

      const double steps = total.persists > 0
                               ? static_cast<double>(total.persists)
                               : 1.0;
      const double bytes_per_step = static_cast<double>(total.bytes) / steps;
      const double ns_per_persist = wall_ns / steps;
      if (std::string(mode.name) == "snapshot") {
        bytes_per_step_snapshot = bytes_per_step;
      } else if (std::string(mode.name) == "wal") {
        bytes_per_step_wal = bytes_per_step;
      }

      char bps_text[32];
      std::snprintf(bps_text, sizeof bps_text, "%.1f", bytes_per_step);
      char npp_text[32];
      std::snprintf(npp_text, sizeof npp_text, "%.0f", ns_per_persist);
      table.add_row({std::to_string(n), mode.name,
                     std::to_string(total.persists),
                     std::to_string(total.appends),
                     std::to_string(total.checkpoints),
                     std::to_string(total.bytes), bps_text, npp_text});

      JsonValue row = JsonValue::object();
      row.set("n", JsonValue(std::uint64_t{n}));
      row.set("mode", JsonValue(mode.name));
      row.set("events", JsonValue(total.executed));
      row.set("formed", JsonValue(total.formed));
      row.set("storage_writes", JsonValue(total.writes));
      row.set("storage_bytes", JsonValue(total.bytes));
      row.set("persists", JsonValue(total.persists));
      row.set("wal_appends", JsonValue(total.appends));
      row.set("checkpoints", JsonValue(total.checkpoints));
      row.set("bytes_per_step", JsonValue(bytes_per_step));
      row.set("ns_per_persist", JsonValue(ns_per_persist));
      rows.push_back(std::move(row));
    }

    const double reduction = bytes_per_step_wal > 0
                                 ? bytes_per_step_snapshot / bytes_per_step_wal
                                 : 0.0;
    std::printf("n=%3u: WAL cuts stable-storage bytes/step by %.1fx\n", n,
                reduction);
    JsonValue summary = JsonValue::object();
    summary.set("n", JsonValue(std::uint64_t{n}));
    summary.set("mode", JsonValue("reduction"));
    summary.set("bytes_per_step_reduction_x", JsonValue(reduction));
    rows.push_back(std::move(summary));
    if (n == 128 && reduction < 5.0) {
      std::printf("FAIL: expected >= 5x reduction at n=128, got %.1fx\n",
                  reduction);
      ok = false;
    }
  }

  result.set("rows", std::move(rows));
  result.set("ok", JsonValue(ok));
  std::printf("\n%s\n", table.to_string().c_str());
  emit_bench_result("persistence", result);
  return ok ? 0 : 1;
}
