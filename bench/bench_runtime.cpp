// Wall-clock benchmark of the thread runtime (experiment C5, real time).
//
// Two phases:
//
//   (0) Correctness gate: the DES-as-oracle cross-check on 8 seeds for
//       both paper protocols. The bench *refuses to report numbers from
//       a runtime that diverges from the simulator* — exit 1.
//
//   (1) Reconfiguration latency: for each protocol in {basic, optimized,
//       three_phase_recovery} and fleet width n in {4, 8, 16, 32}
//       threads, repeatedly partition into majority/minority and merge
//       back, measuring the wall-clock time from issuing the topology
//       change until every member of the forming component has formed
//       the new primary (per-process formation timestamps come from a
//       ProtocolObserver on the process threads). Reports p50/p99.
//
// The paper's claim C5 in real time: [17]-style three-phase recovery
// needs 5 communication rounds per formation where the paper's
// protocols need 2, so its reconfiguration latency must be higher at
// every width — the bench asserts p50(optimized) < p50(three_phase).
//
// DYNVOTE_RUNTIME_QUICK=1 shrinks widths and iterations for sanitizer
// runs (tools/run_experiments.sh); wall-clock keys in the JSON carry
// *_budget siblings so tools/check_perf.py gates on budgets instead of
// cross-machine-meaningless absolute comparisons.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.hpp"
#include "runtime/crosscheck.hpp"
#include "runtime/fleet.hpp"
#include "util/table.hpp"

namespace dynvote::runtime {
namespace {

/// Records each process's latest formation time (transport microseconds)
/// from its own thread; the fleet's quiesce barrier publishes the slots
/// back to the bench thread.
class FormationClock : public ProtocolObserver {
 public:
  explicit FormationClock(std::size_t n) : formed_at_(n) {}

  void on_formed(SimTime time, ProcessId p, const Session&, int) override {
    formed_at_[p.value()].store(time, std::memory_order_relaxed);
  }

  /// Latest formation among `members`, or 0 if someone never formed
  /// after `t0`.
  [[nodiscard]] std::uint64_t formed_by(const ProcessSet& members,
                                        std::uint64_t t0) const {
    std::uint64_t latest = 0;
    for (ProcessId p : members) {
      const std::uint64_t at =
          formed_at_[p.value()].load(std::memory_order_relaxed);
      if (at < t0) return 0;
      latest = std::max(latest, at);
    }
    return latest;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> formed_at_;
};

std::uint64_t percentile(std::vector<std::uint64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct LatencyRow {
  ProtocolKind kind;
  std::uint32_t n = 0;
  std::size_t samples = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

/// One partition/merge churn run; returns per-reconfiguration latencies
/// (one sample per topology change, from issue to last member formed).
std::vector<std::uint64_t> measure(ProtocolKind kind, std::uint32_t n,
                                   int cycles) {
  FleetOptions options;
  options.kind = kind;
  options.n = n;
  RuntimeFleet fleet(options);
  FormationClock clock(n);
  ProcessSet majority;
  ProcessSet minority;
  ProcessSet everyone;
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId p(i);
    fleet.protocol(p).set_observer(&clock);
    everyone.insert(p);
    (i <= n / 2 ? majority : minority).insert(p);
  }
  fleet.start();

  std::vector<std::uint64_t> latencies;
  latencies.reserve(static_cast<std::size_t>(cycles) * 2);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::uint64_t t0 = fleet.transport().now();
    fleet.partition({majority, minority});
    std::uint64_t formed = clock.formed_by(majority, t0);
    if (formed != 0) latencies.push_back(formed - t0);

    t0 = fleet.transport().now();
    fleet.merge();
    formed = clock.formed_by(everyone, t0);
    if (formed != 0) latencies.push_back(formed - t0);
  }
  fleet.stop();
  return latencies;
}

}  // namespace
}  // namespace dynvote::runtime

int main() {
  using namespace dynvote;
  using namespace dynvote::runtime;

  const bool quick = std::getenv("DYNVOTE_RUNTIME_QUICK") != nullptr;

  // ---- phase 0: the runtime must match the DES before it may report --
  std::puts("cross-check: DES oracle vs thread runtime, 8 seeds");
  Table check_table({"protocol", "seeds", "digests equal", "C1 clean"});
  JsonValue check_rows = JsonValue::array();
  bool all_equal = true;
  bool all_c1 = true;
  for (ProtocolKind kind : {ProtocolKind::kBasic, ProtocolKind::kOptimized}) {
    bool equal = true;
    bool c1 = true;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CrossCheckResult result = run_scenario(kind, /*n=*/5, seed);
      if (!result.digests_equal) {
        equal = false;
        std::fprintf(stderr,
                     "DIVERGENCE %s seed %llu\n--- DES ---\n%s--- runtime "
                     "---\n%s",
                     to_string(kind), static_cast<unsigned long long>(seed),
                     result.sim_summary.c_str(),
                     result.runtime_summary.c_str());
      }
      c1 &= result.c1_clean;
    }
    check_table.add_row(
        {to_string(kind), "8", equal ? "yes" : "NO", c1 ? "yes" : "NO"});
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(kind)));
    row.set("seeds", JsonValue(std::uint64_t{8}));
    row.set("digests_equal", JsonValue(equal));
    row.set("c1_clean", JsonValue(c1));
    check_rows.push_back(std::move(row));
    all_equal &= equal;
    all_c1 &= c1;
  }
  std::printf("%s\n", check_table.to_string().c_str());
  if (!all_equal || !all_c1) {
    std::fputs("runtime diverges from the DES oracle; not reporting "
               "latencies from a wrong backend\n",
               stderr);
    return 1;
  }

  // ---- phase 1: reconfiguration latency ------------------------------
  const std::vector<std::uint32_t> widths =
      quick ? std::vector<std::uint32_t>{4, 8}
            : std::vector<std::uint32_t>{4, 8, 16, 32};
  const int cycles = quick ? 3 : 12;
  const std::vector<ProtocolKind> kinds = {ProtocolKind::kBasic,
                                           ProtocolKind::kOptimized,
                                           ProtocolKind::kThreePhaseRecovery};

  std::printf("reconfiguration latency, one thread per process (%d "
              "partition+merge cycles)\n",
              cycles);
  Table table({"protocol", "n", "samples", "p50 us", "p99 us"});
  std::vector<LatencyRow> rows;
  std::vector<std::uint64_t> optimized_all;
  std::vector<std::uint64_t> three_phase_all;
  for (ProtocolKind kind : kinds) {
    for (std::uint32_t n : widths) {
      const std::vector<std::uint64_t> samples = measure(kind, n, cycles);
      LatencyRow row;
      row.kind = kind;
      row.n = n;
      row.samples = samples.size();
      row.p50_us = percentile(samples, 50);
      row.p99_us = percentile(samples, 99);
      table.add_row({to_string(kind), std::to_string(n),
                     std::to_string(row.samples), std::to_string(row.p50_us),
                     std::to_string(row.p99_us)});
      rows.push_back(row);
      if (kind == ProtocolKind::kOptimized) {
        optimized_all.insert(optimized_all.end(), samples.begin(),
                             samples.end());
      } else if (kind == ProtocolKind::kThreePhaseRecovery) {
        three_phase_all.insert(three_phase_all.end(), samples.begin(),
                               samples.end());
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const std::uint64_t optimized_p50 = percentile(optimized_all, 50);
  const std::uint64_t three_phase_p50 = percentile(three_phase_all, 50);
  const bool optimized_faster = optimized_p50 < three_phase_p50;
  std::printf("C5 in wall-clock: optimized p50 %llu us vs three-phase "
              "recovery p50 %llu us -> %s\n",
              static_cast<unsigned long long>(optimized_p50),
              static_cast<unsigned long long>(three_phase_p50),
              optimized_faster ? "2-round protocol is faster"
                               : "VIOLATION: 5-round protocol won");

  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("runtime"));
  JsonValue crosscheck = JsonValue::object();
  crosscheck.set("seeds", JsonValue(std::uint64_t{8}));
  crosscheck.set("all_equal", JsonValue(all_equal));
  crosscheck.set("all_c1", JsonValue(all_c1));
  crosscheck.set("rows", std::move(check_rows));
  result.set("crosscheck", std::move(crosscheck));
  JsonValue latency_rows = JsonValue::array();
  for (const LatencyRow& row : rows) {
    JsonValue json_row = JsonValue::object();
    json_row.set("protocol", JsonValue(to_string(row.kind)));
    json_row.set("n", JsonValue(std::uint64_t{row.n}));
    json_row.set("samples", JsonValue(std::uint64_t{row.samples}));
    // Wall-clock values vary across machines: each key carries a budget
    // sibling so tools/check_perf.py gates on the budget, not the value.
    json_row.set("p50_us", JsonValue(row.p50_us));
    json_row.set("p50_us_budget", JsonValue(std::uint64_t{2000000}));
    json_row.set("p99_us", JsonValue(row.p99_us));
    json_row.set("p99_us_budget", JsonValue(std::uint64_t{10000000}));
    latency_rows.push_back(std::move(json_row));
  }
  result.set("rows", std::move(latency_rows));
  JsonValue comparison = JsonValue::object();
  comparison.set("optimized_p50_us", JsonValue(optimized_p50));
  comparison.set("optimized_p50_us_budget", JsonValue(std::uint64_t{2000000}));
  comparison.set("three_phase_p50_us", JsonValue(three_phase_p50));
  comparison.set("three_phase_p50_us_budget",
                 JsonValue(std::uint64_t{10000000}));
  comparison.set("optimized_faster", JsonValue(optimized_faster));
  result.set("comparison", std::move(comparison));
  emit_bench_result("runtime", result);

  return optimized_faster ? 0 : 1;
}
