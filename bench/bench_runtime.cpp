// Wall-clock benchmark of the real-time runtimes (experiment C5).
//
// Six phases:
//
//   (0) Correctness gate: the DES-as-oracle cross-check on 8 seeds for
//       both paper protocols, each seed run probes-off AND probes-on,
//       on EVERY backend — thread-per-process and the M:N pool at
//       W ∈ {1, 2, 4}. The bench *refuses to report numbers from a
//       runtime that diverges from the simulator* — exit 1 — and
//       likewise refuses if the wall-clock probe layer shifts any
//       outcome digest (digest-neutrality: probes-on == probes-off ==
//       DES, at every worker count).
//
//   (1) Reconfiguration latency, thread backend: for each protocol in
//       {basic, optimized, three_phase_recovery} and fleet width n in
//       {4, 8, 16, 32} threads, repeatedly partition into
//       majority/minority and merge back, measuring the wall-clock time
//       from issuing the topology change until every member of the
//       forming component has formed the new primary (per-process
//       formation timestamps come from a ProtocolObserver on the
//       process threads). Reports p50/p99.
//
//   (2) Reconfiguration latency, pool backend: the same grid on the M:N
//       scheduler (W = hardware_concurrency). Each cell's outcome
//       digest must equal the thread backend's for the same seed-free
//       workload — the two backends literally replay each other — and
//       C5 must hold on the pool too (p50(optimized) < p50(three_phase)).
//
//   (3) Phase breakdown: the phase-1 churn with probe rings on,
//       attributing each reconfiguration's wall time on its critical
//       (last-forming) lane into queued / parked / executing /
//       timer-slop buckets (obs/runtime_probe.hpp). The four buckets
//       plus the unattributed residue sum to the wall time exactly; the
//       bench gates the residue below 10%, which is what makes the
//       breakdown a measurement rather than an accounting identity. The
//       optimized protocol's raw probe document is exported for
//       `dvtrace runtime`, and a pool run (W=2) is exported alongside
//       it so the per-worker lanes are inspectable.
//
//   (4) Probe overhead: N adjacent probes-off/probes-on pairs of the
//       phase-1 cell, CPU-timed, identical outcome digests required;
//       overhead = max(0, min-pair-ratio - 1), gated < 5% (estimator
//       rationale in bench/bench_shards.cpp). Run twice: thread backend
//       and pool backend, both gated.
//
//   (5) Fleet-width scaling, pool only: n ∈ {64, 256, 1024} processes
//       carved into groups of 32 that all re-form on every verb
//       (alternating aligned / shifted-by-16 carves). Reports
//       reconfiguration p50/p99 and formed-quorums/sec — the numbers
//       the thread backend cannot produce at all past n≈32.
//
// The paper's claim C5 in real time: [17]-style three-phase recovery
// needs 5 communication rounds per formation where the paper's
// protocols need 2, so its reconfiguration latency must be higher at
// every width — the bench asserts p50(optimized) < p50(three_phase),
// on both backends.
//
// DYNVOTE_RUNTIME_QUICK=1 shrinks widths and iterations for sanitizer
// runs (tools/run_experiments.sh); wall-clock keys in the JSON carry
// *_budget siblings so tools/check_perf.py gates on budgets instead of
// cross-machine-meaningless absolute comparisons.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/bench_report.hpp"
#include "obs/runtime_probe.hpp"
#include "runtime/crosscheck.hpp"
#include "runtime/fleet.hpp"
#include "runtime/pool_transport.hpp"
#include "util/table.hpp"

namespace dynvote::runtime {
namespace {

/// Records each process's latest formation time (transport microseconds)
/// from its own thread; the fleet's quiesce barrier publishes the slots
/// back to the bench thread.
class FormationClock : public ProtocolObserver {
 public:
  explicit FormationClock(std::size_t n) : formed_at_(n) {}

  void on_formed(SimTime time, ProcessId p, const Session&, int) override {
    formed_at_[p.value()].store(time, std::memory_order_relaxed);
  }

  /// Latest formation among `members`, or 0 if someone never formed
  /// after `t0`.
  [[nodiscard]] std::uint64_t formed_by(const ProcessSet& members,
                                        std::uint64_t t0) const {
    std::uint64_t latest = 0;
    for (ProcessId p : members) {
      const std::uint64_t at =
          formed_at_[p.value()].load(std::memory_order_relaxed);
      if (at < t0) return 0;
      latest = std::max(latest, at);
    }
    return latest;
  }

  /// The critical member: the one whose formation completed the
  /// reconfiguration (latest formed_at). Only meaningful when
  /// formed_by(members, t0) != 0.
  [[nodiscard]] std::uint32_t critical(const ProcessSet& members) const {
    std::uint32_t critical = 0;
    std::uint64_t latest = 0;
    for (ProcessId p : members) {
      const std::uint64_t at =
          formed_at_[p.value()].load(std::memory_order_relaxed);
      if (at >= latest) {
        latest = at;
        critical = p.value();
      }
    }
    return critical;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> formed_at_;
};

std::uint64_t percentile(std::vector<std::uint64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct LatencyRow {
  ProtocolKind kind;
  std::uint32_t n = 0;
  std::size_t samples = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

struct MeasureOut {
  std::vector<std::uint64_t> latencies;  // one per reconfiguration, us
  std::uint64_t digest = 0;              // outcome digest after stop
  /// Probes-only: one attributed window per reconfiguration, and the
  /// final ring snapshot the windows were attributed on.
  std::vector<obs::ReconfigWindow> windows;
  std::vector<obs::ThreadProbeLog> logs;
};

/// One partition/merge churn run. With `collect_windows` (requires
/// probes) the rings are snapshotted after every reconfiguration and
/// the window attributed on its critical lane — the process thread on
/// the thread backend, the owning worker on the pool. Snapshots must
/// be per-cycle because the rings overwrite in place, so waiting until
/// the end could lose the early windows' entries.
MeasureOut measure(ProtocolKind kind, std::uint32_t n, int cycles, bool probes,
                   bool collect_windows,
                   RuntimeBackend backend = RuntimeBackend::kThreadPerProcess,
                   std::uint32_t workers = 0) {
  FleetOptions options;
  options.kind = kind;
  options.n = n;
  options.runtime.probes = probes;
  options.backend = backend;
  options.workers = workers;
  RuntimeFleet fleet(options);
  FormationClock clock(n);
  ProcessSet majority;
  ProcessSet minority;
  ProcessSet everyone;
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId p(i);
    fleet.protocol(p).set_observer(&clock);
    everyone.insert(p);
    (i <= n / 2 ? majority : minority).insert(p);
  }
  fleet.start();

  MeasureOut out;
  out.latencies.reserve(static_cast<std::size_t>(cycles) * 2);
  auto attribute = [&](const char* verb, const ProcessSet& members,
                       std::uint64_t t0_us, std::uint64_t formed_us) {
    if (!collect_windows || formed_us == 0) return;
    obs::ReconfigWindow window;
    window.verb = verb;
    window.t0_ns = t0_us * 1000;
    window.t1_ns = formed_us * 1000;
    // The lane the critical (last-forming) process executes on: its own
    // thread on the thread backend, its owning worker on the pool.
    window.critical_thread =
        fleet.transport().lane_of(ProcessId(clock.critical(members)));
    out.logs = fleet.probe_logs();
    window.phases = attribute_window(out.logs[window.critical_thread].entries,
                                     window.t0_ns, window.t1_ns);
    out.windows.push_back(std::move(window));
  };
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::uint64_t t0 = fleet.transport().now();
    fleet.partition({majority, minority});
    std::uint64_t formed = clock.formed_by(majority, t0);
    if (formed != 0) out.latencies.push_back(formed - t0);
    attribute("partition", majority, t0, formed);

    t0 = fleet.transport().now();
    fleet.merge();
    formed = clock.formed_by(everyone, t0);
    if (formed != 0) out.latencies.push_back(formed - t0);
    attribute("merge", everyone, t0, formed);
  }
  fleet.stop();
  out.digest = fleet.outcome_digest();
  return out;
}

/// Process CPU time in milliseconds (all threads; parked threads accrue
/// nothing, so this measures the work, not the waiting).
double cpu_time_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Probe-overhead measurement: N adjacent probes-off/probes-on pairs of
/// the phase-1 cell, CPU-timed, identical outcome digests required.
/// Estimator: max(0, MIN over per-pair ratios - 1) — the min-of-pairs
/// rationale (episodic shared-runner noise inflates pairs, a real
/// regression shifts all of them) is documented at
/// bench/bench_shards.cpp's measure_overhead.
bool measure_overhead(std::uint32_t n, int cycles, int reps, double& overhead,
                      RuntimeBackend backend = RuntimeBackend::kThreadPerProcess,
                      std::uint32_t workers = 0) {
  // Discarded warmup pair (pristine-heap bias, see bench_shards).
  (void)measure(ProtocolKind::kOptimized, n, cycles, false, false, backend,
                workers);
  (void)measure(ProtocolKind::kOptimized, n, cycles, true, false, backend,
                workers);
  double best_ratio = 0;
  std::uint64_t digest_on = 0;
  std::uint64_t digest_off = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const bool off_first = rep % 2 == 0;
    const double t0 = cpu_time_ms();
    const MeasureOut first = measure(ProtocolKind::kOptimized, n, cycles,
                                     !off_first, false, backend, workers);
    const double t1 = cpu_time_ms();
    const MeasureOut second = measure(ProtocolKind::kOptimized, n, cycles,
                                      off_first, false, backend, workers);
    const double t2 = cpu_time_ms();
    const double ms_off = off_first ? t1 - t0 : t2 - t1;
    const double ms_on = off_first ? t2 - t1 : t1 - t0;
    const double ratio = ms_off > 0 ? ms_on / ms_off : 1.0;
    if (rep == 0 || ratio < best_ratio) best_ratio = ratio;
    digest_on = off_first ? second.digest : first.digest;
    digest_off = off_first ? first.digest : second.digest;
  }
  overhead = std::max(0.0, best_ratio - 1.0);
  return digest_on == digest_off;
}

struct ScaleRow {
  std::uint32_t n = 0;
  std::uint32_t workers = 0;
  std::size_t groups = 0;
  std::size_t samples = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  double formed_per_sec = 0;
};

/// Fleet-width scaling on the pool backend (the thread backend caps at
/// n≈32 runnable threads; the pool runs n=1024 over W workers).
///
/// Dynamic voting shapes the workload: only a component holding a
/// majority of the LAST formed session can form the next one, so a
/// balanced carve into groups of 32 would orphan the lineage and
/// nothing would ever form again. Instead the bench (a) cascades the
/// primary down by repeated majority halving (1024 -> 513 -> 257 ->
/// 129 -> 65 -> 33) until the quorum is paper-sized, then (b) churns
/// that 33-member quorum between two overlapping member sets while
/// every other process rides along in inert groups of 32 whose views
/// change on every verb — the background load that makes this a
/// SCALING measurement: all n processes install views and exchange
/// round-1 state on the same W workers the lineage needs. A latency
/// sample is the wall time from issuing the carve until every member
/// of the new quorum has formed; throughput is formed quorums over the
/// churn loop's wall time.
ScaleRow measure_scaling(std::uint32_t n, int cycles) {
  constexpr std::uint32_t kGroup = 32;
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = n;
  options.backend = RuntimeBackend::kPool;
  options.workers = 0;  // hardware_concurrency, clamped to [1, n]
  RuntimeFleet fleet(options);
  FormationClock clock(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    fleet.protocol(ProcessId(i)).set_observer(&clock);
  }
  // One carve: the lineage members in one group, everyone else in inert
  // groups of <= 32 (they install the view and discover they have no
  // quorum; their membership still shifts between consecutive carves
  // because the lineage edge moves, so every verb re-views all n).
  auto carve = [n](std::uint32_t lo, std::uint32_t hi) {
    std::vector<ProcessSet> groups(1);
    std::vector<ProcessId> rest;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) {
        groups[0].insert(ProcessId(i));
      } else {
        rest.push_back(ProcessId(i));
      }
    }
    for (std::size_t j = 0; j < rest.size(); ++j) {
      const std::size_t g = 1 + j / kGroup;
      if (groups.size() <= g) groups.emplace_back();
      groups[g].insert(rest[j]);
    }
    return groups;
  };

  ScaleRow row;
  row.n = n;
  row.workers = static_cast<PoolTransport&>(fleet.transport()).workers();

  fleet.start();  // forms the n-member session the cascade shrinks
  // (a) Majority cascade, outside the timed region: each step keeps
  // floor(s/2)+1 members of the previous session, the one component
  // that can re-form.
  std::uint32_t quorum = n;
  while (quorum > kGroup + 1) {
    quorum = quorum / 2 + 1;
    fleet.partition(carve(0, quorum));
  }
  row.groups = 1 + (n - quorum + kGroup - 1) / kGroup;

  // (b) Timed churn: alternate the quorum between {0..q-1} and {1..q}.
  // Each is a majority (all but one member) of the session the other
  // formed, so the lineage hands over forever.
  std::vector<std::uint64_t> latencies;
  latencies.reserve(static_cast<std::size_t>(cycles) * 2);
  const auto wall0 = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (const std::uint32_t lo : {1u, 0u}) {
      const std::vector<ProcessSet> groups = carve(lo, lo + quorum);
      const std::uint64_t t0 = fleet.transport().now();
      fleet.partition(groups);
      const std::uint64_t formed = clock.formed_by(groups[0], t0);
      if (formed != 0) latencies.push_back(formed - t0);
    }
  }
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  fleet.stop();

  row.samples = latencies.size();
  row.p50_us = percentile(latencies, 50);
  row.p99_us = percentile(latencies, 99);
  row.formed_per_sec =
      wall_sec > 0 ? static_cast<double>(latencies.size()) / wall_sec : 0;
  return row;
}

struct PhaseStats {
  ProtocolKind kind;
  std::size_t reconfigs = 0;
  std::vector<std::uint64_t> wall;
  std::vector<std::uint64_t> queued;
  std::vector<std::uint64_t> parked;
  std::vector<std::uint64_t> executing;
  std::vector<std::uint64_t> timer_slop;
  std::uint64_t wall_sum = 0;
  std::uint64_t unattributed_sum = 0;

  [[nodiscard]] double unattributed_frac() const {
    return wall_sum == 0 ? 0.0
                         : static_cast<double>(unattributed_sum) /
                               static_cast<double>(wall_sum);
  }
};

PhaseStats phase_stats(ProtocolKind kind,
                       const std::vector<obs::ReconfigWindow>& windows) {
  PhaseStats stats;
  stats.kind = kind;
  stats.reconfigs = windows.size();
  for (const obs::ReconfigWindow& w : windows) {
    stats.wall.push_back(w.phases.wall_ns);
    stats.queued.push_back(w.phases.queued_ns);
    stats.parked.push_back(w.phases.parked_ns);
    stats.executing.push_back(w.phases.executing_ns);
    stats.timer_slop.push_back(w.phases.timer_slop_ns);
    stats.wall_sum += w.phases.wall_ns;
    stats.unattributed_sum += w.phases.unattributed_ns;
  }
  return stats;
}

void set_phase_quantiles(JsonValue& row, const char* key,
                         const std::vector<std::uint64_t>& samples) {
  row.set(std::string(key) + "_p50", JsonValue(percentile(samples, 50)));
  row.set(std::string(key) + "_p50_budget",
          JsonValue(std::uint64_t{2000000000}));
  row.set(std::string(key) + "_p99", JsonValue(percentile(samples, 99)));
  row.set(std::string(key) + "_p99_budget",
          JsonValue(std::uint64_t{10000000000}));
}

}  // namespace
}  // namespace dynvote::runtime

int main() {
  using namespace dynvote;
  using namespace dynvote::runtime;

  const bool quick = std::getenv("DYNVOTE_RUNTIME_QUICK") != nullptr;

  // ---- phase 0: the runtimes must match the DES before they may report
  std::puts(
      "cross-check: DES oracle vs thread + pool (W in {1,2,4}) runtimes, "
      "8 seeds, probes off+on");
  Table check_table({"protocol", "seeds", "backends", "digests equal",
                     "C1 clean", "probes neutral"});
  JsonValue check_rows = JsonValue::array();
  bool all_equal = true;
  bool all_c1 = true;
  bool probes_neutral = true;
  for (ProtocolKind kind : {ProtocolKind::kBasic, ProtocolKind::kOptimized}) {
    bool equal = true;
    bool c1 = true;
    bool neutral = true;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CrossCheckResult result = run_scenario(kind, /*n=*/5, seed);
      const CrossCheckResult probed =
          run_scenario(kind, /*n=*/5, seed, /*steps=*/10, /*probes=*/true);
      if (!result.digests_equal || !probed.digests_equal) {
        equal = false;
        std::fprintf(stderr,
                     "DIVERGENCE %s seed %llu\n--- DES ---\n%s--- runtime "
                     "---\n%s",
                     to_string(kind), static_cast<unsigned long long>(seed),
                     result.sim_summary.c_str(),
                     result.runtime_summary.c_str());
      }
      if (probed.runtime_digest != result.runtime_digest) {
        neutral = false;
        std::fprintf(stderr,
                     "PROBE PERTURBATION %s seed %llu: probes-on digest "
                     "%llx != probes-off digest %llx\n",
                     to_string(kind), static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(probed.runtime_digest),
                     static_cast<unsigned long long>(result.runtime_digest));
      }
      c1 &= result.c1_clean && probed.c1_clean;
    }
    // 5 backends per seed: DES, thread, pool W=1/2/4.
    check_table.add_row({to_string(kind), "8", "5", equal ? "yes" : "NO",
                         c1 ? "yes" : "NO", neutral ? "yes" : "NO"});
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(kind)));
    row.set("seeds", JsonValue(std::uint64_t{8}));
    row.set("pool_worker_counts", JsonValue(std::uint64_t{3}));
    row.set("digests_equal", JsonValue(equal));
    row.set("c1_clean", JsonValue(c1));
    row.set("probes_digest_equal", JsonValue(neutral));
    check_rows.push_back(std::move(row));
    all_equal &= equal;
    all_c1 &= c1;
    probes_neutral &= neutral;
  }
  std::printf("%s\n", check_table.to_string().c_str());
  if (!all_equal || !all_c1 || !probes_neutral) {
    std::fputs("runtime diverges from the DES oracle (or probes perturb "
               "outcomes); not reporting latencies from a wrong backend\n",
               stderr);
    return 1;
  }

  // ---- phase 1: reconfiguration latency ------------------------------
  const std::vector<std::uint32_t> widths =
      quick ? std::vector<std::uint32_t>{4, 8}
            : std::vector<std::uint32_t>{4, 8, 16, 32};
  const int cycles = quick ? 3 : 12;
  const std::vector<ProtocolKind> kinds = {ProtocolKind::kBasic,
                                           ProtocolKind::kOptimized,
                                           ProtocolKind::kThreePhaseRecovery};

  std::printf("reconfiguration latency, one thread per process (%d "
              "partition+merge cycles)\n",
              cycles);
  Table table({"protocol", "n", "samples", "p50 us", "p99 us"});
  std::vector<LatencyRow> rows;
  std::vector<std::uint64_t> optimized_all;
  std::vector<std::uint64_t> three_phase_all;
  // Per-cell outcome digests, compared against the pool phase below:
  // the two backends run the identical workload, so the transcripts
  // must be byte-identical.
  std::map<std::pair<int, std::uint32_t>, std::uint64_t> thread_digests;
  for (ProtocolKind kind : kinds) {
    for (std::uint32_t n : widths) {
      const MeasureOut cell =
          measure(kind, n, cycles, /*probes=*/false, /*collect_windows=*/false);
      const std::vector<std::uint64_t>& samples = cell.latencies;
      thread_digests[{static_cast<int>(kind), n}] = cell.digest;
      LatencyRow row;
      row.kind = kind;
      row.n = n;
      row.samples = samples.size();
      row.p50_us = percentile(samples, 50);
      row.p99_us = percentile(samples, 99);
      table.add_row({to_string(kind), std::to_string(n),
                     std::to_string(row.samples), std::to_string(row.p50_us),
                     std::to_string(row.p99_us)});
      rows.push_back(row);
      if (kind == ProtocolKind::kOptimized) {
        optimized_all.insert(optimized_all.end(), samples.begin(),
                             samples.end());
      } else if (kind == ProtocolKind::kThreePhaseRecovery) {
        three_phase_all.insert(three_phase_all.end(), samples.begin(),
                               samples.end());
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const std::uint64_t optimized_p50 = percentile(optimized_all, 50);
  const std::uint64_t three_phase_p50 = percentile(three_phase_all, 50);
  const bool optimized_faster = optimized_p50 < three_phase_p50;
  std::printf("C5 in wall-clock: optimized p50 %llu us vs three-phase "
              "recovery p50 %llu us -> %s\n",
              static_cast<unsigned long long>(optimized_p50),
              static_cast<unsigned long long>(three_phase_p50),
              optimized_faster ? "2-round protocol is faster"
                               : "VIOLATION: 5-round protocol won");

  // ---- phase 2: the same grid on the M:N pool ------------------------
  std::printf("\nreconfiguration latency, pool backend (W = "
              "hardware_concurrency, %d cycles)\n",
              cycles);
  Table pool_table(
      {"protocol", "n", "samples", "p50 us", "p99 us", "digest vs thread"});
  std::vector<LatencyRow> pool_rows;
  std::vector<std::uint64_t> pool_optimized_all;
  std::vector<std::uint64_t> pool_three_phase_all;
  bool pool_digests_match = true;
  for (ProtocolKind kind : kinds) {
    for (std::uint32_t n : widths) {
      const MeasureOut cell =
          measure(kind, n, cycles, /*probes=*/false, /*collect_windows=*/false,
                  RuntimeBackend::kPool);
      const bool match = cell.digest == thread_digests[{static_cast<int>(kind), n}];
      pool_digests_match &= match;
      LatencyRow row;
      row.kind = kind;
      row.n = n;
      row.samples = cell.latencies.size();
      row.p50_us = percentile(cell.latencies, 50);
      row.p99_us = percentile(cell.latencies, 99);
      pool_table.add_row({to_string(kind), std::to_string(n),
                          std::to_string(row.samples),
                          std::to_string(row.p50_us),
                          std::to_string(row.p99_us),
                          match ? "equal" : "DIVERGED"});
      pool_rows.push_back(row);
      if (kind == ProtocolKind::kOptimized) {
        pool_optimized_all.insert(pool_optimized_all.end(),
                                  cell.latencies.begin(),
                                  cell.latencies.end());
      } else if (kind == ProtocolKind::kThreePhaseRecovery) {
        pool_three_phase_all.insert(pool_three_phase_all.end(),
                                    cell.latencies.begin(),
                                    cell.latencies.end());
      }
    }
  }
  std::printf("%s\n", pool_table.to_string().c_str());

  const std::uint64_t pool_optimized_p50 = percentile(pool_optimized_all, 50);
  const std::uint64_t pool_three_phase_p50 =
      percentile(pool_three_phase_all, 50);
  const bool pool_optimized_faster = pool_optimized_p50 < pool_three_phase_p50;
  std::printf("C5 on the pool: optimized p50 %llu us vs three-phase recovery "
              "p50 %llu us -> %s; per-cell digests %s\n",
              static_cast<unsigned long long>(pool_optimized_p50),
              static_cast<unsigned long long>(pool_three_phase_p50),
              pool_optimized_faster ? "2-round protocol is faster"
                                    : "VIOLATION: 5-round protocol won",
              pool_digests_match ? "all equal thread backend" : "DIVERGED");

  // ---- phase 3: where the reconfiguration microseconds go ------------
  const std::uint32_t phase_n = quick ? 4 : 8;
  const int phase_cycles = quick ? 3 : 8;
  std::printf("\nphase breakdown, probes on (n=%u, %d cycles, attributed on "
              "the last-forming thread)\n",
              phase_n, phase_cycles);
  Table phase_table({"protocol", "reconfigs", "wall p50 us", "queued %",
                     "parked %", "exec %", "slop %", "unattr %"});
  std::vector<PhaseStats> phase_rows;
  bool phases_ok = true;
  std::vector<obs::ReconfigWindow> flagship_windows;
  std::vector<obs::ThreadProbeLog> flagship_logs;
  for (ProtocolKind kind : kinds) {
    MeasureOut probed =
        measure(kind, phase_n, phase_cycles, /*probes=*/true,
                /*collect_windows=*/true);
    PhaseStats stats = phase_stats(kind, probed.windows);
    const double wall = std::max<double>(1.0, stats.wall_sum);
    auto pct_of_wall = [&](const std::vector<std::uint64_t>& phase) {
      std::uint64_t sum = 0;
      for (const std::uint64_t v : phase) sum += v;
      return static_cast<double>(sum) * 100.0 / wall;
    };
    char buf[64];
    auto fmt = [&buf](double v) {
      std::snprintf(buf, sizeof buf, "%.1f", v);
      return std::string(buf);
    };
    phase_table.add_row(
        {to_string(kind), std::to_string(stats.reconfigs),
         std::to_string(percentile(stats.wall, 50) / 1000),
         fmt(pct_of_wall(stats.queued)), fmt(pct_of_wall(stats.parked)),
         fmt(pct_of_wall(stats.executing)), fmt(pct_of_wall(stats.timer_slop)),
         fmt(stats.unattributed_frac() * 100.0)});
    phases_ok &= stats.reconfigs > 0 && stats.unattributed_frac() <= 0.10;
    if (kind == ProtocolKind::kOptimized) {
      flagship_windows = std::move(probed.windows);
      flagship_logs = std::move(probed.logs);
    }
    phase_rows.push_back(std::move(stats));
  }
  std::printf("%s\n", phase_table.to_string().c_str());
  if (!phases_ok) {
    std::fputs("phase breakdown failed its own falsifiability gate "
               "(unattributed residue > 10% of wall)\n",
               stderr);
  }

  // The optimized run's raw probe document, for `dvtrace runtime`.
  obs::RuntimeProbeMeta meta;
  meta.protocol = to_string(ProtocolKind::kOptimized);
  meta.n = phase_n;
  meta.wheel_tick_us = RuntimeOptions{}.wheel_tick_us;
  meta.workers = 0;  // thread backend: one lane per process
  const std::string probes_path = write_json_file(
      "runtime_probes.json",
      runtime_probes_json(meta, flagship_logs, flagship_windows));
  if (!probes_path.empty()) {
    std::printf("probe document -> %s\n", probes_path.c_str());
  }

  // A probed pool run of the same cell at W=2, exported so `dvtrace
  // runtime` has per-worker lanes (batch sizes, run-queue depths,
  // handoffs) to render and the Chrome export maps one tid per worker.
  {
    MeasureOut pool_probed =
        measure(ProtocolKind::kOptimized, phase_n, phase_cycles,
                /*probes=*/true, /*collect_windows=*/true,
                RuntimeBackend::kPool, /*workers=*/2);
    obs::RuntimeProbeMeta pool_meta = meta;
    pool_meta.workers = 2;
    const std::string pool_probes_path = write_json_file(
        "runtime_pool_probes.json",
        runtime_probes_json(pool_meta, pool_probed.logs, pool_probed.windows));
    if (!pool_probes_path.empty()) {
      std::printf("pool probe document (W=2) -> %s\n",
                  pool_probes_path.c_str());
    }
  }

  // ---- phase 4: what the probes cost ---------------------------------
  double overhead = 0;
  const bool overhead_digests_equal =
      // Quick mode uses more cycles/reps per cell than the rest of the
      // quick bench: a sub-millisecond cell is dominated by
      // scheduler-dependent CPU-time noise on small hosts, and the
      // min-of-pairs estimator needs enough pairs for one clean one.
      measure_overhead(phase_n, quick ? 6 : 4, quick ? 6 : 5, overhead);
  const bool overhead_ok = overhead < 0.05 && overhead_digests_equal;
  std::printf("probe overhead, thread backend (min of adjacent-pair CPU "
              "ratios): %.2f%% (budget 5%%) digests %s -> %s\n",
              overhead * 100.0, overhead_digests_equal ? "equal" : "UNEQUAL",
              overhead_ok ? "ok" : "FAIL");

  double pool_overhead = 0;
  const bool pool_overhead_digests_equal =
      measure_overhead(phase_n, quick ? 6 : 4, quick ? 6 : 5, pool_overhead,
                       RuntimeBackend::kPool);
  const bool pool_overhead_ok = pool_overhead < 0.05 &&
                                pool_overhead_digests_equal;
  std::printf("probe overhead, pool backend: %.2f%% (budget 5%%) digests %s "
              "-> %s\n",
              pool_overhead * 100.0,
              pool_overhead_digests_equal ? "equal" : "UNEQUAL",
              pool_overhead_ok ? "ok" : "FAIL");

  // ---- phase 5: fleet-width scaling on the pool ----------------------
  const std::vector<std::uint32_t> scale_widths =
      quick ? std::vector<std::uint32_t>{64}
            : std::vector<std::uint32_t>{64, 256, 1024};
  const int scale_cycles = quick ? 2 : 3;
  std::printf("\nfleet-width scaling, pool backend (groups of 32, %d "
              "alternating-carve cycles)\n",
              scale_cycles);
  Table scale_table({"n", "workers", "groups", "samples", "reconfig p50 us",
                     "reconfig p99 us", "formed quorums/s"});
  std::vector<ScaleRow> scale_rows;
  for (const std::uint32_t n : scale_widths) {
    const ScaleRow row = measure_scaling(n, scale_cycles);
    char rate[64];
    std::snprintf(rate, sizeof rate, "%.1f", row.formed_per_sec);
    scale_table.add_row({std::to_string(row.n), std::to_string(row.workers),
                         std::to_string(row.groups),
                         std::to_string(row.samples),
                         std::to_string(row.p50_us),
                         std::to_string(row.p99_us), rate});
    scale_rows.push_back(row);
  }
  std::printf("%s\n", scale_table.to_string().c_str());

  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("runtime"));
  JsonValue crosscheck = JsonValue::object();
  crosscheck.set("seeds", JsonValue(std::uint64_t{8}));
  crosscheck.set("all_equal", JsonValue(all_equal));
  crosscheck.set("all_c1", JsonValue(all_c1));
  crosscheck.set("probes_all_equal", JsonValue(probes_neutral));
  crosscheck.set("rows", std::move(check_rows));
  result.set("crosscheck", std::move(crosscheck));
  JsonValue latency_rows = JsonValue::array();
  for (const LatencyRow& row : rows) {
    JsonValue json_row = JsonValue::object();
    json_row.set("protocol", JsonValue(to_string(row.kind)));
    json_row.set("n", JsonValue(std::uint64_t{row.n}));
    json_row.set("samples", JsonValue(std::uint64_t{row.samples}));
    // Wall-clock values vary across machines: each key carries a budget
    // sibling so tools/check_perf.py gates on the budget, not the value.
    json_row.set("p50_us", JsonValue(row.p50_us));
    json_row.set("p50_us_budget", JsonValue(std::uint64_t{2000000}));
    json_row.set("p99_us", JsonValue(row.p99_us));
    json_row.set("p99_us_budget", JsonValue(std::uint64_t{10000000}));
    latency_rows.push_back(std::move(json_row));
  }
  result.set("rows", std::move(latency_rows));

  JsonValue pool_latency_rows = JsonValue::array();
  for (const LatencyRow& row : pool_rows) {
    JsonValue json_row = JsonValue::object();
    json_row.set("protocol", JsonValue(to_string(row.kind)));
    json_row.set("n", JsonValue(std::uint64_t{row.n}));
    json_row.set("samples", JsonValue(std::uint64_t{row.samples}));
    json_row.set("p50_us", JsonValue(row.p50_us));
    json_row.set("p50_us_budget", JsonValue(std::uint64_t{2000000}));
    json_row.set("p99_us", JsonValue(row.p99_us));
    json_row.set("p99_us_budget", JsonValue(std::uint64_t{10000000}));
    pool_latency_rows.push_back(std::move(json_row));
  }
  result.set("pool_rows", std::move(pool_latency_rows));

  JsonValue phases = JsonValue::object();
  phases.set("n", JsonValue(std::uint64_t{phase_n}));
  phases.set("cycles", JsonValue(std::uint64_t{
                           static_cast<std::uint64_t>(phase_cycles)}));
  JsonValue phase_json_rows = JsonValue::array();
  for (const PhaseStats& stats : phase_rows) {
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(stats.kind)));
    row.set("reconfigs", JsonValue(std::uint64_t{stats.reconfigs}));
    set_phase_quantiles(row, "wall_ns", stats.wall);
    set_phase_quantiles(row, "queued_ns", stats.queued);
    set_phase_quantiles(row, "parked_ns", stats.parked);
    set_phase_quantiles(row, "executing_ns", stats.executing);
    set_phase_quantiles(row, "timer_slop_ns", stats.timer_slop);
    row.set("unattributed_frac", JsonValue(stats.unattributed_frac()));
    row.set("unattributed_frac_budget", JsonValue(0.10));
    phase_json_rows.push_back(std::move(row));
  }
  phases.set("rows", std::move(phase_json_rows));
  phases.set("all_within_budget", JsonValue(phases_ok));
  result.set("phases", std::move(phases));

  JsonValue overhead_json = JsonValue::object();
  overhead_json.set("probe_overhead_frac", JsonValue(overhead));
  overhead_json.set("probe_overhead_frac_budget", JsonValue(0.05));
  overhead_json.set("digests_equal", JsonValue(overhead_digests_equal));
  overhead_json.set("pool_probe_overhead_frac", JsonValue(pool_overhead));
  overhead_json.set("pool_probe_overhead_frac_budget", JsonValue(0.05));
  overhead_json.set("pool_digests_equal",
                    JsonValue(pool_overhead_digests_equal));
  result.set("overhead", std::move(overhead_json));

  JsonValue comparison = JsonValue::object();
  comparison.set("optimized_p50_us", JsonValue(optimized_p50));
  comparison.set("optimized_p50_us_budget", JsonValue(std::uint64_t{2000000}));
  comparison.set("three_phase_p50_us", JsonValue(three_phase_p50));
  comparison.set("three_phase_p50_us_budget",
                 JsonValue(std::uint64_t{10000000}));
  comparison.set("optimized_faster", JsonValue(optimized_faster));
  result.set("comparison", std::move(comparison));

  JsonValue pool_comparison = JsonValue::object();
  pool_comparison.set("optimized_p50_us", JsonValue(pool_optimized_p50));
  pool_comparison.set("optimized_p50_us_budget",
                      JsonValue(std::uint64_t{2000000}));
  pool_comparison.set("three_phase_p50_us", JsonValue(pool_three_phase_p50));
  pool_comparison.set("three_phase_p50_us_budget",
                      JsonValue(std::uint64_t{10000000}));
  pool_comparison.set("optimized_faster", JsonValue(pool_optimized_faster));
  pool_comparison.set("digests_match_thread_backend",
                      JsonValue(pool_digests_match));
  result.set("pool_comparison", std::move(pool_comparison));

  JsonValue scaling = JsonValue::object();
  scaling.set("group_size", JsonValue(std::uint64_t{32}));
  scaling.set("cycles", JsonValue(std::uint64_t{
                            static_cast<std::uint64_t>(scale_cycles)}));
  JsonValue scale_json_rows = JsonValue::array();
  for (const ScaleRow& row : scale_rows) {
    JsonValue json_row = JsonValue::object();
    json_row.set("n", JsonValue(std::uint64_t{row.n}));
    // Worker count is machine-dependent (hardware_concurrency); the
    // "pool_threads" key is on check_perf's machine-context skip list.
    json_row.set("pool_threads", JsonValue(std::uint64_t{row.workers}));
    json_row.set("groups", JsonValue(std::uint64_t{row.groups}));
    json_row.set("samples", JsonValue(std::uint64_t{row.samples}));
    json_row.set("p50_us", JsonValue(row.p50_us));
    json_row.set("p50_us_budget", JsonValue(std::uint64_t{30000000}));
    json_row.set("p99_us", JsonValue(row.p99_us));
    json_row.set("p99_us_budget", JsonValue(std::uint64_t{60000000}));
    json_row.set("formed_quorums_per_sec", JsonValue(row.formed_per_sec));
    // Lower-bound gate (check_perf "_floor"): throughput regresses
    // downward, so the rate gets a floor, not a budget. Every verb
    // re-views all n processes and each protocol message carries the
    // previous session's n-member set, so one handover at n=1024 costs
    // seconds of single-core time — the floor must hold there too.
    json_row.set("formed_quorums_per_sec_floor", JsonValue(0.1));
    scale_json_rows.push_back(std::move(json_row));
  }
  scaling.set("rows", std::move(scale_json_rows));
  result.set("scaling", std::move(scaling));
  emit_bench_result("runtime", result);

  return optimized_faster && pool_optimized_faster && pool_digests_match &&
                 phases_ok && overhead_ok && pool_overhead_ok
             ? 0
             : 1;
}
