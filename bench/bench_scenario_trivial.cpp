// Experiment E2 — the "trivial approach" counterexample (paper section
// 4.6).
//
// Reproduces the paper's session table
//
//     | Session            | a    | b       | c       | d       | e    |
//     | S1 = ({a,b,c}, 1)  | Form | Attempt | Attempt | -       | -    |
//     | S2 = ({b,c,d}, 2)  | -    | -       | Attempt | Attempt | -    |
//     | S3 = ({a,b}, 2)    | Form | Form    | -       | -       | -    |
//     | S3' = ({c,d,e}, 3) | -    | -       | Form    | Form    | Form |
//
// under the last-attempt-only strawman (which forms S3 AND S3'
// concurrently) and under the full protocols (which refuse S3').
#include <cstdio>
#include <map>
#include <string>

#include "harness/bench_report.hpp"
#include "harness/checker.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

/// Observer reconstructing the paper's per-process Form/Attempt table.
class SessionTableObserver final : public ProtocolObserver {
 public:
  void on_attempt(SimTime, ProcessId p, const Session& session) override {
    auto& cell = cells_[session][p];
    if (cell.empty()) cell = "Attempt";
  }
  void on_formed(SimTime, ProcessId p, const Session& session, int) override {
    cells_[session][p] = "Form";
  }

  [[nodiscard]] Table render(std::uint32_t n) const {
    std::vector<std::string> header{"Session"};
    for (std::uint32_t i = 0; i < n; ++i) {
      header.push_back(std::string(1, static_cast<char>('a' + i)));
    }
    Table table(header);
    for (const auto& [session, row] : cells_) {
      std::vector<std::string> cells{session.to_string()};
      for (std::uint32_t i = 0; i < n; ++i) {
        auto it = row.find(ProcessId(i));
        cells.push_back(it == row.end() ? "-" : it->second);
      }
      table.add_row(cells);
    }
    return table;
  }

 private:
  std::map<Session, std::map<ProcessId, std::string>> cells_;
};

JsonValue run(ProtocolKind kind) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 46;
  Cluster cluster(options);

  SessionTableObserver table_observer;
  MultiObserver fanout;
  fanout.add(&cluster.checker());
  fanout.add(&table_observer);
  for (ProcessId p : cluster.all_processes()) {
    cluster.protocol(p).set_observer(&fanout);
  }

  FaultInjector faults(cluster.sim().network());
  // S1: a forms; b, c detach before forming.
  faults.drop_to(ProcessId(1), "dv.attempt", 2);
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  // S2: c, d attempt; b detaches before the attempt step.
  faults.drop_to(ProcessId(1), "dv.info", 2);
  cluster.partition({ProcessSet::of({1, 2, 3}), ProcessSet::of({0}),
                     ProcessSet::of({4})});
  cluster.settle();
  faults.clear();
  // S3 and S3' concurrently.
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  std::printf("--- %s ---\n", to_string(kind));
  std::printf("%s", table_observer.render(5).to_string().c_str());
  const auto violations = cluster.checker().check_all();
  std::size_t split = 0;
  for (const auto& v : violations) split += (v.kind == "split-brain");
  std::printf("live primaries: ");
  ProcessSet live;
  for (const auto& [p, session] : cluster.checker().live_primaries()) {
    live.insert(p);
  }
  std::printf("%s; split-brain violations: %zu\n\n", live.to_string().c_str(),
              split);

  JsonValue row = JsonValue::object();
  row.set("protocol", JsonValue(to_string(kind)));
  row.set("live_primaries", JsonValue(live.to_string()));
  row.set("split_brain", JsonValue(std::uint64_t{split}));
  return row;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("E2: the trivial 'record only the last attempt' approach (paper 4.6)");
  std::puts("    a..e = p0..p4; the S1/S2/S3/S3' execution from the paper\n");
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E2"));
  result.set("n", JsonValue(std::uint64_t{5}));
  result.set("seed", JsonValue(std::uint64_t{46}));
  JsonValue rows = JsonValue::array();
  rows.push_back(run(ProtocolKind::kLastAttemptOnly));
  rows.push_back(run(ProtocolKind::kBasic));
  rows.push_back(run(ProtocolKind::kOptimized));
  result.set("rows", std::move(rows));
  std::puts("Paper expectation: last-attempt-only forms S3 = ({a,b},2) AND");
  std::puts("S3' = ({c,d,e},3) concurrently (split brain); the full protocols");
  std::puts("form only S3 because c still remembers S1 = ({a,b,c},1).");
  emit_bench_result("scenario_trivial", result);
  return 0;
}
