// Experiment E7 — recovery without cold start (paper section 1: "our
// protocol recovers from situations in which the primary component was
// lost (e.g. when the primary component partitions into three minority
// groups) without requiring a cold start of the entire system").
//
// Three measurements:
//   (1) the primary splits into three minorities; pairs of fragments
//       re-merge — who recovers;
//   (2) the same three-way split happens DURING quorum formation (the
//       attempt round is lost) — separating ours from the blocking
//       class;
//   (3) full-cluster crash with stable storage intact, and with some
//       disks destroyed (paper footnote 4).
#include <cstdio>
#include <string>

#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

constexpr std::uint32_t kN = 9;

const ProcessSet kFragA = ProcessSet::of({0, 1, 2});
const ProcessSet kFragB = ProcessSet::of({3, 4, 5});
const ProcessSet kFragC = ProcessSet::of({6, 7, 8});

std::string merge_outcome(ProtocolKind kind, bool fail_mid_formation,
                          const ProcessSet& merged) {
  ClusterOptions options;
  options.kind = kind;
  options.n = kN;
  options.sim.seed = 70;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  if (fail_mid_formation) {
    for (std::uint32_t p = 0; p < kN; ++p) {
      faults.drop_to(ProcessId(p), "dv.attempt", kN - 1);
    }
  }
  cluster.merge();
  cluster.settle();
  faults.clear();

  cluster.partition({kFragA, kFragB, kFragC});
  cluster.settle();
  if (cluster.live_primary().has_value()) return "?";  // unexpected

  std::vector<ProcessSet> components{merged};
  for (std::uint32_t p = 0; p < kN; ++p) {
    if (!merged.contains(ProcessId(p))) {
      components.push_back(ProcessSet{ProcessId(p)});
    }
  }
  cluster.partition(components);
  cluster.settle();
  const auto primary = cluster.live_primary();
  if (primary && primary->members == merged) return "recovered";
  if (cluster.checker().blocked_sessions() > 0) return "blocked";
  return "no";
}

std::string crash_outcome(ProtocolKind kind, std::uint32_t disks_destroyed) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 71;
  Cluster cluster(options);
  cluster.start();
  for (std::uint32_t p = 0; p < 5; ++p) {
    if (p < disks_destroyed) {
      cluster.sim().crash_and_destroy_disk(ProcessId(p));
    } else {
      cluster.crash(ProcessId(p));
    }
  }
  cluster.settle();
  for (std::uint32_t p = 0; p < 5; ++p) cluster.recover(ProcessId(p));
  cluster.merge();
  cluster.settle();
  return cluster.live_primary().has_value() ? "recovered" : "no";
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::printf("E7: recovery after losing the primary component (n = %u)\n\n", kN);

  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E7"));
  result.set("n", JsonValue(std::uint64_t{kN}));
  JsonValue merge_phases = JsonValue::array();
  for (bool mid_formation : {false, true}) {
    std::printf("primary split into three minorities %s:\n",
                mid_formation ? "DURING quorum formation (attempts lost)"
                              : "after a formed quorum");
    Table table({"protocol", "A+B merge (6/9)", "A+C merge (6/9)",
                 "full merge (9/9)"});
    JsonValue rows = JsonValue::array();
    for (ProtocolKind kind :
         {ProtocolKind::kBasic, ProtocolKind::kOptimized,
          ProtocolKind::kBlockingDynamic, ProtocolKind::kStaticMajority}) {
      const std::string ab =
          merge_outcome(kind, mid_formation, kFragA.set_union(kFragB));
      const std::string ac =
          merge_outcome(kind, mid_formation, kFragA.set_union(kFragC));
      const std::string full =
          merge_outcome(kind, mid_formation, ProcessSet::range(kN));
      table.add_row({to_string(kind), ab, ac, full});
      JsonValue row = JsonValue::object();
      row.set("protocol", JsonValue(to_string(kind)));
      row.set("ab_merge", JsonValue(ab));
      row.set("ac_merge", JsonValue(ac));
      row.set("full_merge", JsonValue(full));
      rows.push_back(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
    JsonValue phase = JsonValue::object();
    phase.set("mid_formation", JsonValue(mid_formation));
    phase.set("rows", std::move(rows));
    merge_phases.push_back(std::move(phase));
  }
  result.set("merge_recovery", std::move(merge_phases));

  std::puts("total cluster crash and restart (n = 5, stable storage):");
  Table crash_table({"protocol", "all disks intact", "2 disks destroyed",
                     "all disks destroyed"});
  JsonValue crash_rows = JsonValue::array();
  for (ProtocolKind kind : {ProtocolKind::kBasic, ProtocolKind::kOptimized}) {
    const std::string intact = crash_outcome(kind, 0);
    const std::string two_lost = crash_outcome(kind, 2);
    const std::string all_lost = crash_outcome(kind, 5);
    crash_table.add_row({to_string(kind), intact, two_lost, all_lost});
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(kind)));
    row.set("disks_intact", JsonValue(intact));
    row.set("two_disks_destroyed", JsonValue(two_lost));
    row.set("all_disks_destroyed", JsonValue(all_lost));
    crash_rows.push_back(std::move(row));
  }
  result.set("crash_recovery", std::move(crash_rows));
  std::printf("%s\n", crash_table.to_string().c_str());

  std::puts("Paper expectation: after a clean split, any majority-of-last-");
  std::puts("primary re-merge recovers (no cold start). If the split hit the");
  std::puts("formation itself, the blocking class stays blocked until ALL");
  std::puts("attempters return; ours recovers from any majority. A full crash");
  std::puts("recovers from stable storage; destroyed disks reduce availability");
  std::puts("(all-disks-lost can never re-form: Sub_Quorum(∞,T) = FALSE) but");
  std::puts("never consistency (paper footnotes 2 and 4).");
  emit_bench_result("recovery", result);
  return 0;
}
