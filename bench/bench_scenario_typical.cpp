// Experiment E1 — the typical problematic scenario (paper sections 1 and
// 4.5).
//
// Five processes a..e (= p0..p4). The network splits {a,b,c} | {d,e};
// a and b complete the {a,b,c} session while c detaches before receiving
// the last message; then a,b continue alone and c joins d,e.
//
// Expected shape (paper): the naive protocol class ends with TWO live
// quorums ({a,b} and {c,d,e}); the paper's protocols end with exactly
// one ({a,b}), because c recorded the ambiguous {a,b,c} attempt.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dv/centralized_protocol.hpp"
#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/trace_replay.hpp"
#include "obs/spans.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

struct Outcome {
  ProtocolKind kind;
  std::string live;
  std::size_t live_quorums = 0;
  std::size_t split_brain = 0;
  bool c_recorded_attempt = false;
  std::string trace_json;        // full structured trace of the run
  TraceCheckResult replay;       // offline re-verification of that trace
  obs::SpanReport spans;         // causal spans folded from the trace
  std::size_t trace_events = 0;  // event count of the exported trace
  /// Disagreements between the trace-derived metrics and the live
  /// registry (must be empty: the two accounts describe one run).
  std::vector<std::string> cross_check;
};

Outcome run(ProtocolKind kind) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 2026;
  options.trace_messages = true;
  Cluster cluster(options);

  FaultInjector faults(cluster.sim().network());
  // c misses the closing messages of the {a,b,c} session. For the
  // two-round protocols that is the attempt round; for the one-round
  // naive protocol it is the info exchange itself.
  std::string closing = "dv.attempt";
  int copies = 2;
  if (kind == ProtocolKind::kNaiveDynamic) closing = "dv.info";
  if (kind == ProtocolKind::kCentralized) {
    closing = "dvc.commit";  // the centralized session's closing message
    copies = 1;
  }
  faults.drop_to(ProcessId(2), closing, copies);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  Outcome outcome;
  outcome.kind = kind;
  std::vector<Session> live;
  for (const auto& [p, session] : cluster.checker().live_primaries()) {
    bool known = false;
    for (const auto& s : live) known |= (s == session);
    if (!known) live.push_back(session);
  }
  outcome.live_quorums = live.size();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (i != 0) outcome.live += " + ";
    outcome.live += live[i].members.to_string();
  }
  if (live.empty()) outcome.live = "none";
  for (const auto& v : cluster.checker().check_all()) {
    if (v.kind == "split-brain") ++outcome.split_brain;
  }
  const ProtocolState* c_state = nullptr;
  if (auto* dv = dynamic_cast<BasicDvProtocol*>(&cluster.protocol(ProcessId(2)))) {
    c_state = &dv->state();
  } else if (auto* cent = dynamic_cast<CentralizedDvProtocol*>(
                 &cluster.protocol(ProcessId(2)))) {
    c_state = &cent->state();
  }
  if (c_state != nullptr) {
    for (const auto& amb : c_state->ambiguous) {
      outcome.c_recorded_attempt |=
          amb.session.members == ProcessSet::of({0, 1, 2});
    }
  }
  // Export the structured trace and re-verify it offline: the replay
  // checker must reach the same verdict as the live one.
  outcome.trace_json =
      trace_json_string(cluster.trace_meta(), cluster.sim().trace());
  const TraceMetaAndEvents parsed = load_trace_json(outcome.trace_json);
  outcome.trace_events = parsed.events.size();
  outcome.replay = check_trace(parsed);
  outcome.spans = obs::build_spans(parsed.events);
  outcome.cross_check =
      obs::cross_check_with_registry(outcome.spans, cluster.sim().metrics());
  return outcome;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("E1: the typical problematic scenario (paper sections 1, 4.5)");
  std::puts("    split {a,b,c}|{d,e}; c misses the last message; then {a,b}|{c,d,e}\n");

  Table table({"protocol", "live quorums", "count", "split-brain",
               "c holds {a,b,c}?"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E1"));
  result.set("n", JsonValue(std::uint64_t{5}));
  result.set("seed", JsonValue(std::uint64_t{2026}));
  JsonValue rows = JsonValue::array();
  // In-process wall time of the full end-to-end loop (simulate + export +
  // replay + spans, all 7 protocols). Reported separately because total
  // process wall-clock is dominated by exec/link overhead at this size.
  const auto wall_start = std::chrono::steady_clock::now();
  for (ProtocolKind kind :
       {ProtocolKind::kNaiveDynamic, ProtocolKind::kLastAttemptOnly,
        ProtocolKind::kBasic, ProtocolKind::kOptimized,
        ProtocolKind::kCentralized, ProtocolKind::kBlockingDynamic,
        ProtocolKind::kThreePhaseRecovery}) {
    const auto outcome = run(kind);
    table.add_row({to_string(kind), outcome.live,
                   std::to_string(outcome.live_quorums),
                   outcome.split_brain > 0 ? "VIOLATED" : "ok",
                   outcome.c_recorded_attempt ? "yes" : "-"});
    if (kind == ProtocolKind::kOptimized) {
      // The reference trace artifact: the optimized protocol's full
      // structured trace of the E1 run, replayable by the checker.
      write_json_file("trace.json", JsonValue::parse(outcome.trace_json));
    }
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(kind)));
    row.set("live", JsonValue(outcome.live));
    row.set("live_quorums", JsonValue(std::uint64_t{outcome.live_quorums}));
    row.set("split_brain", JsonValue(std::uint64_t{outcome.split_brain}));
    row.set("c_recorded_attempt", JsonValue(outcome.c_recorded_attempt));
    row.set("trace_replay_consistent", JsonValue(outcome.replay.consistent()));
    row.set("trace_replay_violations",
            JsonValue(std::uint64_t{outcome.replay.violations.size()}));
    row.set("trace_events", JsonValue(std::uint64_t{outcome.trace_events}));
    const auto& derived = outcome.spans.derived;
    row.set("ambiguity_spans",
            JsonValue(std::uint64_t{outcome.spans.ambiguity.size()}));
    row.set("max_open_ambiguity", JsonValue(derived.max_open_ambiguity));
    row.set("time_in_ambiguity_ticks",
            JsonValue(derived.time_in_ambiguity_ticks));
    row.set("primary_uptime_ticks", JsonValue(derived.primary_uptime_ticks));
    row.set("primary_availability",
            JsonValue(derived.primary_availability()));
    row.set("cross_check_ok", JsonValue(outcome.cross_check.empty()));
    rows.push_back(std::move(row));
  }
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  result.set("rows", std::move(rows));
  result.set("wall_us", JsonValue(static_cast<std::uint64_t>(wall_us)));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("end-to-end wall (7 protocols, sim+export+replay): %lld us\n\n",
              static_cast<long long>(wall_us));
  std::puts("Paper expectation: naive class -> two live quorums (inconsistent);");
  std::puts("the paper's protocols -> exactly {p0,p1}, with c's ambiguous record");
  std::puts("of {p0,p1,p2} blocking {p2,p3,p4}.");
  emit_bench_result("scenario_typical", result);
  return 0;
}
