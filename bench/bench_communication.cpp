// Experiment E4 — communication cost per formed quorum (paper sections 1
// and 4.4, and the comparison with [17]).
//
// Measures, for every protocol, the cost of re-forming a quorum when a
// majority of the previous quorum reconnects: communication rounds,
// network messages, on-the-wire bytes, and stable-storage writes. The
// paper's claims:
//
//   * ours: two communication rounds (one if the info exchange is
//     piggybacked on the membership protocol);
//   * explicit three-phase recovery ([17]): at least five rounds;
//   * the symmetric protocol sends O(n^2) point-to-point messages per
//     round; the centralized variant (paper 4.4) needs only 2(n-1) per
//     round, at the cost of an extra hop of latency.
#include <cstdio>
#include <string>

#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

struct Cost {
  double rounds = 0;
  double messages = 0;
  double remote_messages = 0;
  double bytes = 0;
  double storage_writes = 0;
  double latency = 0;  // virtual time from view change to formation
};

/// Re-forms a quorum `trials` times (partition then merge) and reports
/// the marginal cost per formed session.
Cost measure(ProtocolKind kind, std::uint32_t n, int trials) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = 777;
  Cluster cluster(options);
  cluster.start();

  Summary latency;
  const auto base = RunMetrics::collect(cluster);
  const std::size_t base_sessions = cluster.checker().formed_session_count();
  for (int t = 0; t < trials; ++t) {
    // Drop one process out and back in: two quorum formations per trial.
    cluster.partition({cluster.core().set_difference(ProcessSet::of({0})),
                       ProcessSet::of({0})});
    const SimTime before = cluster.sim().now();
    cluster.settle();
    latency.add(static_cast<double>(cluster.sim().now() - before));
    cluster.merge();
    cluster.settle();
  }
  const auto metrics = RunMetrics::collect(cluster);
  const double formed = static_cast<double>(
      cluster.checker().formed_session_count() - base_sessions);

  Cost cost;
  if (formed > 0) {
    cost.messages =
        static_cast<double>(metrics.messages_sent - base.messages_sent) / formed;
    cost.remote_messages =
        static_cast<double>((metrics.messages_sent - metrics.messages_loopback) -
                            (base.messages_sent - base.messages_loopback)) /
        formed;
    cost.bytes =
        static_cast<double>(metrics.bytes_sent - base.bytes_sent) / formed;
    cost.storage_writes =
        static_cast<double>(metrics.storage_writes - base.storage_writes) /
        formed;
  }
  cost.rounds = metrics.mean_rounds;
  cost.latency = latency.empty() ? 0 : latency.mean();
  return cost;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::uint32_t n = 5;
  const int trials = 40;
  std::printf(
      "E4: communication cost per formed quorum (n = %u, %d re-formations)\n\n",
      n, trials);

  Table table({"protocol", "rounds", "msgs/quorum", "remote msgs", "bytes",
               "disk writes", "latency (us)"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E4"));
  result.set("n", JsonValue(std::uint64_t{n}));
  result.set("trials", JsonValue(std::int64_t{trials}));
  JsonValue rows = JsonValue::array();
  for (ProtocolKind kind :
       {ProtocolKind::kStaticMajority, ProtocolKind::kNaiveDynamic,
        ProtocolKind::kBasic, ProtocolKind::kOptimized,
        ProtocolKind::kCentralized, ProtocolKind::kBlockingDynamic,
        ProtocolKind::kHybridJm, ProtocolKind::kThreePhaseRecovery}) {
    const Cost cost = measure(kind, n, trials);
    table.add_row({to_string(kind), format_double(cost.rounds, 1),
                   format_double(cost.messages, 1),
                   format_double(cost.remote_messages, 1),
                   format_double(cost.bytes, 0),
                   format_double(cost.storage_writes, 1),
                   format_double(cost.latency, 0)});
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue(to_string(kind)));
    row.set("rounds", JsonValue(cost.rounds));
    row.set("messages_per_quorum", JsonValue(cost.messages));
    row.set("remote_messages_per_quorum", JsonValue(cost.remote_messages));
    row.set("bytes_per_quorum", JsonValue(cost.bytes));
    row.set("storage_writes_per_quorum", JsonValue(cost.storage_writes));
    row.set("formation_latency_us", JsonValue(cost.latency));
    rows.push_back(std::move(row));
  }
  result.set("rows", std::move(rows));
  std::printf("%s\n", table.to_string().c_str());

  std::puts("Analytic model rows (paper section 4.4):");
  Table model({"variant", "rounds", "remote msgs per round", "total remote"});
  model.add_row({"symmetric (measured above)", "2",
                 std::to_string(n) + "*" + std::to_string(n - 1) + " = " +
                     std::to_string(n * (n - 1)),
                 std::to_string(2 * n * (n - 1))});
  model.add_row({"centralized (measured above)", "4 hops",
                 "n-1 per hop = " + std::to_string(n - 1),
                 std::to_string(4 * (n - 1))});
  std::printf("%s\n", model.to_string().c_str());

  std::puts("Paper expectation: ours = 2 rounds (1 with membership piggyback),");
  std::puts("[17]-style explicit recovery >= 5 rounds; the symmetric variant");
  std::puts("trades n^2 messages for multicast friendliness (paper 4.4).");
  emit_bench_result("communication", result);
  return 0;
}
