// Experiment E9 — dynamically changing quorum requirements (paper
// section 6).
//
// Motivating workload (paper section 1): conferencing applications where
// participants join and leave freely. Measures:
//
//   (1) join latency: time from connecting a new participant to the
//       re-formed primary that includes it, and the W/A admission flow;
//   (2) the availability difference once the core retires: with the
//       fixed-core rule (section 4.1) a quorum must always contain
//       Min_Quorum members of W0; with section 6's W/A sets the joiners
//       are first-class and the system outlives its founders.
#include <cstdio>
#include <string>

#include "dv/basic_protocol.hpp"
#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

const ProtocolState& state_of(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(p)))
      .state();
}

JsonValue join_flow() {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 3;
  options.config.min_quorum = 2;
  options.config.dynamic_participants = true;
  options.sim.seed = 90;
  Cluster cluster(options);
  cluster.start();

  std::puts("(1) join flow: core {p0,p1,p2}, five joiners arrive one by one");
  Table table({"joiner", "join latency (us)", "primary after join", "W after",
               "A after"});
  Summary latency;
  JsonValue rows = JsonValue::array();
  for (std::uint32_t joiner = 3; joiner <= 7; ++joiner) {
    cluster.add_process(ProcessId(joiner));
    const SimTime before = cluster.sim().now();
    cluster.merge();
    cluster.settle();
    const SimTime took = cluster.sim().now() - before;
    latency.add(static_cast<double>(took));
    const auto primary = cluster.live_primary();
    table.add_row({"p" + std::to_string(joiner), std::to_string(took),
                   primary ? primary->members.to_string() : "none",
                   state_of(cluster, 0).participants.admitted().to_string(),
                   state_of(cluster, 0).participants.pending().to_string()});
    JsonValue row = JsonValue::object();
    row.set("joiner", JsonValue(std::uint64_t{joiner}));
    row.set("join_latency_us", JsonValue(std::uint64_t{took}));
    row.set("joined_primary", JsonValue(primary.has_value()));
    rows.push_back(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("mean join latency: %s us\n\n", format_double(latency.mean(), 0).c_str());
  JsonValue block = JsonValue::object();
  block.set("mean_join_latency_us",
            JsonValue(latency.empty() ? 0.0 : latency.mean()));
  block.set("joins", std::move(rows));
  return block;
}

JsonValue core_retirement() {
  std::puts("(2) the core retires: {p0,p1,p2} leave after five joiners were");
  std::puts("    admitted; can the joiners keep a primary? (Min_Quorum = 2)");
  Table table({"quorum rule", "primary among joiners", "verdict"});
  JsonValue rows = JsonValue::array();
  for (bool dynamic : {false, true}) {
    ClusterOptions options;
    options.kind = ProtocolKind::kOptimized;
    options.n = 3;
    options.config.min_quorum = 2;
    options.config.dynamic_participants = dynamic;
    options.sim.seed = 91;
    Cluster cluster(options);
    cluster.start();
    ProcessSet joiners;
    for (std::uint32_t joiner = 3; joiner <= 7; ++joiner) {
      cluster.add_process(ProcessId(joiner));
      joiners.insert(ProcessId(joiner));
      cluster.merge();
      cluster.settle();
    }
    // The founders leave (a partition isolates them; they could equally
    // crash — the quorum rule is what matters).
    cluster.partition({joiners, ProcessSet::of({0, 1, 2})});
    cluster.settle();
    const auto primary = cluster.live_primary();
    const bool joiners_carry = primary && primary->members == joiners;
    table.add_row({dynamic ? "section 6 (W/A sets)" : "fixed core (section 4.1)",
                   joiners_carry ? joiners.to_string() : "none",
                   joiners_carry ? "system outlives its founders"
                                 : "founders' departure strands it"});
    JsonValue row = JsonValue::object();
    row.set("quorum_rule", JsonValue(dynamic ? "dynamic_wa" : "fixed_core"));
    row.set("joiners_carry_primary", JsonValue(joiners_carry));
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return rows;
}

JsonValue churn_availability() {
  std::puts("(3) continuous churn: joiners keep arriving while the network");
  std::puts("    partitions and heals (formed sessions / sessions attempted):");
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 3;
  options.config.dynamic_participants = true;
  options.sim.seed = 92;
  Cluster cluster(options);
  cluster.start();

  std::uint32_t next_joiner = 3;
  for (int round = 0; round < 8; ++round) {
    cluster.add_process(ProcessId(next_joiner++));
    cluster.merge();
    cluster.settle();
    // Random-ish deterministic churn: split off the two lowest ids.
    ProcessSet everyone;
    for (ProcessId p : cluster.all_processes()) everyone.insert(p);
    const ProcessSet low = ProcessSet{everyone.members()[0], everyone.members()[1]};
    cluster.partition({everyone.set_difference(low), low});
    cluster.settle();
    cluster.merge();
    cluster.settle();
  }
  const auto violations = cluster.checker().check_all();
  std::printf("formed sessions: %zu, rejected: %llu, violations: %zu\n",
              cluster.checker().formed_session_count(),
              static_cast<unsigned long long>(cluster.checker().rejected_sessions()),
              violations.size());
  std::printf("final W at p0: %s\n\n",
              state_of(cluster, 0).participants.admitted().to_string().c_str());
  JsonValue block = JsonValue::object();
  block.set("formed_sessions",
            JsonValue(std::uint64_t{cluster.checker().formed_session_count()}));
  block.set("rejected_sessions",
            JsonValue(std::uint64_t{cluster.checker().rejected_sessions()}));
  block.set("violations", JsonValue(std::uint64_t{violations.size()}));
  return block;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("E9: dynamically changing quorum requirements (paper section 6)\n");
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E9"));
  result.set("join_flow", join_flow());
  result.set("core_retirement", core_retirement());
  result.set("churn", churn_availability());
  std::puts("Paper expectation: joiners enter A on contact and move to W on the");
  std::puts("first formed session; with section 6 the Min_Quorum requirement");
  std::puts("counts the grown W, so the system survives the departure of every");
  std::puts("founder — under the fixed core of section 4.1 it cannot.");
  emit_bench_result("dynamic_membership", result);
  return 0;
}
