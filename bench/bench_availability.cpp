// Experiment E5 — availability under random failures (the paper's
// central comparative claim, sections 1 and 4.1).
//
// Paired Monte-Carlo: identical failure schedules replayed against every
// protocol, over a sweep of failure rates. Reported: fraction of virtual
// time some live primary component exists, plus formed/blocked session
// counts and (for the unsafe baselines) consistency violations.
//
// Expected shape (paper + [4,14,18]): dynamic voting above static
// majority everywhere; the gap grows with the failure rate; the
// non-blocking protocol above the blocking one; the naive protocol shows
// high "availability" only by splitting the brain — its violation count
// exposes the cheat.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/availability.hpp"
#include "harness/bench_report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

JsonValue run_sweep(std::uint32_t n, std::size_t min_quorum, int schedules,
                    double formation_miss) {
  std::printf(
      "n = %u processes, Min_Quorum = %zu, %d paired schedules per cell, "
      "formation-miss probability %.0f%%\n\n",
      n, min_quorum, schedules, formation_miss * 100);

  const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kOptimized,      ProtocolKind::kBasic,
      ProtocolKind::kStaticMajority, ProtocolKind::kBlockingDynamic,
      ProtocolKind::kHybridJm,       ProtocolKind::kThreePhaseRecovery,
      ProtocolKind::kNaiveDynamic,
  };

  struct Cell {
    SimTime gap;
    std::vector<AvailabilityResult> results;
  };
  std::vector<Cell> cells;
  for (SimTime gap : {200'000u, 80'000u, 40'000u, 20'000u}) {
    ClusterOptions base;
    base.n = n;
    base.config.min_quorum = min_quorum;
    base.formation_miss = formation_miss;
    ScheduleOptions schedule;
    schedule.duration = 4'000'000;
    schedule.mean_event_gap = gap;
    schedule.seed = 1000;  // same schedule family across gap columns
    cells.push_back({gap, compare_protocols(kinds, base, schedule, schedules)});
  }

  std::vector<std::string> header{"protocol"};
  for (const Cell& cell : cells) {
    header.push_back("gap=" + std::to_string(cell.gap / 1000) + "ms");
  }
  header.push_back("violations");
  header.push_back("blocked");

  JsonValue sweep = JsonValue::object();
  sweep.set("n", JsonValue(std::uint64_t{n}));
  sweep.set("min_quorum", JsonValue(std::uint64_t{min_quorum}));
  sweep.set("schedules", JsonValue(std::int64_t{schedules}));
  sweep.set("formation_miss", JsonValue(formation_miss));
  JsonValue rows = JsonValue::array();

  Table table(header);
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::vector<std::string> row{to_string(kinds[k])};
    std::uint64_t violations = 0;
    std::uint64_t blocked = 0;
    JsonValue availability = JsonValue::object();
    for (const Cell& cell : cells) {
      row.push_back(format_percent(cell.results[k].availability));
      availability.set("gap_" + std::to_string(cell.gap),
                       JsonValue(cell.results[k].availability));
      violations += cell.results[k].violations;
      blocked += cell.results[k].blocked_sessions;
    }
    row.push_back(std::to_string(violations));
    row.push_back(std::to_string(blocked));
    table.add_row(row);
    JsonValue json_row = JsonValue::object();
    json_row.set("protocol", JsonValue(to_string(kinds[k])));
    json_row.set("availability", std::move(availability));
    json_row.set("violations", JsonValue(violations));
    json_row.set("blocked", JsonValue(blocked));
    rows.push_back(std::move(json_row));
  }
  std::printf("%s\n", table.to_string().c_str());
  sweep.set("rows", std::move(rows));
  return sweep;
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  std::puts("E5: availability under random partitions/merges/crashes");
  std::puts("    (paired schedules: every protocol faces identical failures)\n");
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E5"));
  JsonValue sweeps = JsonValue::array();
  sweeps.push_back(run_sweep(5, 1, 8, 0.0));
  sweeps.push_back(run_sweep(9, 1, 5, 0.0));
  std::puts("With failures hitting quorum formation itself: on every topology");
  std::puts("change, with probability 40% per component, one member misses the");
  std::puts("closing round of the session (the paper's section-1 failure mode):\n");
  sweeps.push_back(run_sweep(5, 1, 8, 0.4));
  sweeps.push_back(run_sweep(9, 1, 5, 0.4));
  result.set("sweeps", std::move(sweeps));
  std::puts("Paper expectation: dynamic voting >= static majority, with the gap");
  std::puts("widening as failures get denser (smaller gap); non-blocking >=");
  std::puts("blocking — decisively so once failures hit the protocol itself");
  std::puts("(the formation-miss tables, where blocking stalls on absent");
  std::puts("attempters); naive 'availability' is inflated by split brain —");
  std::puts("its violation count exposes it (a correct protocol must show 0).");
  emit_bench_result("availability", result);
  return 0;
}
