// Ablation bench — what each ingredient of the paper's design buys.
//
// On identical random failure schedules (formation misses included), the
// full optimized protocol is compared against itself with one ingredient
// removed at a time:
//
//   - GC            : the section-5 garbage collection (→ basic protocol)
//   - linear tie    : the [12] tie-break on equal halves (→ plain
//                     dynamic voting, equal splits always lose)
//   - attempt step  : the two-round installation (→ naive protocol;
//                     consistency is the casualty, not availability)
//   - symmetric form: broadcast rounds (→ centralized coordinator;
//                     messages drop, latency rises, decisions identical)
//
// Availability, blocked/violation counts, message totals per variant.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/availability.hpp"
#include "harness/bench_report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

struct Variant {
  std::string name;
  ProtocolKind kind;
  bool linear_tie_break = true;
};

AvailabilityResult run_variant(const Variant& variant, std::uint32_t n,
                               SimTime gap, int schedules) {
  ClusterOptions base;
  base.n = n;
  base.config.min_quorum = 1;
  base.config.linear_tie_break = variant.linear_tie_break;
  base.formation_miss = 0.35;
  ScheduleOptions schedule;
  schedule.duration = 4'000'000;
  schedule.mean_event_gap = gap;
  schedule.seed = 2500;
  const auto results =
      compare_protocols({variant.kind}, base, schedule, schedules);
  return results.front();
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::uint32_t n = 6;  // even: equal splits happen, ties matter
  const int schedules = 8;
  std::printf(
      "Ablation: remove one design ingredient at a time (n = %u, %d paired\n"
      "schedules per cell, 35%% formation-miss probability)\n\n",
      n, schedules);

  const std::vector<Variant> variants = {
      {"full (optimized)", ProtocolKind::kOptimized, true},
      {"- GC (basic)", ProtocolKind::kBasic, true},
      {"- linear tie-break", ProtocolKind::kOptimized, false},
      {"- non-blocking recovery", ProtocolKind::kBlockingDynamic, true},
      {"- attempt step (naive)", ProtocolKind::kNaiveDynamic, true},
      {"- symmetric rounds (centralized)", ProtocolKind::kCentralized, true},
  };

  Table table({"variant", "avail gap=80ms", "avail gap=30ms", "violations",
               "blocked", "msgs (x1000)"});
  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("ablation"));
  result.set("n", JsonValue(std::uint64_t{n}));
  result.set("schedules", JsonValue(std::int64_t{schedules}));
  JsonValue rows = JsonValue::array();
  for (const Variant& variant : variants) {
    const auto slow = run_variant(variant, n, 80'000, schedules);
    const auto fast = run_variant(variant, n, 30'000, schedules);
    table.add_row({variant.name, format_percent(slow.availability),
                   format_percent(fast.availability),
                   std::to_string(slow.violations + fast.violations),
                   std::to_string(slow.blocked_sessions + fast.blocked_sessions),
                   format_double(static_cast<double>(slow.messages_sent +
                                                     fast.messages_sent) /
                                     1000.0,
                                 0)});
    JsonValue row = JsonValue::object();
    row.set("variant", JsonValue(variant.name));
    row.set("availability_gap_80ms", JsonValue(slow.availability));
    row.set("availability_gap_30ms", JsonValue(fast.availability));
    row.set("violations", JsonValue(std::uint64_t{slow.violations + fast.violations}));
    row.set("blocked",
            JsonValue(std::uint64_t{slow.blocked_sessions + fast.blocked_sessions}));
    row.set("messages_sent",
            JsonValue(std::uint64_t{slow.messages_sent + fast.messages_sent}));
    rows.push_back(std::move(row));
  }
  result.set("rows", std::move(rows));
  std::printf("%s\n", table.to_string().c_str());

  std::puts("Reading: the tie-break is the largest single ingredient here —");
  std::puts("it decides every 50/50 split of an even-sized quorum. GC is");
  std::puts("~neutral at this scale (its storage bound is E3's result; its");
  std::puts("availability edge appears at larger n, see E5 at n=9). The");
  std::puts("blocking recovery rule costs 10-15 points. Dropping the attempt");
  std::puts("step looks great on availability and is disqualified by its");
  std::puts("violation count. The centralized variant buys ~2.5x fewer");
  std::puts("messages for two extra message latencies, decisions identical");
  std::puts("(paper section 4.4).");
  emit_bench_result("ablation", result);
  return 0;
}
