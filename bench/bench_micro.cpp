// Experiment E10 — micro-benchmarks (google-benchmark): the protocol's
// internal costs. The paper claims "communication and memory
// requirements are small and it is simple to implement"; these benches
// quantify the local-computation side: Sub_Quorum evaluation, set
// algebra, state serialization, the optimized protocol's learning pass,
// and a whole simulated session end to end.
#include <benchmark/benchmark.h>

#include "dv/optimized_protocol.hpp"
#include "dv/state.hpp"
#include "harness/cluster.hpp"
#include "quorum/sub_quorum.hpp"
#include "util/codec.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

/// Test access: exposes the protected learning/resolution pass and lets
/// the bench install a synthetic state.
class LearningBenchProtocol : public OptimizedDvProtocol {
 public:
  using OptimizedDvProtocol::OptimizedDvProtocol;
  void run_learning(const InfoBySender& infos) { pre_decision_update(infos); }
  void install_state(ProtocolState state) { state_ = std::move(state); }
};

ProcessSet random_subset(Rng& rng, std::uint32_t n, std::uint32_t size) {
  std::vector<ProcessId> all;
  for (std::uint32_t i = 0; i < n; ++i) all.emplace_back(i);
  rng.shuffle(all);
  return ProcessSet(std::vector<ProcessId>(all.begin(), all.begin() + size));
}

void BM_ProcessSetIntersection(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  const ProcessSet a = random_subset(rng, n, n / 2 + 1);
  const ProcessSet b = random_subset(rng, n, n / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersection_size(b));
  }
}
BENCHMARK(BM_ProcessSetIntersection)->Arg(8)->Arg(32)->Arg(128)->Arg(1024);

void BM_ProcessSetUnion(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(2);
  const ProcessSet a = random_subset(rng, n, n / 2 + 1);
  const ProcessSet b = random_subset(rng, n, n / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_union(b));
  }
}
BENCHMARK(BM_ProcessSetUnion)->Arg(8)->Arg(128)->Arg(1024);

void BM_SubQuorumEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(3);
  const QuorumCalculus calc(ProcessSet::range(n), n / 4 + 1);
  const ProcessSet prev = random_subset(rng, n, n / 2 + 1);
  const ProcessSet next = random_subset(rng, n, n / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.sub_quorum(prev, next));
  }
}
BENCHMARK(BM_SubQuorumEvaluation)->Arg(8)->Arg(32)->Arg(128)->Arg(1024);

void BM_EligibilityWithAmbiguousSessions(benchmark::State& state) {
  // The attempt-step decision with k recorded ambiguous attempts — the
  // quantity Theorem 1 bounds by n - Min_Quorum + 1.
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::uint32_t n = 32;
  Rng rng(4);
  const QuorumCalculus calc(ProcessSet::range(n), 2);
  const ProcessSet view = random_subset(rng, n, 20);
  StepAggregates agg;
  agg.max_session = static_cast<SessionNumber>(k);
  agg.max_primary = Session{random_subset(rng, n, 17), 0};
  for (std::size_t i = 0; i < k; ++i) {
    agg.max_ambiguous.push_back(
        Session{random_subset(rng, n, 17), static_cast<SessionNumber>(i + 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_eligibility(calc, agg, view));
  }
}
BENCHMARK(BM_EligibilityWithAmbiguousSessions)->Arg(1)->Arg(8)->Arg(31);

void BM_LearningAndResolutionPass(benchmark::State& state) {
  // The optimized protocol's step-2 garbage collection (paper 5.2 /
  // figure 2): k recorded ambiguous sessions examined against the
  // Last_Formed gossip of a full view. This is the per-session price of
  // the Theorem-1 storage bound.
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::uint32_t n = 16;
  const ProcessSet core = ProcessSet::range(n);
  Rng rng(8);

  sim::Simulator sim;
  auto protocol = std::make_unique<LearningBenchProtocol>(
      sim, ProcessId(0), DvConfig{core, 1, false, true, 0});
  auto* bench_protocol = protocol.get();
  sim.add_node(std::move(protocol));

  // k ambiguous sessions at p0, all containing a few common peers.
  ProtocolState proto_state = ProtocolState::initial(core, ProcessId(0));
  for (std::size_t i = 0; i < k; ++i) {
    ProcessSet members = random_subset(rng, n, 9);
    members.insert(ProcessId(0));
    proto_state.record_attempt(
        Session{members, static_cast<SessionNumber>(i + 1)}, ProcessId(0));
  }

  // Step-1 messages of a full view: everyone still reports F0 history.
  std::vector<InfoPayload> payloads(n);
  InfoBySender infos;
  for (std::uint32_t q = 0; q < n; ++q) {
    payloads[q].session_number = 0;
    payloads[q].last_primary = Session{core, 0};
    for (ProcessId r : core) payloads[q].last_formed.emplace(r, Session{core, 0});
    infos.emplace(ProcessId(q), &payloads[q]);
  }

  for (auto _ : state) {
    state.PauseTiming();
    bench_protocol->install_state(proto_state);  // learning mutates it
    state.ResumeTiming();
    bench_protocol->run_learning(infos);
  }
}
BENCHMARK(BM_LearningAndResolutionPass)->Arg(1)->Arg(4)->Arg(16);

void BM_StateEncode(benchmark::State& state) {
  const auto ambiguous = static_cast<std::size_t>(state.range(0));
  const std::uint32_t n = 16;
  Rng rng(5);
  ProtocolState proto_state = ProtocolState::initial(ProcessSet::range(n), ProcessId(0));
  for (std::size_t i = 0; i < ambiguous; ++i) {
    ProcessSet members = random_subset(rng, n, 9);
    members.insert(ProcessId(0));
    proto_state.record_attempt(
        Session{members, static_cast<SessionNumber>(i + 1)}, ProcessId(0));
  }
  for (auto _ : state) {
    Encoder enc;
    proto_state.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
  // Report the stable-storage record size the paper's write-ahead rule pays.
  Encoder enc;
  proto_state.encode(enc);
  state.counters["state_bytes"] = static_cast<double>(enc.size());
}
BENCHMARK(BM_StateEncode)->Arg(0)->Arg(4)->Arg(15);

void BM_StateDecode(benchmark::State& state) {
  const std::uint32_t n = 16;
  Rng rng(6);
  ProtocolState proto_state = ProtocolState::initial(ProcessSet::range(n), ProcessId(0));
  for (std::size_t i = 0; i < 8; ++i) {
    ProcessSet members = random_subset(rng, n, 9);
    members.insert(ProcessId(0));
    proto_state.record_attempt(
        Session{members, static_cast<SessionNumber>(i + 1)}, ProcessId(0));
  }
  Encoder enc;
  proto_state.encode(enc);
  const auto bytes = std::move(enc).take();
  for (auto _ : state) {
    Decoder dec(bytes);
    benchmark::DoNotOptimize(ProtocolState::decode(dec));
  }
}
BENCHMARK(BM_StateDecode);

void BM_FullSimulatedSession(benchmark::State& state) {
  // End-to-end: a partition plus a merge, i.e. two complete protocol
  // sessions over the simulated network, everything included (views,
  // codec, stable storage).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto kind = static_cast<ProtocolKind>(state.range(1));
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = 7;
  // Throughput bench: skip the replay-equals-snapshot audit (O(state)
  // per persist, on by default for tests) so the measured path is the
  // production one. The persistence suite covers the audit.
  options.config.persistence.cross_check = false;
  Cluster cluster(options);
  cluster.start();
  ProcessSet majority;
  for (std::uint32_t i = 1; i < n; ++i) majority.insert(ProcessId(i));
  // One untimed warmup cycle: the first partition/merge pair does the
  // initial formation work, every later cycle is steady-state and sends
  // the exact same number of messages. Reporting the per-cycle delta
  // keeps "msgs" deterministic no matter how many iterations the
  // benchmark runner picks (the raw total scales with iteration count).
  cluster.partition({majority, ProcessSet::of({0})});
  cluster.settle();
  cluster.merge();
  cluster.settle();
  const auto warm = cluster.sim().network().stats().messages_sent;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cluster.partition({majority, ProcessSet::of({0})});
    cluster.settle();
    cluster.merge();
    cluster.settle();
    ++cycles;
  }
  const auto sent = cluster.sim().network().stats().messages_sent - warm;
  state.counters["msgs"] =
      cycles == 0 ? 0.0
                  : static_cast<double>(sent) / static_cast<double>(cycles);
}
BENCHMARK(BM_FullSimulatedSession)
    ->Args({5, static_cast<int>(ProtocolKind::kBasic)})
    ->Args({5, static_cast<int>(ProtocolKind::kOptimized)})
    ->Args({15, static_cast<int>(ProtocolKind::kBasic)})
    ->Args({15, static_cast<int>(ProtocolKind::kOptimized)})
    ->Args({31, static_cast<int>(ProtocolKind::kOptimized)});

}  // namespace
}  // namespace dynvote

BENCHMARK_MAIN();
