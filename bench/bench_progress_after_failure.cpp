// Experiment E6 — progress after a failure DURING quorum formation
// (paper section 1: "our protocol requires only a majority of the
// members that attempted to form the last quorum to become reconnected
// ... while previously suggested protocols block until all the members
// of the last quorum become reconnected").
//
// Setup: all n processes attempt session S but nobody forms it (the
// attempt round is lost). Then a component of k of the attempters
// reconnects, for every k. Reported: which protocols re-form a primary.
//
// Expected shape: ours proceeds for every k > n/2 (and k = n/2 with the
// top-ranked member); blocking proceeds only at k = n.
#include <cstdio>
#include <string>

#include "harness/bench_report.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

/// Returns "formed" / "blocked" / "refused" for a k-member reconnection
/// after the failed attempt.
std::string reconnect_outcome(ProtocolKind kind, std::uint32_t n,
                              std::uint32_t k, bool include_top) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = 600 + n * 17 + k * 3 + (include_top ? 1 : 0);
  Cluster cluster(options);

  FaultInjector faults(cluster.sim().network());
  for (std::uint32_t p = 0; p < n; ++p) {
    faults.drop_to(ProcessId(p), "dv.attempt", static_cast<int>(n - 1));
  }
  cluster.merge();
  cluster.settle();
  faults.clear();

  // Reconnect k attempters; the rest sit in singleton components. The
  // group either includes the top-ranked process (p_{n-1}) or not, which
  // decides ties at k = n/2.
  ProcessSet group;
  if (include_top) {
    for (std::uint32_t i = 0; i < k; ++i) group.insert(ProcessId(n - 1 - i));
  } else {
    for (std::uint32_t i = 0; i < k; ++i) group.insert(ProcessId(i));
  }
  std::vector<ProcessSet> components{group};
  for (std::uint32_t p = 0; p < n; ++p) {
    if (!group.contains(ProcessId(p))) components.push_back(ProcessSet{ProcessId(p)});
  }
  cluster.partition(components);
  if (k == n) {
    // Everyone stayed connected through the lost round, so there is no
    // topology change to report; the membership service re-announces the
    // (unchanged) view instead.
    cluster.oracle().inject_view(group);
  }
  cluster.settle();

  const auto primary = cluster.live_primary();
  if (primary && primary->members == group) return "formed";
  if (cluster.checker().blocked_sessions() > 0) return "blocked";
  return "refused";
}

}  // namespace
}  // namespace dynvote

int main() {
  using namespace dynvote;
  const std::uint32_t n = 6;
  std::printf(
      "E6: failure during quorum formation — all %u processes attempted S,\n"
      "nobody formed it; k attempters reconnect. Who makes progress?\n\n",
      n);

  JsonValue result = JsonValue::object();
  result.set("experiment", JsonValue("E6"));
  result.set("n", JsonValue(std::uint64_t{n}));
  JsonValue groups = JsonValue::array();
  for (bool include_top : {true, false}) {
    std::printf("reconnecting group %s the top-ranked process p%u:\n",
                include_top ? "INCLUDES" : "EXCLUDES", n - 1);
    std::vector<std::string> header{"protocol"};
    for (std::uint32_t k = 2; k <= n; ++k) header.push_back("k=" + std::to_string(k));
    Table table(header);
    JsonValue rows = JsonValue::array();
    for (ProtocolKind kind :
         {ProtocolKind::kBasic, ProtocolKind::kOptimized,
          ProtocolKind::kBlockingDynamic, ProtocolKind::kThreePhaseRecovery}) {
      std::vector<std::string> row{to_string(kind)};
      JsonValue outcomes = JsonValue::object();
      for (std::uint32_t k = 2; k <= n; ++k) {
        const std::string outcome = reconnect_outcome(kind, n, k, include_top);
        outcomes.set("k" + std::to_string(k), JsonValue(outcome));
        row.push_back(outcome);
      }
      table.add_row(row);
      JsonValue json_row = JsonValue::object();
      json_row.set("protocol", JsonValue(to_string(kind)));
      json_row.set("outcomes", std::move(outcomes));
      rows.push_back(std::move(json_row));
    }
    std::printf("%s\n", table.to_string().c_str());
    JsonValue group = JsonValue::object();
    group.set("includes_top_ranked", JsonValue(include_top));
    group.set("rows", std::move(rows));
    groups.push_back(std::move(group));
  }
  result.set("groups", std::move(groups));

  std::puts("Paper expectation: ours/optimized/3phase form for every majority");
  std::puts("k > n/2 (and at k = n/2 exactly when the group holds the");
  std::puts("top-ranked process); blocking-dynamic forms only at k = n.");
  emit_bench_result("progress_after_failure", result);
  return 0;
}
