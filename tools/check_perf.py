#!/usr/bin/env python3
"""Compare results/BENCH_*.json against committed baselines.

Usage:
  tools/check_perf.py [--results DIR] [--baselines DIR]
                      [--tolerance FRACTION] [--update] [--only BENCH]

Every bench emits a machine-readable results/BENCH_<name>.json (see
harness/bench_report.hpp). This script walks each baseline document and
the freshly generated one in lockstep:

  * numeric leaves whose key looks like a timing/throughput metric
    ("wall", "ms", "time", "per_sec", "speedup", "ns", "cpu", "rate")
    are allowed to drift: a run only fails when it is more than
    --tolerance slower than baseline (improvements always pass and are
    reported);
  * every other leaf — counts, availability fractions, violation tallies,
    protocol names, determinism flags — must match exactly: benches are
    seeded and deterministic, so any drift there is a behavior change,
    not noise, and the right fix is to regenerate baselines consciously
    (--update) in the commit that changed behavior;
  * a numeric leaf with a sibling "<key>_budget" is *budget-gated*: the
    current value must stay at or under the current budget (e.g.
    telemetry_overhead_frac <= telemetry_overhead_frac_budget). The
    measured value is noisy by nature, so it is never compared against
    the baseline; the budget itself IS compared exactly, so a budget
    cannot loosen silently;
  * symmetrically, a numeric leaf with a sibling "<key>_floor" is
    *floor-gated*: the value must stay at or ABOVE the floor. Budgets
    bound costs (latency, overhead); floors bound rates (throughput,
    formed-quorums/sec), where lower is the regression direction;
  * machine-dependent context (google-benchmark's "context" block,
    pool_threads, dates) is skipped;
  * each recorded baseline carries a "host_fingerprint" block naming the
    machine that produced it. When the comparing host's fingerprint
    differs from the baseline's, timing-banded comparisons are skipped
    entirely — absolute wall-clock from another machine is noise, not a
    baseline. Budget gates still apply (current value vs current budget
    is machine-local), and exact-match leaves still apply (determinism
    does not depend on the host).

The default tolerance is deliberately wide (75%): wall-clock on shared
runners is noisy, and the checker's job is to catch the step-function
regressions a data-structure or algorithm change causes, not 10% jitter.
Tighten with --tolerance 0.25 on a quiet dedicated box.

A bench result with no committed baseline (a brand-new bench) is
recorded as the baseline on the spot ("no baseline, recording") and the
run still exits 0 — commit the recorded file to start its trajectory.

Exit status: 0 = all within band, 1 = regression or mismatch, 2 = usage.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

# Keys whose numeric values measure time or throughput on the host
# machine: tolerance-banded rather than exact. Unit suffixes match as
# "_ns" / "ns_" (not the bare substring): a bare "ns" would classify
# deterministic counts like "violations" or "formed_sessions" as noisy
# timing and exempt them from the exact-match contract.
TIMING_MARKERS = ("wall", "_ms", "ms_", "_us", "us_", "_ns", "ns_", "time",
                  "per_sec", "speedup", "cpu", "rate", "iterations")

# Baseline-only annotation written by --update / auto-record; never
# emitted by the benches themselves, so it is stripped before comparing.
FINGERPRINT_KEY = "host_fingerprint"


def host_fingerprint() -> dict:
    """Identity of the machine producing wall-clock numbers."""
    cpu_model = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 0,
        "cpu_model": cpu_model,
    }


def record_baseline(current_path: Path, baseline_path: Path) -> None:
    """Copies a result into the baselines, stamped with this host."""
    with open(current_path) as f:
        data = json.load(f)
    data[FINGERPRINT_KEY] = host_fingerprint()
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    with open(baseline_path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")

# Keys that depend on the machine or the moment, not the code: skipped.
SKIP_KEYS = {"context", "date", "executable", "load_avg", "pool_threads",
             "library_version", "library_build_type", "library_metadata",
             "caches", "num_cpus", "mhz_per_cpu", "cpu_scaling_enabled"}

REL_EPSILON = 1e-9  # exact-float comparison slack (serialization round-trip)


def is_timing_key(key: str) -> bool:
    lowered = key.lower()
    return any(marker in lowered for marker in TIMING_MARKERS)


class Report:
    def __init__(self) -> None:
        self.regressions: list[str] = []
        self.improvements: list[str] = []
        self.mismatches: list[str] = []

    @property
    def failed(self) -> bool:
        return bool(self.regressions or self.mismatches)


def compare(baseline, current, path: str, timing: bool, tolerance: float,
            report: Report, skip_timing: bool = False) -> None:
    if type(baseline) is not type(current) and not (
            isinstance(baseline, (int, float))
            and isinstance(current, (int, float))):
        report.mismatches.append(
            f"{path}: type changed ({type(baseline).__name__} -> "
            f"{type(current).__name__})")
        return
    if isinstance(baseline, dict):
        for key in baseline:
            if key in SKIP_KEYS:
                continue
            if key not in current:
                report.mismatches.append(f"{path}.{key}: missing from current run")
                continue
            budget_key = f"{key}_budget"
            floor_key = f"{key}_floor"
            if budget_key in current and isinstance(
                    current[key], (int, float)) and not isinstance(
                    current[key], bool):
                # Budget-gated: the measurement is noisy, the budget is
                # the contract. (The budget key itself is compared
                # exactly on its own turn through this loop.)
                if current[key] > current[budget_key]:
                    report.regressions.append(
                        f"{path}.{key}: {current[key]:g} over budget "
                        f"{current[budget_key]:g}")
                continue
            if floor_key in current and isinstance(
                    current[key], (int, float)) and not isinstance(
                    current[key], bool):
                # Floor-gated: rates regress downward.
                if current[key] < current[floor_key]:
                    report.regressions.append(
                        f"{path}.{key}: {current[key]:g} under floor "
                        f"{current[floor_key]:g}")
                continue
            compare(baseline[key], current[key], f"{path}.{key}",
                    timing or is_timing_key(key), tolerance, report,
                    skip_timing)
        for key in current:
            if key not in baseline and key not in SKIP_KEYS:
                report.mismatches.append(
                    f"{path}.{key}: new key absent from baseline "
                    f"(regenerate with --update)")
        return
    if isinstance(baseline, list):
        if len(baseline) != len(current):
            report.mismatches.append(
                f"{path}: length changed ({len(baseline)} -> {len(current)})")
            return
        for i, (b, c) in enumerate(zip(baseline, current)):
            compare(b, c, f"{path}[{i}]", timing, tolerance, report,
                    skip_timing)
        return
    if isinstance(baseline, bool) or isinstance(current, bool):
        if baseline != current:
            report.mismatches.append(f"{path}: {baseline} -> {current}")
        return
    if isinstance(baseline, (int, float)):
        if timing:
            if skip_timing:
                # Baseline came from a different machine; its absolute
                # wall-clock is not comparable. Budget gates (handled at
                # the dict level) are the only timing contract here.
                return
            if baseline > 0 and current > baseline * (1.0 + tolerance):
                report.regressions.append(
                    f"{path}: {baseline:g} -> {current:g} "
                    f"(+{(current / baseline - 1) * 100:.0f}%, "
                    f"band +{tolerance * 100:.0f}%)")
            elif baseline > 0 and current < baseline * (1.0 - tolerance):
                report.improvements.append(
                    f"{path}: {baseline:g} -> {current:g} "
                    f"({(1 - current / baseline) * 100:.0f}% faster)")
            return
        if baseline != current:
            scale = max(abs(baseline), abs(current), 1.0)
            if abs(baseline - current) > REL_EPSILON * scale:
                report.mismatches.append(f"{path}: {baseline!r} -> {current!r}")
        return
    if baseline != current:
        report.mismatches.append(f"{path}: {baseline!r} -> {current!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--results", type=Path, default=Path("results"))
    parser.add_argument("--baselines", type=Path,
                        default=Path("results/baselines"))
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="allowed fractional slowdown for timing metrics "
                             "(default 0.75 = 75%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the baselines instead "
                             "of comparing")
    parser.add_argument("--only", metavar="BENCH", default=None,
                        help="restrict to one bench by name (e.g. 'runtime' "
                             "for BENCH_runtime.json); applies to compare, "
                             "--update, and auto-record")
    args = parser.parse_args()

    def selected(path: Path) -> bool:
        return args.only is None or path.stem == f"BENCH_{args.only}"

    current_files = [f for f in sorted(args.results.glob("BENCH_*.json"))
                     if selected(f)]
    if args.update:
        for f in current_files:
            record_baseline(f, args.baselines / f.name)
            print(f"baseline updated: {args.baselines / f.name}")
        return 0

    baseline_files = [f for f in sorted(args.baselines.glob("BENCH_*.json"))
                      if selected(f)]
    if not baseline_files and not current_files:
        print(f"check_perf: no baselines in {args.baselines} and no results "
              f"in {args.results}"
              + (f" matching --only {args.only}" if args.only else "")
              + "; run the benches first", file=sys.stderr)
        return 2

    failed = False
    for baseline_path in baseline_files:
        current_path = args.results / baseline_path.name
        if not current_path.exists():
            print(f"FAIL {baseline_path.name}: bench result missing from "
                  f"{args.results}")
            failed = True
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(current_path) as f:
            current = json.load(f)
        # The fingerprint annotates the baseline; it is not bench output.
        baseline_host = baseline.pop(FINGERPRINT_KEY, None)
        current.pop(FINGERPRINT_KEY, None)
        foreign = baseline_host is not None and baseline_host != host_fingerprint()
        report = Report()
        compare(baseline, current, baseline_path.stem, False, args.tolerance,
                report, skip_timing=foreign)
        status = "FAIL" if report.failed else "ok"
        if foreign:
            status += " (foreign-host baseline: timing bands skipped,"\
                      " budgets enforced)"
        print(f"{status:4} {baseline_path.name}"
              f" ({len(report.regressions)} regressions,"
              f" {len(report.mismatches)} mismatches,"
              f" {len(report.improvements)} improvements)")
        for line in report.regressions:
            print(f"  REGRESSION {line}")
        for line in report.mismatches:
            print(f"  MISMATCH   {line}")
        for line in report.improvements:
            print(f"  faster     {line}")
        failed |= report.failed

    # A bench without a committed baseline (always the case for a brand-new
    # bench) is neither a failure nor a silent pass: record its first result
    # as the baseline so the perf trajectory starts in this run, and say so.
    extra = [f for f in current_files
             if not (args.baselines / f.name).exists()]
    for current_path in extra:
        record_baseline(current_path, args.baselines / current_path.name)
        print(f"no baseline, recording: {current_path.name} -> "
              f"{args.baselines / current_path.name}")

    if failed:
        print("check_perf: perf regression or deterministic-output mismatch; "
              "if intentional, regenerate baselines with --update")
        return 1
    print("check_perf: all benches within the tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
