// dvtrace: query and export tool for exported trace.json files.
//
//   dvtrace timeline <trace.json>            chronological event listing
//   dvtrace explain-abort <trace.json> [id]  causal chain of an abort
//   dvtrace ambiguity <trace.json>           ambiguous-record lifetimes +
//                                            Theorem-1 bound check
//   dvtrace spans <trace.json> [--out f]     span report as JSON
//   dvtrace export-chrome <trace.json> [--out f]
//                                            Chrome trace-event / Perfetto
//                                            JSON (validated before write)
//
// Exit codes: 0 success, 1 a check failed (Theorem-1 bound exceeded, no
// causal root, Chrome JSON invalid), 2 usage or I/O error.
//
// Everything here works from the file alone — the tool never needs the
// process that produced the trace (see docs/OBSERVABILITY.md).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/trace_replay.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

using dynvote::JsonValue;
using dynvote::TraceMetaAndEvents;
using dynvote::obs::SpanReport;
using dynvote::obs::TraceEvent;
using dynvote::obs::TraceEventKind;

int usage() {
  std::cerr
      << "usage: dvtrace <command> <trace.json> [args]\n"
         "  timeline <trace.json>                 list events in order\n"
         "  explain-abort <trace.json> [view-id]  causal chain of an abort\n"
         "                                        (default: the last abort)\n"
         "  ambiguity <trace.json>                lifetimes + Theorem-1 check\n"
         "  spans <trace.json> [--out FILE]       span report JSON\n"
         "  export-chrome <trace.json> [--out FILE]\n"
         "                                        Chrome trace-event JSON\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

/// "--out FILE" anywhere after the trace path; empty = stdout.
std::string parse_out(int argc, char** argv, int from) {
  for (int i = from; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return {};
}

std::string describe(const TraceEvent& e) {
  std::string out = "[" + std::to_string(e.time) + "us] #" +
                    std::to_string(e.eid) + " " +
                    std::string(to_string(e.kind)) + " p" +
                    std::to_string(e.a.value());
  switch (e.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDeliver:
    case TraceEventKind::kMessageDrop:
      out += "->p" + std::to_string(e.b.value());
      if (e.kind == TraceEventKind::kMessageDrop) {
        out += " (" +
               std::string(to_string(
                   static_cast<dynvote::obs::DropCause>(e.value))) +
               ")";
      }
      if (!e.detail.empty()) out += " " + e.detail;
      break;
    case TraceEventKind::kTopologyChange:
      out = "[" + std::to_string(e.time) + "us] #" + std::to_string(e.eid) +
            " topology " + e.members.to_string();
      break;
    case TraceEventKind::kViewInstalled:
      out += " view " + std::to_string(e.number) + " " + e.members.to_string();
      break;
    case TraceEventKind::kSessionAttempt:
    case TraceEventKind::kSessionFormed:
    case TraceEventKind::kAmbiguityResolved:
    case TraceEventKind::kAmbiguityAdopted:
      out += " session " + std::to_string(e.number) + " " +
             e.members.to_string();
      if (e.kind == TraceEventKind::kSessionFormed) {
        out += " after " + std::to_string(e.value) + " rounds";
      }
      if (!e.detail.empty()) out += " [" + e.detail + "]";
      break;
    case TraceEventKind::kSessionAbort:
      out += " view " + std::to_string(e.number) + " " + e.members.to_string() +
             ": " + e.detail;
      break;
    case TraceEventKind::kAmbiguityRecord:
      out += " level=" + std::to_string(e.value);
      break;
    default:
      break;
  }
  if (e.lamport != 0) out += " (L=" + std::to_string(e.lamport) + ")";
  if (e.cause != 0) out += " <- #" + std::to_string(e.cause);
  return out;
}

int cmd_timeline(const TraceMetaAndEvents& trace) {
  std::cout << "protocol=" << trace.meta.protocol << " n=" << trace.meta.n
            << " min_quorum=" << trace.meta.min_quorum
            << " seed=" << trace.meta.seed << " events="
            << trace.events.size();
  if (trace.meta.overwritten != 0) {
    std::cout << " (TRUNCATED: " << trace.meta.overwritten << " evicted)";
  }
  std::cout << "\n";
  for (const TraceEvent& event : trace.events) {
    std::cout << describe(event) << "\n";
  }
  return 0;
}

int cmd_explain_abort(const TraceMetaAndEvents& trace,
                      std::optional<std::int64_t> view_id) {
  const TraceEvent* abort_event = nullptr;
  for (const TraceEvent& event : trace.events) {
    if (event.kind != TraceEventKind::kSessionAbort) continue;
    if (view_id && event.number != *view_id) continue;
    abort_event = &event;  // keep the last match
  }
  if (abort_event == nullptr) {
    std::cerr << "dvtrace: no matching session abort in trace\n";
    return 1;
  }

  const auto chain =
      dynvote::obs::causal_chain(trace.events, abort_event->eid);
  std::cout << "abort of view " << abort_event->number << " at p"
            << abort_event->a.value() << ", reason: " << abort_event->detail
            << "\ncausal chain (root first):\n";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    std::cout << std::string(2 * i, ' ') << describe(*chain[i]) << "\n";
  }
  if (chain.empty() || chain.front()->cause != 0) {
    std::cerr << "dvtrace: chain truncated (root evicted by the ring "
                 "bound)\n";
    return 1;
  }
  std::cout << "root cause: " << to_string(chain.front()->kind) << " #"
            << chain.front()->eid << "\n";
  return 0;
}

int cmd_ambiguity(const TraceMetaAndEvents& trace, const SpanReport& report) {
  const auto& d = report.derived;
  for (const auto& span : report.ambiguity) {
    std::cout << "p" << span.process.value() << " session " << span.number
              << " " << span.members.to_string() << " [" << span.start << "us"
              << ", " << span.end << "us] " << span.resolution << "\n";
  }
  std::cout << "records=" << report.ambiguity.size()
            << " max_simultaneous=" << d.max_open_ambiguity
            << " max_level=" << d.max_ambiguity_level
            << " time_in_ambiguity=" << d.time_in_ambiguity_ticks << "us"
            << " horizon=" << d.horizon << "us\n";
  if (trace.meta.ambiguity_bound != 0) {
    const auto bound =
        static_cast<std::uint64_t>(trace.meta.ambiguity_bound);
    if (d.max_open_ambiguity > bound || d.max_ambiguity_level > bound) {
      std::cerr << "dvtrace: Theorem-1 bound violated: "
                << "max_simultaneous=" << d.max_open_ambiguity
                << " max_level=" << d.max_ambiguity_level << " bound=" << bound
                << "\n";
      return 1;
    }
    std::cout << "Theorem-1 bound ok (<= " << bound << ")\n";
  } else {
    std::cout << "Theorem-1 bound not applicable to this protocol\n";
  }
  return 0;
}

int emit_json(const JsonValue& doc, const std::string& out_path) {
  const std::string text = doc.dump();
  if (out_path.empty()) {
    std::cout << text << "\n";
    return 0;
  }
  if (!write_file(out_path, text + "\n")) {
    std::cerr << "dvtrace: cannot write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << " (" << text.size() + 1 << " bytes)\n";
  return 0;
}

/// Validates a Chrome trace-event document by re-parsing its own dump:
/// traceEvents must be an array, every entry needs name/ph/pid/ts, "X"
/// entries need dur, and async "b"/"e" pairs must balance per id.
bool validate_chrome(const JsonValue& doc, std::string& error) {
  try {
    const JsonValue reparsed = JsonValue::parse(doc.dump());
    const JsonValue& events = reparsed.at("traceEvents");
    std::vector<std::string> open_async;
    for (const JsonValue& e : events.as_array()) {
      const std::string& ph = e.at("ph").as_string();
      (void)e.at("name").as_string();
      (void)e.at("pid").as_uint();
      if (ph != "M") (void)e.at("ts").as_uint();
      if (ph == "X") (void)e.at("dur").as_uint();
      if (ph == "b") open_async.push_back(e.at("id").as_string());
      if (ph == "e") {
        const std::string& id = e.at("id").as_string();
        const auto it =
            std::find(open_async.begin(), open_async.end(), id);
        if (it == open_async.end()) {
          error = "async end without begin (id " + id + ")";
          return false;
        }
        open_async.erase(it);
      }
    }
    if (!open_async.empty()) {
      error = std::to_string(open_async.size()) + " unbalanced async begins";
      return false;
    }
  } catch (const dynvote::JsonError& e) {
    error = e.what();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  const auto text = read_file(path);
  if (!text) {
    std::cerr << "dvtrace: cannot read " << path << "\n";
    return 2;
  }
  TraceMetaAndEvents trace;
  try {
    trace = dynvote::load_trace_json(*text);
  } catch (const dynvote::JsonError& e) {
    std::cerr << "dvtrace: " << path << ": " << e.what() << "\n";
    return 2;
  }

  if (command == "timeline") return cmd_timeline(trace);

  if (command == "explain-abort") {
    std::optional<std::int64_t> view_id;
    if (argc > 3) view_id = std::stoll(argv[3]);
    return cmd_explain_abort(trace, view_id);
  }

  const SpanReport report = dynvote::obs::build_spans(trace.events);

  if (command == "ambiguity") return cmd_ambiguity(trace, report);

  if (command == "spans") {
    return emit_json(dynvote::obs::spans_to_json(report),
                     parse_out(argc, argv, 3));
  }

  if (command == "export-chrome") {
    const JsonValue doc =
        dynvote::obs::chrome_trace_json(trace.meta, trace.events, report);
    std::string error;
    if (!validate_chrome(doc, error)) {
      std::cerr << "dvtrace: invalid Chrome trace JSON: " << error << "\n";
      return 1;
    }
    return emit_json(doc, parse_out(argc, argv, 3));
  }

  return usage();
}
