// dvtrace: query and export tool for exported trace.json files.
//
//   dvtrace timeline <trace.json>            chronological event listing
//   dvtrace explain-abort <trace.json> [id]  causal chain of an abort
//   dvtrace ambiguity <trace.json>           ambiguous-record lifetimes +
//                                            Theorem-1 bound check
//   dvtrace spans <trace.json> [--out f]     span report as JSON
//   dvtrace export-chrome <trace.json> [--out f]
//                                            Chrome trace-event / Perfetto
//                                            JSON (validated before write)
//   dvtrace fleet <fleet_telemetry.json>     fleet health report: per-shard
//                                            table, slowest reconfigs with
//                                            flight-recorder root causes,
//                                            time series, post-mortems
//   dvtrace runtime <runtime_probes.json>    wall-clock probe report: per-lane
//                                            summary, reconfiguration phase
//                                            breakdown, merged cross-thread
//                                            drill-down of the slowest window,
//                                            optional Chrome trace export
//
// Trace commands accept `--group G` on sharded traces (meta carries the
// fleet shape): the trace is restricted to group G's events before the
// command runs, so timeline/ambiguity/spans read as single-group runs.
//
// `fleet` takes the telemetry document bench_shards exports (NOT a
// trace); `--top K` bounds the slowest-reconfiguration listing and
// `--expect-postmortem` makes the exit code assert that at least one
// post-mortem with an intact causal chain is present (the violation-demo
// check in run_experiments.sh).
//
// `runtime` takes the probe document bench_runtime exports (also not a
// trace): the wall-clock probe rings of a runtime backend — one lane
// per process thread (thread-per-process) or one lane per worker (the
// M:N pool, meta.workers > 0; the report adds a per-worker scheduler
// table with batch-size histograms, run-queue depths, and handoff
// counts). `--top K` bounds the slowest-window drill-down and
// `--chrome FILE` writes a validated Chrome trace-event export of the
// whole document (one tid per lane, async span per reconfiguration,
// pool handler slices labeled with their handling process).
//
// Exit codes: 0 success, 1 a check failed (Theorem-1 bound exceeded, no
// causal root, Chrome JSON invalid, missing expected post-mortem),
// 2 usage or I/O error.
//
// Everything here works from the file alone — the tool never needs the
// process that produced the trace (see docs/OBSERVABILITY.md).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/trace_replay.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_probe.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "util/ensure.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using dynvote::JsonValue;
using dynvote::TraceMetaAndEvents;
using dynvote::obs::SpanReport;
using dynvote::obs::TraceEvent;
using dynvote::obs::TraceEventKind;

int usage() {
  std::cerr
      << "usage: dvtrace <command> <trace.json> [args]\n"
         "  timeline <trace.json>                 list events in order\n"
         "  explain-abort <trace.json> [view-id]  causal chain of an abort\n"
         "                                        (default: the last abort)\n"
         "  ambiguity <trace.json>                lifetimes + Theorem-1 check\n"
         "  spans <trace.json> [--out FILE]       span report JSON\n"
         "  export-chrome <trace.json> [--out FILE]\n"
         "                                        Chrome trace-event JSON\n"
         "  fleet <fleet_telemetry.json> [--top K] [--expect-postmortem]\n"
         "                                        fleet health report\n"
         "  runtime <runtime_probes.json> [--top K] [--chrome FILE]\n"
         "                                        wall-clock probe report\n"
         "trace commands accept --group G on sharded traces (restricts\n"
         "the trace to group G before the command runs)\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

/// "--out FILE" anywhere after the trace path; empty = stdout.
std::string parse_out(int argc, char** argv, int from) {
  for (int i = from; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return {};
}

std::string describe(const TraceEvent& e) {
  std::string out = "[" + std::to_string(e.time) + "us] #" +
                    std::to_string(e.eid) + " " +
                    std::string(to_string(e.kind)) + " p" +
                    std::to_string(e.a.value());
  switch (e.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDeliver:
    case TraceEventKind::kMessageDrop:
      out += "->p" + std::to_string(e.b.value());
      if (e.kind == TraceEventKind::kMessageDrop) {
        out += " (" +
               std::string(to_string(
                   static_cast<dynvote::obs::DropCause>(e.value))) +
               ")";
      }
      if (!e.detail.empty()) out += " " + e.detail;
      break;
    case TraceEventKind::kTopologyChange:
      out = "[" + std::to_string(e.time) + "us] #" + std::to_string(e.eid) +
            " topology " + e.members.to_string();
      break;
    case TraceEventKind::kViewInstalled:
      out += " view " + std::to_string(e.number) + " " + e.members.to_string();
      break;
    case TraceEventKind::kSessionAttempt:
    case TraceEventKind::kSessionFormed:
    case TraceEventKind::kAmbiguityResolved:
    case TraceEventKind::kAmbiguityAdopted:
      out += " session " + std::to_string(e.number) + " " +
             e.members.to_string();
      if (e.kind == TraceEventKind::kSessionFormed) {
        out += " after " + std::to_string(e.value) + " rounds";
      }
      if (!e.detail.empty()) out += " [" + e.detail + "]";
      break;
    case TraceEventKind::kSessionAbort:
      out += " view " + std::to_string(e.number) + " " + e.members.to_string() +
             ": " + e.detail;
      break;
    case TraceEventKind::kAmbiguityRecord:
      out += " level=" + std::to_string(e.value);
      break;
    default:
      break;
  }
  if (e.lamport != 0) out += " (L=" + std::to_string(e.lamport) + ")";
  if (e.cause != 0) out += " <- #" + std::to_string(e.cause);
  return out;
}

int cmd_timeline(const TraceMetaAndEvents& trace) {
  std::cout << "protocol=" << trace.meta.protocol << " n=" << trace.meta.n
            << " min_quorum=" << trace.meta.min_quorum
            << " seed=" << trace.meta.seed << " events="
            << trace.events.size();
  if (trace.meta.overwritten != 0) {
    std::cout << " (TRUNCATED: " << trace.meta.overwritten << " evicted)";
  }
  std::cout << "\n";
  for (const TraceEvent& event : trace.events) {
    std::cout << describe(event) << "\n";
  }
  return 0;
}

int cmd_explain_abort(const TraceMetaAndEvents& trace,
                      std::optional<std::int64_t> view_id) {
  const TraceEvent* abort_event = nullptr;
  for (const TraceEvent& event : trace.events) {
    if (event.kind != TraceEventKind::kSessionAbort) continue;
    if (view_id && event.number != *view_id) continue;
    abort_event = &event;  // keep the last match
  }
  if (abort_event == nullptr) {
    std::cerr << "dvtrace: no matching session abort in trace\n";
    return 1;
  }

  const auto chain =
      dynvote::obs::causal_chain(trace.events, abort_event->eid);
  std::cout << "abort of view " << abort_event->number << " at p"
            << abort_event->a.value() << ", reason: " << abort_event->detail
            << "\ncausal chain (root first):\n";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    std::cout << std::string(2 * i, ' ') << describe(*chain[i]) << "\n";
  }
  if (chain.empty() || chain.front()->cause != 0) {
    std::cerr << "dvtrace: chain truncated (root evicted by the ring "
                 "bound)\n";
    return 1;
  }
  std::cout << "root cause: " << to_string(chain.front()->kind) << " #"
            << chain.front()->eid << "\n";
  return 0;
}

int cmd_ambiguity(const TraceMetaAndEvents& trace, const SpanReport& report) {
  const auto& d = report.derived;
  for (const auto& span : report.ambiguity) {
    std::cout << "p" << span.process.value() << " session " << span.number
              << " " << span.members.to_string() << " [" << span.start << "us"
              << ", " << span.end << "us] " << span.resolution << "\n";
  }
  std::cout << "records=" << report.ambiguity.size()
            << " max_simultaneous=" << d.max_open_ambiguity
            << " max_level=" << d.max_ambiguity_level
            << " time_in_ambiguity=" << d.time_in_ambiguity_ticks << "us"
            << " horizon=" << d.horizon << "us\n";
  if (trace.meta.ambiguity_bound != 0) {
    const auto bound =
        static_cast<std::uint64_t>(trace.meta.ambiguity_bound);
    if (d.max_open_ambiguity > bound || d.max_ambiguity_level > bound) {
      std::cerr << "dvtrace: Theorem-1 bound violated: "
                << "max_simultaneous=" << d.max_open_ambiguity
                << " max_level=" << d.max_ambiguity_level << " bound=" << bound
                << "\n";
      return 1;
    }
    std::cout << "Theorem-1 bound ok (<= " << bound << ")\n";
  } else {
    std::cout << "Theorem-1 bound not applicable to this protocol\n";
  }
  return 0;
}

// -- fleet health report -------------------------------------------------------

std::uint64_t counter_of(const JsonValue& registry, std::string_view name) {
  const JsonValue* counters = registry.find("counters");
  if (counters == nullptr) return 0;
  const JsonValue* value = counters->find(name);
  return value == nullptr ? 0 : value->as_uint();
}

/// An exported histogram: summary stats plus the sparse [index, count]
/// bucket pairs re-densified so histogram_quantile can walk them.
/// `unit` is the explicit metadata stamped by MetricsRegistry::to_json
/// since telemetry schema v2 ("ticks" | "ns" | "us" | "bytes"); empty on
/// older documents or unitless histograms.
struct ExportedHistogram {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::string unit;
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] double quantile(double q) const {
    return dynvote::obs::histogram_quantile(buckets, count, min, max, q);
  }
};

std::optional<ExportedHistogram> histogram_of(const JsonValue& registry,
                                              std::string_view name) {
  const JsonValue* histograms = registry.find("histograms");
  if (histograms == nullptr) return std::nullopt;
  const JsonValue* value = histograms->find(name);
  if (value == nullptr) return std::nullopt;
  ExportedHistogram out;
  out.count = value->at("count").as_uint();
  out.min = value->at("min").as_uint();
  out.max = value->at("max").as_uint();
  if (const JsonValue* unit = value->find("unit")) out.unit = unit->as_string();
  // Empty histograms export no "buckets" key at all.
  if (const JsonValue* buckets = value->find("buckets")) {
    for (const JsonValue& pair : buckets->as_array()) {
      const auto index = pair.as_array().at(0).as_uint();
      const auto bucket_count = pair.as_array().at(1).as_uint();
      if (index >= out.buckets.size()) out.buckets.resize(index + 1, 0);
      out.buckets[index] = bucket_count;
    }
  }
  return out;
}

/// Renders one post-mortem: header, then the causal chain of each
/// anchor, root first, reusing the timeline's describe() format so eids
/// line up with any full trace export of the same run.
void render_postmortem(const JsonValue& postmortem, std::size_t index) {
  std::cout << "[" << index << "] group " << postmortem.at("group").as_uint()
            << " at " << postmortem.at("time").as_uint() << "us: "
            << postmortem.at("reason").as_string() << "\n"
            << "    ring: " << postmortem.at("events").as_array().size()
            << " event(s), " << postmortem.at("dropped").as_uint()
            << " evicted\n";
  std::unordered_map<std::uint64_t, TraceEvent> by_eid;
  for (const JsonValue& event_json : postmortem.at("events").as_array()) {
    const TraceEvent event = dynvote::obs::trace_event_from_json(event_json);
    by_eid.emplace(event.eid, event);
  }
  for (const JsonValue& chain : postmortem.at("chains").as_array()) {
    std::cout << "    chain for #" << chain.at("for").as_uint();
    if (chain.at("truncated").as_bool()) {
      std::cout << " (TRUNCATED: root cause evicted from the ring)";
    }
    std::cout << "\n";
    std::size_t depth = 0;
    for (const JsonValue& eid : chain.at("eids").as_array()) {
      const auto it = by_eid.find(eid.as_uint());
      std::cout << std::string(6 + 2 * depth++, ' ');
      if (it == by_eid.end()) {
        std::cout << "#" << eid.as_uint() << " (not in ring)\n";
      } else {
        std::cout << describe(it->second) << "\n";
      }
    }
  }
}

/// Whether at least one post-mortem carries an intact (non-truncated)
/// causal chain — what --expect-postmortem asserts.
bool any_intact_postmortem(const JsonValue& postmortems) {
  for (const JsonValue& postmortem : postmortems.as_array()) {
    for (const JsonValue& chain : postmortem.at("chains").as_array()) {
      if (!chain.at("truncated").as_bool()) return true;
    }
  }
  return false;
}

int cmd_fleet(const JsonValue& doc, std::size_t top,
              bool expect_postmortem) {
  const auto num_groups = doc.at("num_groups").as_uint();
  std::cout << "fleet: " << num_groups << " group(s) x "
            << doc.at("group_size").as_uint() << " replicas on "
            << doc.at("num_machines").as_uint() << " machine(s), protocol="
            << doc.at("protocol").as_string() << " (schema v"
            << doc.at("schema_version").as_uint() << ")\n";

  // Rollup: the deterministic cross-group aggregate.
  const JsonValue& rollup = doc.at("rollup");
  std::cout << "rollup: formed=" << counter_of(rollup, "dv.formed")
            << " rejected=" << counter_of(rollup, "dv.rejected")
            << " reconfigs=" << counter_of(rollup, "shard.reconfigs")
            << " views=" << counter_of(rollup, "dv.views_installed")
            << " primary_uptime=" << counter_of(rollup, "dv.primary_uptime_ticks")
            << "us time_in_ambiguity="
            << counter_of(rollup, "dv.ambiguity_ticks") << "us\n\n";

  // Per-shard health table; percentiles recomputed from each group's
  // exported bucket counts. Latency column unit comes from the explicit
  // histogram metadata (schema v2); pre-v2 documents fall back to the
  // historical tick label.
  const JsonValue& groups = doc.at("groups");
  std::string latency_unit = "ticks";
  for (const JsonValue& registry : groups.as_array()) {
    const auto latency = histogram_of(registry, "shard.reconfig_latency_ticks");
    if (latency && !latency->unit.empty()) latency_unit = latency->unit;
    if (latency) break;
  }
  dynvote::Table table({"group", "formed", "reconfigs",
                        "p50 reconf " + latency_unit,
                        "p99 reconf " + latency_unit, "ambiguity us"});
  for (std::size_t g = 0; g < groups.as_array().size(); ++g) {
    const JsonValue& registry = groups.as_array()[g];
    const auto latency = histogram_of(registry, "shard.reconfig_latency_ticks");
    table.add_row(
        {std::to_string(g), std::to_string(counter_of(registry, "dv.formed")),
         std::to_string(counter_of(registry, "shard.reconfigs")),
         latency ? dynvote::format_double(latency->quantile(0.50), 0) : "-",
         latency ? dynvote::format_double(latency->quantile(0.99), 0) : "-",
         std::to_string(counter_of(registry, "dv.ambiguity_ticks"))});
  }
  std::cout << table.to_string() << "\n";

  // Slowest reconfigurations, annotated with any post-mortem the same
  // group's flight recorder dumped (the root-cause pointer).
  const JsonValue& postmortems = doc.at("postmortems");
  const JsonValue& slowest = doc.at("slowest_reconfigs");
  const std::size_t shown = std::min(top, slowest.as_array().size());
  std::cout << "slowest reconfigurations (top " << shown << " of "
            << counter_of(rollup, "shard.reconfigs") << "):\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const JsonValue& entry = slowest.as_array()[i];
    const auto group = entry.at("group").as_uint();
    std::cout << "  " << (i + 1) << ". group " << group << ": "
              << entry.at("latency_ticks").as_uint() << " ticks (fault @"
              << entry.at("fault_time").as_uint() << "us -> formed @"
              << entry.at("formed_time").as_uint() << "us)";
    for (std::size_t p = 0; p < postmortems.as_array().size(); ++p) {
      if (postmortems.as_array()[p].at("group").as_uint() == group) {
        std::cout << " [post-mortem " << p << "]";
        break;
      }
    }
    std::cout << "\n";
  }

  // Time series: sample count and the peak windowed rate per counter.
  const JsonValue& timeseries = doc.at("timeseries");
  const auto samples = timeseries.at("times").as_array().size();
  std::cout << "\ntime series: " << samples << " sample(s), tick="
            << timeseries.at("tick").as_uint() << "us, dropped="
            << timeseries.at("dropped").as_uint() << "\n";
  for (const auto& [name, series] : timeseries.at("counters").as_object()) {
    double peak = 0;
    for (const JsonValue& rate : series.at("rates").as_array()) {
      peak = std::max(peak, rate.as_double());
    }
    std::cout << "  " << name << ": peak rate "
              << dynvote::format_double(peak, 1) << "/virtual-sec\n";
  }

  std::cout << "\npost-mortems: " << postmortems.as_array().size() << "\n";
  for (std::size_t p = 0; p < postmortems.as_array().size(); ++p) {
    render_postmortem(postmortems.as_array()[p], p);
  }

  if (expect_postmortem && !any_intact_postmortem(postmortems)) {
    std::cerr << "dvtrace: expected a post-mortem with an intact causal "
                 "chain, found none\n";
    return 1;
  }
  return 0;
}

int emit_json(const JsonValue& doc, const std::string& out_path) {
  const std::string text = doc.dump();
  if (out_path.empty()) {
    std::cout << text << "\n";
    return 0;
  }
  if (!write_file(out_path, text + "\n")) {
    std::cerr << "dvtrace: cannot write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << " (" << text.size() + 1 << " bytes)\n";
  return 0;
}

/// Validates a Chrome trace-event document by re-parsing its own dump:
/// traceEvents must be an array, every entry needs name/ph/pid/ts, "X"
/// entries need dur, and async "b"/"e" pairs must balance per id.
bool validate_chrome(const JsonValue& doc, std::string& error) {
  try {
    const JsonValue reparsed = JsonValue::parse(doc.dump());
    const JsonValue& events = reparsed.at("traceEvents");
    std::vector<std::string> open_async;
    for (const JsonValue& e : events.as_array()) {
      const std::string& ph = e.at("ph").as_string();
      (void)e.at("name").as_string();
      (void)e.at("pid").as_uint();
      if (ph != "M") (void)e.at("ts").as_uint();
      if (ph == "X") (void)e.at("dur").as_uint();
      if (ph == "b") open_async.push_back(e.at("id").as_string());
      if (ph == "e") {
        const std::string& id = e.at("id").as_string();
        const auto it =
            std::find(open_async.begin(), open_async.end(), id);
        if (it == open_async.end()) {
          error = "async end without begin (id " + id + ")";
          return false;
        }
        open_async.erase(it);
      }
    }
    if (!open_async.empty()) {
      error = std::to_string(open_async.size()) + " unbalanced async begins";
      return false;
    }
  } catch (const dynvote::JsonError& e) {
    error = e.what();
    return false;
  }
  return true;
}

// -- runtime probe report ------------------------------------------------------

using dynvote::obs::ProbeEntry;
using dynvote::obs::ProbeKind;
using dynvote::obs::ReconfigWindow;
using dynvote::obs::RuntimeProbeDoc;

/// Lane naming follows the backend: "p<i>" process threads on the
/// thread-per-process backend, "w<i>" workers on the M:N pool
/// (meta.workers > 0), "ctl" for the controller either way.
std::string lane_name(std::uint32_t thread, std::uint32_t workers) {
  if (thread == dynvote::obs::kControllerLane) return "ctl";
  return (workers > 0 ? "w" : "p") + std::to_string(thread);
}

/// One merged-timeline line. `value` is kind-specific: a queue depth
/// for pushes and run-queue entries, a batch size for batches, a
/// nanosecond duration for everything else (see ProbeKind).
std::string describe_probe(std::uint32_t thread, const ProbeEntry& e,
                           std::uint32_t workers) {
  std::string out =
      "[" +
      dynvote::format_double(static_cast<double>(e.t_ns) / 1000.0, 1) +
      "us] " + lane_name(thread, workers) + " " +
      std::string(to_string(e.kind));
  switch (e.kind) {
    case ProbeKind::kLinkPush:
    case ProbeKind::kControlPush:
    case ProbeKind::kRunQueue:
    case ProbeKind::kHandoff:
      out += " depth=" + std::to_string(e.value);
      break;
    case ProbeKind::kBatch:
      out += " size=" + std::to_string(e.value);
      break;
    default:
      if (e.value != 0) {
        out += " " +
               dynvote::format_double(
                   static_cast<double>(e.value) / 1000.0, 1) +
               "us";
      }
      break;
  }
  if (e.link == dynvote::obs::kControllerLane) {
    out += " link=ctl";
  } else if (e.link != dynvote::obs::kNoLane) {
    // On the pool, handler entries link the HANDLING PROCESS (several
    // share a worker lane); transfer entries link the peer lane.
    out += " link=" + std::to_string(e.link);
  }
  if (e.eid != 0) out += " <- #" + std::to_string(e.eid);
  return out;
}

/// Pool-only per-worker table: how well the M:N scheduler batches (the
/// cross-ring batch-size distribution, as a compact power-of-two
/// histogram), how deep the same-worker run queue gets, and how many
/// cross-worker handoffs each worker pushed.
void print_pool_lanes(const RuntimeProbeDoc& doc) {
  dynvote::Table pool({"worker", "batches", "batch p50", "batch max",
                       "batch size histogram", "runq p50", "runq max",
                       "handoffs"});
  for (const auto& lane : doc.threads) {
    if (lane.thread == dynvote::obs::kControllerLane) continue;
    dynvote::Summary batch;
    dynvote::Summary runq;
    std::uint64_t handoffs = 0;
    // Power-of-two batch-size buckets: [1], [2], [3-4], [5-8], ...
    std::vector<std::uint64_t> buckets;
    for (const ProbeEntry& e : lane.entries) {
      switch (e.kind) {
        case ProbeKind::kBatch: {
          batch.add(static_cast<double>(e.value));
          std::size_t b = 0;
          while ((1ull << b) < e.value) ++b;
          if (buckets.size() <= b) buckets.resize(b + 1);
          ++buckets[b];
          break;
        }
        case ProbeKind::kRunQueue:
          runq.add(static_cast<double>(e.value));
          break;
        case ProbeKind::kHandoff:
          ++handoffs;
          break;
        default:
          break;
      }
    }
    std::string histogram;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      if (!histogram.empty()) histogram += " ";
      histogram += "<=" + std::to_string(1ull << b) + ":" +
                   std::to_string(buckets[b]);
    }
    pool.add_row(
        {lane_name(lane.thread, doc.meta.workers),
         std::to_string(static_cast<std::uint64_t>(batch.count())),
         batch.empty() ? "-" : dynvote::format_double(batch.percentile(0.5), 0),
         batch.empty() ? "-" : dynvote::format_double(batch.max(), 0),
         histogram.empty() ? "-" : histogram,
         runq.empty() ? "-" : dynvote::format_double(runq.percentile(0.5), 0),
         runq.empty() ? "-" : dynvote::format_double(runq.max(), 0),
         std::to_string(handoffs)});
  }
  std::cout << "pool scheduler (one lane per worker):\n"
            << pool.to_string() << "\n";
}

int cmd_runtime(const RuntimeProbeDoc& doc, std::size_t top,
                const std::string& chrome_path) {
  std::size_t total_events = 0;
  std::uint64_t total_dropped = 0;
  for (const auto& lane : doc.threads) {
    total_events += lane.entries.size();
    total_dropped += lane.dropped;
  }
  const std::uint32_t workers = doc.meta.workers;
  std::cout << "runtime probes: protocol=" << doc.meta.protocol
            << " n=" << doc.meta.n;
  if (workers > 0) {
    std::cout << " backend=pool workers=" << workers;
  } else {
    std::cout << " backend=thread-per-process";
  }
  std::cout << " wheel_tick=" << doc.meta.wheel_tick_us
            << "us lanes=" << doc.threads.size()
            << " events=" << total_events;
  if (total_dropped != 0) {
    std::cout << " (TRUNCATED: " << total_dropped << " evicted)";
  }
  std::cout << "\n\n";

  // Per-lane summary; wakeup p99 recomputed directly from the retained
  // entries (the exact samples, not histogram buckets).
  dynvote::Table lanes({"lane", "events", "dropped", "pushes", "pops",
                        "backpressure", "parks", "park ms", "wakeup p99 us",
                        "handlers"});
  for (const auto& lane : doc.threads) {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t failed = 0;
    std::uint64_t parks = 0;
    std::uint64_t handlers = 0;
    std::uint64_t park_ns = 0;
    dynvote::Summary wakeups;
    for (const ProbeEntry& e : lane.entries) {
      switch (e.kind) {
        case ProbeKind::kLinkPush:
        case ProbeKind::kControlPush:
          ++pushes;
          break;
        case ProbeKind::kLinkPop:
        case ProbeKind::kControlPop:
          ++pops;
          break;
        case ProbeKind::kLinkPushFailed:
          ++failed;
          break;
        case ProbeKind::kParked:
          ++parks;
          park_ns += e.value;
          break;
        case ProbeKind::kWakeup:
          wakeups.add(static_cast<double>(e.value));
          break;
        case ProbeKind::kHandlerMessage:
        case ProbeKind::kHandlerControl:
        case ProbeKind::kHandlerTimer:
          ++handlers;
          break;
        default:
          break;
      }
    }
    lanes.add_row(
        {lane_name(lane.thread, workers), std::to_string(lane.entries.size()),
         std::to_string(lane.dropped), std::to_string(pushes),
         std::to_string(pops), std::to_string(failed), std::to_string(parks),
         dynvote::format_double(static_cast<double>(park_ns) / 1e6, 1),
         wakeups.empty()
             ? "-"
             : dynvote::format_double(wakeups.percentile(0.99) / 1000.0, 1),
         std::to_string(handlers)});
  }
  std::cout << lanes.to_string() << "\n";

  // Pool documents get the scheduler's own table: batching quality,
  // run-queue depths, handoff counts per worker.
  if (workers > 0) print_pool_lanes(doc);

  // Phase breakdown per reconfiguration window, attributed on the
  // critical (last-forming) lane by the bench.
  const auto pct = [](std::uint64_t part, std::uint64_t wall) {
    return wall == 0 ? std::string("-")
                     : dynvote::format_double(
                           100.0 * static_cast<double>(part) /
                               static_cast<double>(wall),
                           1);
  };
  dynvote::Table reconfigs({"#", "verb", "critical", "wall us", "queued %",
                            "parked %", "exec %", "slop %", "unattr %"});
  const ReconfigWindow* slowest = nullptr;
  std::size_t slowest_index = 0;
  for (std::size_t i = 0; i < doc.reconfigs.size(); ++i) {
    const ReconfigWindow& w = doc.reconfigs[i];
    reconfigs.add_row(
        {std::to_string(i), w.verb, lane_name(w.critical_thread, workers),
         dynvote::format_double(static_cast<double>(w.phases.wall_ns) / 1000.0,
                                1),
         pct(w.phases.queued_ns, w.phases.wall_ns),
         pct(w.phases.parked_ns, w.phases.wall_ns),
         pct(w.phases.executing_ns, w.phases.wall_ns),
         pct(w.phases.timer_slop_ns, w.phases.wall_ns),
         pct(w.phases.unattributed_ns, w.phases.wall_ns)});
    if (slowest == nullptr || w.phases.wall_ns > slowest->phases.wall_ns) {
      slowest = &w;
      slowest_index = i;
    }
  }
  std::cout << "reconfigurations: " << doc.reconfigs.size() << "\n"
            << reconfigs.to_string() << "\n";

  // Drill-down: every lane's entries stamped inside the slowest window,
  // merged into one timeline ordered by wall-clock nanosecond.
  if (slowest != nullptr) {
    std::vector<std::pair<std::uint32_t, ProbeEntry>> merged;
    for (const auto& lane : doc.threads) {
      for (const ProbeEntry& e : lane.entries) {
        if (e.t_ns >= slowest->t0_ns && e.t_ns < slowest->t1_ns) {
          merged.emplace_back(lane.thread, e);
        }
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.t_ns < b.second.t_ns;
                     });
    const std::size_t shown = std::min(top, merged.size());
    std::cout << "slowest reconfiguration: #" << slowest_index << " "
              << slowest->verb << " wall="
              << dynvote::format_double(
                     static_cast<double>(slowest->phases.wall_ns) / 1000.0, 1)
              << "us critical=" << lane_name(slowest->critical_thread, workers)
              << ", merged timeline (first " << shown << " of "
              << merged.size() << " events):\n";
    for (std::size_t i = 0; i < shown; ++i) {
      std::cout << "  "
                << describe_probe(merged[i].first, merged[i].second, workers)
                << "\n";
    }
  }

  if (!chrome_path.empty()) {
    const JsonValue chrome = dynvote::obs::runtime_probe_chrome_json(doc);
    std::string error;
    if (!validate_chrome(chrome, error)) {
      std::cerr << "dvtrace: invalid Chrome trace JSON: " << error << "\n";
      return 1;
    }
    return emit_json(chrome, chrome_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  const auto text = read_file(path);
  if (!text) {
    std::cerr << "dvtrace: cannot read " << path << "\n";
    return 2;
  }

  // `fleet` consumes the telemetry document, not a trace — dispatch
  // before the trace parser sees the file.
  if (command == "fleet") {
    std::size_t top = 8;
    bool expect_postmortem = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--top" && i + 1 < argc) {
        top = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--expect-postmortem") {
        expect_postmortem = true;
      } else {
        return usage();
      }
    }
    try {
      return cmd_fleet(JsonValue::parse(*text), top, expect_postmortem);
    } catch (const dynvote::JsonError& e) {
      std::cerr << "dvtrace: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }

  // `runtime` consumes the probe document bench_runtime exports — also
  // not a trace.
  if (command == "runtime") {
    std::size_t top = 32;
    std::string chrome_path;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--top" && i + 1 < argc) {
        top = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--chrome" && i + 1 < argc) {
        chrome_path = argv[++i];
      } else {
        return usage();
      }
    }
    try {
      return cmd_runtime(dynvote::obs::load_runtime_probes(*text), top,
                         chrome_path);
    } catch (const dynvote::JsonError& e) {
      std::cerr << "dvtrace: " << path << ": " << e.what() << "\n";
      return 2;
    } catch (const dynvote::InvariantViolation& e) {
      std::cerr << "dvtrace: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }

  TraceMetaAndEvents trace;
  try {
    trace = dynvote::load_trace_json(*text);
  } catch (const dynvote::JsonError& e) {
    std::cerr << "dvtrace: " << path << ": " << e.what() << "\n";
    return 2;
  }

  // `--group G` restricts a sharded trace to one group before any
  // command runs; the narrowed meta makes span folding and the
  // Theorem-1 check meaningful per group.
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--group") continue;
    if (trace.meta.group_size == 0) {
      std::cerr << "dvtrace: --group needs a sharded trace (this meta "
                   "carries no fleet shape)\n";
      return 2;
    }
    const auto group =
        static_cast<std::uint32_t>(std::stoull(argv[i + 1]));
    if (group >= trace.meta.num_groups) {
      std::cerr << "dvtrace: group " << group << " out of range (trace has "
                << trace.meta.num_groups << " groups)\n";
      return 2;
    }
    trace = dynvote::filter_trace_group(trace, group);
    break;
  }

  if (command == "timeline") return cmd_timeline(trace);

  if (command == "explain-abort") {
    std::optional<std::int64_t> view_id;
    if (argc > 3 && argv[3][0] != '-') view_id = std::stoll(argv[3]);
    return cmd_explain_abort(trace, view_id);
  }

  const SpanReport report = dynvote::obs::build_spans(trace.events);

  if (command == "ambiguity") return cmd_ambiguity(trace, report);

  if (command == "spans") {
    return emit_json(dynvote::obs::spans_to_json(report),
                     parse_out(argc, argv, 3));
  }

  if (command == "export-chrome") {
    const JsonValue doc =
        dynvote::obs::chrome_trace_json(trace.meta, trace.events, report);
    std::string error;
    if (!validate_chrome(doc, error)) {
      std::cerr << "dvtrace: invalid Chrome trace JSON: " << error << "\n";
      return 1;
    }
    return emit_json(doc, parse_out(argc, argv, 3));
  }

  return usage();
}
