#!/usr/bin/env sh
# Builds everything, runs the full test suite, and regenerates every
# experiment table into ./results/.
#
# Alongside each human-readable results/<bench>.txt, every bench now
# writes a machine-readable results/BENCH_<name>.json (via the
# DYNVOTE_JSON_DIR environment variable; bench_scenario_typical also
# exports results/trace.json, the replayable structured trace of the E1
# run). bench_micro uses google-benchmark's native JSON reporter.
# results/trace.json is then post-processed with tools/dvtrace into
# trace_ambiguity.txt, trace_spans.json and trace_chrome.json (the
# latter loads in chrome://tracing / Perfetto); a Theorem-1 lifetime
# violation or invalid Chrome JSON fails the script.
#
# The run ends with tools/check_perf.py, which compares the fresh
# results/BENCH_*.json against the committed baselines in
# results/baselines/ — deterministic outputs must match exactly, timing
# metrics get a wide tolerance band — and fails the script on
# regression. After an intentional behavior or perf change, regenerate
# the baselines with `tools/check_perf.py --update` and commit them.
#
# Set DYNVOTE_SKIP_SANITIZERS=1 to skip the sanitizer passes: the
# ASan/UBSan tier-1 run (build-asan/) plus quick-mode bench_shards and
# bench_runtime, and the TSan run of the sweep-pool, persistence and
# thread-runtime suites (build-tsan/ — TSan cannot share a tree with
# ASan, the runtimes conflict).
set -e
cd "$(dirname "$0")/.."

# Reuse the generator of an existing build tree; default to Ninja for a
# fresh one.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
DYNVOTE_JSON_DIR="$(pwd)/results"
export DYNVOTE_JSON_DIR
for bench in build/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  [ "$name" = "bench_micro" ] && continue
  echo "== $name"
  "$bench" | tee "results/$name.txt"
done
if [ -x build/bench/bench_micro ]; then
  echo "== bench_micro"
  build/bench/bench_micro \
    --benchmark_out="results/BENCH_bench_micro.json" \
    --benchmark_out_format=json | tee "results/bench_micro.txt"
fi

# Post-process the E1 reference trace with dvtrace: the ambiguity report
# re-checks the Theorem-1 lifetime bound from the file alone, and the
# Chrome export is validated before it is written. Both failures are
# fatal — the trace artifacts must stay queryable.
if [ -f results/trace.json ]; then
  echo "== dvtrace (results/trace.json)"
  # No pipeline here: a pipe would let tee mask a failed bound check.
  build/tools/dvtrace ambiguity results/trace.json \
    > results/trace_ambiguity.txt
  cat results/trace_ambiguity.txt
  build/tools/dvtrace export-chrome results/trace.json \
    --out results/trace_chrome.json
  build/tools/dvtrace spans results/trace.json \
    --out results/trace_spans.json
fi

# Fleet telemetry artifacts from bench_shards: the health report over
# the flagship shape, and the violation demo, which MUST contain a
# flight-recorder post-mortem with an intact causal chain (dvtrace
# exits 1 otherwise — the telemetry layer's end-to-end check).
if [ -f results/fleet_telemetry.json ]; then
  echo "== dvtrace fleet (results/fleet_telemetry.json)"
  build/tools/dvtrace fleet results/fleet_telemetry.json \
    > results/fleet_report.txt
  cat results/fleet_report.txt
fi
if [ -f results/fleet_violation_telemetry.json ]; then
  echo "== dvtrace fleet --expect-postmortem (violation demo)"
  build/tools/dvtrace fleet results/fleet_violation_telemetry.json \
    --expect-postmortem > results/fleet_violation_report.txt
  cat results/fleet_violation_report.txt
fi

# Wall-clock probe artifacts from bench_runtime: the per-lane report
# with the reconfiguration phase breakdown, plus the Chrome trace-event
# export (validated by dvtrace before it is written — an invalid export
# fails the script).
if [ -f results/runtime_probes.json ]; then
  echo "== dvtrace runtime (results/runtime_probes.json)"
  build/tools/dvtrace runtime results/runtime_probes.json \
    --chrome results/runtime_chrome.json > results/runtime_report.txt
  cat results/runtime_report.txt
fi

# Tier-1 suite under AddressSanitizer + UndefinedBehaviorSanitizer.
if [ "${DYNVOTE_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "== tier-1 tests under ASan/UBSan (build-asan/)"
  if [ -f build-asan/CMakeCache.txt ]; then
    cmake -B build-asan -DDYNVOTE_SANITIZE="address;undefined"
  else
    cmake -B build-asan -G Ninja -DDYNVOTE_SANITIZE="address;undefined"
  fi
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure

  # The multi-group shard bench under ASan/UBSan, in quick mode (small
  # shape, 2 seeds) and with the JSON export disabled so the trimmed
  # payload cannot clobber the real results/BENCH_shards.json. The
  # dynamic-bitset property tests (ProcessSetProperty.*, ProcessSet.*)
  # already ran in the ctest pass above.
  echo "== bench_shards under ASan/UBSan (quick mode)"
  env -u DYNVOTE_JSON_DIR DYNVOTE_SHARDS_QUICK=1 build-asan/bench/bench_shards

  # The thread-runtime bench under ASan/UBSan, in quick mode (widths
  # {4,8}, 3 cycles). Its phase 0 re-runs the DES-vs-runtime cross-check
  # on 8 seeds — each seed both probes-off and probes-on, asserting the
  # probe layer is digest-neutral — and its phase 3 gates the probe
  # overhead at < 5% with outcome-digest equality, so a divergence or an
  # overhead blowout under sanitizers fails the script here; JSON export
  # is disabled so the quick payload cannot clobber the real
  # results/BENCH_runtime.json.
  echo "== bench_runtime under ASan/UBSan (quick mode)"
  env -u DYNVOTE_JSON_DIR DYNVOTE_RUNTIME_QUICK=1 build-asan/bench/bench_runtime

  # ThreadSanitizer over the code that actually runs multithreaded: the
  # sweep pool plus the persistence suite, whose WAL layer the sweep
  # workers exercise concurrently, the multi-group shard sweep
  # (SweepShards.*), which runs whole fleets on the pool, and the
  # thread-per-process runtime backend (RuntimeSpsc/Wheel/Fleet plus the
  # DES cross-check, which drives real thread fleets; RuntimeProbe and
  # RuntimeEventcount add the wall-clock probe rings and the eventcount
  # wakeup stress across 4+ threads; RuntimePool runs the M:N pool
  # scheduler — SPSC rings, spill deques, quiesce status words — at
  # W∈{1,2,4} including a churn stress that must stay byte-identical
  # across worker counts). TSan needs its own build tree.
  echo "== sweep-pool + persistence + runtime tests under TSan (build-tsan/)"
  if [ -f build-tsan/CMakeCache.txt ]; then
    cmake -B build-tsan -DDYNVOTE_SANITIZE=thread
  else
    cmake -B build-tsan -G Ninja -DDYNVOTE_SANITIZE=thread
  fi
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure \
    -R '^(Sweep\.|SweepDeterminism\.|SweepShards\.|SweepTelemetry\.|StateDelta\.|Checkpoint\.|WalPersistence\.|ProtocolPersistence\.|Seeds/PersistenceChurnProperty\.|RuntimeSpsc\.|RuntimeWheel\.|RuntimeFleet\.|RuntimeCrossCheck\.|RuntimeProbe\.|RuntimeEventcount\.|RuntimePool\.)'
fi

echo "== check_perf (results/ vs results/baselines/)"
python3 tools/check_perf.py

echo "All experiment outputs written to ./results/"
