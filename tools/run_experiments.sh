#!/usr/bin/env sh
# Builds everything, runs the full test suite, and regenerates every
# experiment table into ./results/.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
mkdir -p results
for bench in build/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name"
  "$bench" | tee "results/$name.txt"
done
echo "All experiment outputs written to ./results/"
