#include "membership/membership_oracle.hpp"

namespace dynvote {

MembershipOracle::MembershipOracle(sim::Simulator& sim,
                                   MembershipOptions options)
    : sim_(sim), options_(options), rng_(sim.rng().split()) {
  sim_.network().add_topology_observer([this] { on_topology_changed(); });
}

void MembershipOracle::on_topology_changed() {
  for (const ProcessSet& component : sim_.network().live_components()) {
    // Only announce a view if some member's latest announced membership
    // differs; otherwise this component is untouched by the change.
    bool changed = false;
    for (ProcessId p : component) {
      auto it = latest_scheduled_.find(p);
      if (it == latest_scheduled_.end() || it->second.members != component) {
        changed = true;
        break;
      }
    }
    if (!changed) continue;
    View view{ViewId(next_view_id_++), component};
    schedule_view(view);
  }
}

ViewId MembershipOracle::inject_view(const ProcessSet& members) {
  View view{ViewId(next_view_id_++), members};
  schedule_view(view);
  return view.id;
}

void MembershipOracle::schedule_view(const View& view) {
  for (ProcessId p : view.members) {
    latest_scheduled_[p] = view;
    const SimTime delay = options_.detection_delay_min +
                          rng_.next_below(options_.detection_delay_max -
                                          options_.detection_delay_min + 1);
    sim_.queue().schedule_after(delay, [this, p, view] {
      // Suppress if a newer view superseded this one for p, or if p is
      // down. (A crashed-and-recovered p gets fresh views from the
      // recovery's own topology change.)
      auto it = latest_scheduled_.find(p);
      if (it == latest_scheduled_.end() || it->second.id != view.id) return;
      if (!sim_.network().alive(p)) return;
      sim_.node(p).deliver_view(view);
    });
  }
}

}  // namespace dynvote
