// Membership views.
//
// A view is what the membership module reports to a process: "these are
// the processes currently assumed connected" (paper section 3.1). Views
// carry a globally increasing id so a process can discard traffic from
// views it has already left behind.
#pragma once

#include <string>

#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct View {
  ViewId id;
  ProcessSet members;

  friend bool operator==(const View&, const View&) = default;
};

[[nodiscard]] std::string to_string(const View& view);

}  // namespace dynvote
