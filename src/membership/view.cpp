#include "membership/view.hpp"

namespace dynvote {

std::string to_string(const View& view) {
  return to_string(view.id) + view.members.to_string();
}

}  // namespace dynvote
