// Membership oracle.
//
// Implements the membership service the paper assumes (section 3.1):
// it watches network connectivity and reports views to processes. The
// guarantees deliberately match the paper's weak requirements and nothing
// more:
//
//  * views are NOT delivered atomically: each member learns of a view
//    after its own randomized detection delay;
//  * views may be skipped entirely under churn (a member that detects a
//    change late may jump straight to the newest view);
//  * the reports need not reflect the true network at delivery time;
//  * but if a component stays stable, all its members eventually receive
//    the same (final) view and no other.
//
// Causal ordering of views versus protocol messages (the section 3.1
// requirement) is realized by the Node layer's view-tagged delivery.
//
// For liveness testing, inject_view() lets tests deliver arbitrary
// (inaccurate) views; the protocol must stay correct regardless.
#pragma once

#include <cstdint>
#include <map>

#include "membership/view.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct MembershipOptions {
  /// Failure/recovery detection latency range, sampled independently per
  /// member per view — this is what makes view delivery non-atomic.
  SimTime detection_delay_min = 200;
  SimTime detection_delay_max = 800;
};

class MembershipOracle {
 public:
  /// Subscribes to the simulator's network. Register all nodes first.
  explicit MembershipOracle(sim::Simulator& sim, MembershipOptions options = {});

  MembershipOracle(const MembershipOracle&) = delete;
  MembershipOracle& operator=(const MembershipOracle&) = delete;

  /// Delivers a view with the given membership to all its members,
  /// bypassing the network watcher. Intended for tests that exercise the
  /// protocol under inaccurate membership reports.
  ViewId inject_view(const ProcessSet& members);

  /// Number of views generated so far.
  [[nodiscard]] std::uint64_t views_generated() const noexcept {
    return next_view_id_ - 1;
  }

 private:
  void on_topology_changed();
  void schedule_view(const View& view);

  sim::Simulator& sim_;
  MembershipOptions options_;
  Rng rng_;
  std::uint64_t next_view_id_ = 1;
  /// Newest view scheduled for each process; an older scheduled delivery
  /// that fires after a newer view was announced is suppressed (the
  /// member "skips" the superseded view).
  std::map<ProcessId, View> latest_scheduled_;
};

}  // namespace dynvote
