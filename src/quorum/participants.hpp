// Participant admission for dynamically changing quorum requirements
// (paper section 6).
//
// Each process maintains:
//   W — participants counted by the Min_Quorum requirement; starts at W0
//       and grows when new processes take part in a *formed* session;
//   A — processes that joined but have not been admitted to W yet.
//
// Attempt step: W := ∪ W_q over the session members, A := (∪ A_q) \ W.
// Form step:    W := W ∪ (A ∩ S.M), A := A \ S.M.
//
// W and W ∪ A are monotonically non-decreasing (paper Lemma 12); the
// tracker enforces this as an invariant.
#pragma once

#include <string>
#include <vector>

#include "util/codec.hpp"
#include "util/process_set.hpp"

namespace dynvote {

class ParticipantTracker {
 public:
  ParticipantTracker() = default;

  /// Initial state: W = W0 always; A = {} for core members, {self} for a
  /// late joiner (paper section 6 variable initialization).
  [[nodiscard]] static ParticipantTracker initial(const ProcessSet& core,
                                                  ProcessId self);

  [[nodiscard]] const ProcessSet& admitted() const noexcept { return admitted_; }
  [[nodiscard]] const ProcessSet& pending() const noexcept { return pending_; }
  [[nodiscard]] ProcessSet all_participants() const {
    return admitted_.set_union(pending_);
  }

  /// Attempt-step update from the trackers every session member sent.
  /// All members receive the same messages, so all compute the same
  /// result (paper Lemma 13).
  void merge_attempt_step(const std::vector<const ParticipantTracker*>& peers);

  /// Form-step update: session members pending admission become admitted.
  void admit_on_form(const ProcessSet& session_members);

  void encode(Encoder& enc) const;
  [[nodiscard]] static ParticipantTracker decode(Decoder& dec);

  friend bool operator==(const ParticipantTracker&,
                         const ParticipantTracker&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  ProcessSet admitted_;  // W
  ProcessSet pending_;   // A
};

}  // namespace dynvote
