#include "quorum/sub_quorum.hpp"

#include "quorum/linear_order.hpp"
#include "util/ensure.hpp"

namespace dynvote {

QuorumCalculus::QuorumCalculus(ProcessSet core, std::size_t min_quorum,
                               bool linear_tie_break)
    : admitted_(core), all_(std::move(core)), min_quorum_(min_quorum),
      linear_tie_break_(linear_tie_break), same_core_(true) {
  ensure(min_quorum_ >= 1, "Min_Quorum must be at least 1");
}

QuorumCalculus::QuorumCalculus(ProcessSet admitted, ProcessSet all,
                               std::size_t min_quorum, bool linear_tie_break)
    : admitted_(std::move(admitted)), all_(std::move(all)),
      min_quorum_(min_quorum), linear_tie_break_(linear_tie_break),
      same_core_(admitted_ == all_) {
  ensure(min_quorum_ >= 1, "Min_Quorum must be at least 1");
  ensure(admitted_.is_subset_of(all_), "W must be a subset of W ∪ A");
}

bool QuorumCalculus::meets_min_quorum(const ProcessSet& T) const {
  return T.intersection_size(admitted_) >= min_quorum_;
}

bool QuorumCalculus::unconditional(const ProcessSet& T) const {
  const std::size_t overlap = T.intersection_size(all_);
  // |T ∩ WA| > |WA| - Min_Quorum, computed without unsigned underflow.
  return overlap + min_quorum_ > all_.size();
}

bool QuorumCalculus::sub_quorum(const ProcessSet& S,
                                const ProcessSet& T) const {
  // Each clause below is one ProcessSet intersection walk; at four-digit
  // n the walks dominate, so overlaps are computed once and shared:
  // |T ∩ S| serves both the majority and the exact-half clause, and when
  // W == W∪A the clause-1 overlap doubles as the clause-2c overlap.
  const std::size_t admitted_overlap = T.intersection_size(admitted_);
  if (admitted_overlap < min_quorum_) return false;  // clause 1
  const std::size_t prev_overlap = T.intersection_size(S);
  if (2 * prev_overlap > S.size()) return true;  // clause 2a
  if (linear_tie_break_ && !S.empty() && 2 * prev_overlap == S.size() &&
      tie_break_favors(S, T)) {
    return true;  // clause 2b (a real previous quorum, split exactly)
  }
  const std::size_t all_overlap =
      same_core_ ? admitted_overlap : T.intersection_size(all_);
  return all_overlap + min_quorum_ > all_.size();  // clause 2c
}

bool QuorumCalculus::sub_quorum(const std::optional<ProcessSet>& S,
                                const ProcessSet& T) const {
  if (!S.has_value()) return false;  // Sub_Quorum(∞, T) = FALSE
  return sub_quorum(*S, T);
}

std::string QuorumCalculus::to_string() const {
  return "W=" + admitted_.to_string() + " WA=" + all_.to_string() +
         " MinQ=" + std::to_string(min_quorum_);
}

bool sub_quorum_implies_intersection(const QuorumCalculus& calc,
                                     const ProcessSet& S, const ProcessSet& T) {
  return !calc.sub_quorum(S, T) || S.intersects(T) || S.empty();
}

}  // namespace dynvote
