// The linear order L used by dynamic *linear* voting (paper section 4.1).
//
// Dynamic linear voting breaks ties between two halves of a quorum by
// giving the half containing the highest-ranked member precedence. The
// paper only requires some total order over an infinite name space; we
// use the natural order on ProcessId (lexicographic order over an
// unbounded integer namespace).
#pragma once

#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

/// Rank of a process in L. Higher value = higher rank.
[[nodiscard]] constexpr std::uint64_t linear_rank(ProcessId p) noexcept {
  return p.value();
}

/// True iff T wins the tie for S's succession: there exists p in T ∩ S
/// with L(p) > L(q) for all q in S \ T. Because ranks follow ProcessId
/// order, this holds exactly when the maximum of S lies in T.
///
/// Precondition is NOT required that |T ∩ S| == |S|/2; callers check the
/// exact-half condition separately.
[[nodiscard]] bool tie_break_favors(const ProcessSet& S, const ProcessSet& T);

}  // namespace dynvote
