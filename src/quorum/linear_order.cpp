#include "quorum/linear_order.hpp"

namespace dynvote {

bool tie_break_favors(const ProcessSet& S, const ProcessSet& T) {
  const auto top = S.max_member();
  return top.has_value() && T.contains(*top);
}

}  // namespace dynvote
