// The Sub_Quorum predicate (paper sections 4.1 and 6).
//
// Sub_Quorum(S, T) answers: "may T become the new quorum, given that the
// previous quorum was S?" — TRUE iff
//
//   1. |T ∩ W| >= Min_Quorum, and
//   2. (a) |T ∩ S| > |S| / 2                                  (majority), or
//      (b) |T ∩ S| = |S| / 2 and the top-ranked member of S is in T
//                                                            (linear tie), or
//      (c) |T ∩ (W ∪ A)| > |W ∪ A| - Min_Quorum           (unconditional).
//
// In the static-core protocol of section 4.1, W = W ∪ A = W0 (the fixed
// core). In the dynamically-changing protocol of section 6, W is the set
// of admitted participants and A the not-yet-admitted joiners; clause (c)
// then guarantees that any sufficiently large component can always make
// progress, no matter what history says.
//
// The previous quorum S = ∞ — a process that knows no primary (late
// joiner or destroyed disk) — satisfies Sub_Quorum(∞, T) = FALSE for all
// T, per the paper's extension of the predicate.
#pragma once

#include <optional>
#include <string>

#include "util/process_set.hpp"

namespace dynvote {

/// Evaluation context for Sub_Quorum: which participants count towards
/// the Min_Quorum floor. Immutable snapshot; the dynamic protocol builds
/// a fresh one each attempt step from its W / A variables.
class QuorumCalculus {
 public:
  /// Static-core calculus (paper 4.1): W = W∪A = W0. `linear_tie_break`
  /// = false disables clause 2b, degrading dynamic *linear* voting [12]
  /// to plain dynamic voting — the E-ablation bench measures the cost.
  QuorumCalculus(ProcessSet core, std::size_t min_quorum,
                 bool linear_tie_break = true);

  /// Dynamic calculus (paper 6): admitted = W, all = W ∪ A.
  /// Precondition: admitted ⊆ all.
  QuorumCalculus(ProcessSet admitted, ProcessSet all, std::size_t min_quorum,
                 bool linear_tie_break = true);

  /// Clause 1: |T ∩ W| >= Min_Quorum.
  [[nodiscard]] bool meets_min_quorum(const ProcessSet& T) const;

  /// Clause 2c: |T ∩ (W∪A)| > |W∪A| − Min_Quorum. Such a T is a
  /// sub-quorum of *every* recorded session ("regardless of past events",
  /// paper section 1). Note this does not waive clause 1; the full
  /// predicate checks both.
  [[nodiscard]] bool unconditional(const ProcessSet& T) const;

  /// The full predicate for a known (finite) previous quorum. Overload
  /// taken by the attempt-step hot path, which holds concrete session
  /// membership sets — routing those through the optional overload would
  /// deep-copy S into a temporary per evaluation.
  [[nodiscard]] bool sub_quorum(const ProcessSet& S, const ProcessSet& T) const;

  /// The full predicate. `S == nullopt` encodes the ∞ previous quorum.
  [[nodiscard]] bool sub_quorum(const std::optional<ProcessSet>& S,
                                const ProcessSet& T) const;

  [[nodiscard]] const ProcessSet& admitted() const noexcept { return admitted_; }
  [[nodiscard]] const ProcessSet& all_participants() const noexcept {
    return all_;
  }
  [[nodiscard]] std::size_t min_quorum() const noexcept { return min_quorum_; }

  [[nodiscard]] std::string to_string() const;

 private:
  ProcessSet admitted_;  // W
  ProcessSet all_;       // W ∪ A
  std::size_t min_quorum_;
  bool linear_tie_break_;
  /// W == W∪A (every static-core calculus). Lets sub_quorum reuse the
  /// clause-1 overlap for clause 2c instead of walking T ∩ W∪A again —
  /// at four-digit n each walk is the dominant cost of the predicate.
  bool same_core_;
};

/// Property 1 of the scheme (paper 4.1): Sub_Quorum(S,T) implies S and T
/// intersect — exposed for the property-based tests.
[[nodiscard]] bool sub_quorum_implies_intersection(const QuorumCalculus& calc,
                                                   const ProcessSet& S,
                                                   const ProcessSet& T);

}  // namespace dynvote
