#include "quorum/participants.hpp"

#include "util/ensure.hpp"

namespace dynvote {

ParticipantTracker ParticipantTracker::initial(const ProcessSet& core,
                                               ProcessId self) {
  ParticipantTracker tracker;
  tracker.admitted_ = core;
  if (!core.contains(self)) tracker.pending_.insert(self);
  return tracker;
}

void ParticipantTracker::merge_attempt_step(
    const std::vector<const ParticipantTracker*>& peers) {
  ProcessSet admitted = admitted_;
  ProcessSet pending = pending_;
  for (const ParticipantTracker* peer : peers) {
    ensure(peer != nullptr, "null peer tracker");
    admitted = admitted.set_union(peer->admitted_);
    pending = pending.set_union(peer->pending_);
  }
  pending = pending.set_difference(admitted);
  ensure(admitted_.is_subset_of(admitted), "W shrank (violates Lemma 12)");
  admitted_ = std::move(admitted);
  pending_ = std::move(pending);
}

void ParticipantTracker::admit_on_form(const ProcessSet& session_members) {
  admitted_ = admitted_.set_union(pending_.set_intersection(session_members));
  pending_ = pending_.set_difference(session_members);
}

void ParticipantTracker::encode(Encoder& enc) const {
  enc.put_process_set(admitted_);
  enc.put_process_set(pending_);
}

ParticipantTracker ParticipantTracker::decode(Decoder& dec) {
  ParticipantTracker tracker;
  tracker.admitted_ = dec.get_process_set();
  tracker.pending_ = dec.get_process_set();
  return tracker;
}

std::string ParticipantTracker::to_string() const {
  return "W=" + admitted_.to_string() + " A=" + pending_.to_string();
}

}  // namespace dynvote
