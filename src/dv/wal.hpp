// Incremental persistence for protocol state: delta WAL + checkpoints.
//
// The paper (section 4.4) puts stable storage on the critical path of
// every protocol step — each process must write its state change before
// responding to the message that caused it. Snapshot-per-persist makes
// that write O(state) (the whole Last_Formed map, every ambiguous
// record) even when the step changed one field. WalPersistence instead
// appends one batch of small StateDelta records per persist — O(delta)
// bytes — and compacts the log into a fresh versioned checkpoint when it
// outgrows the last checkpoint by a configurable factor, so steady-state
// write cost stays near-constant in n.
//
// Layout (two interned keys of sim::StableStorage):
//   <prefix>       the checkpoint: either a versioned CheckpointRecord
//                  (WAL mode) or a legacy raw ProtocolState snapshot
//                  (snapshot mode / pre-WAL disks) — recovery reads both;
//   <prefix>.wal   the log: batches of (lsn, count, deltas...).
//
// Compaction is two stable writes (checkpoint put, then log truncate);
// a crash in between is safe because the checkpoint names the last LSN
// it covers and recovery skips log batches at or below it.
//
// The durability contract is guarded, not assumed: with cross_check on
// (the default, and required in tests), every commit re-runs recovery
// from the bytes actually on disk and asserts replay(checkpoint, log)
// equals the live state — a mutation that forgot to stage its delta
// fails loudly at the very step that made it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dv/state.hpp"
#include "sim/stable_storage.hpp"
#include "util/codec.hpp"

namespace dynvote::obs {
class Counter;
class MetricsRegistry;
}  // namespace dynvote::obs

namespace dynvote {

enum class PersistenceMode : std::uint8_t {
  /// Re-encode and rewrite the full snapshot on every persist (the
  /// pre-WAL behavior; kept as the bench baseline and fallback).
  kSnapshot,
  /// Append per-step deltas; compact past the threshold.
  kWal,
};

struct PersistenceOptions {
  PersistenceMode mode = PersistenceMode::kWal;

  /// Compact when log bytes exceed
  /// max(min_compact_bytes, compact_factor * last checkpoint bytes).
  /// The factor bounds amortized write cost at
  /// delta * (1 + 1/compact_factor) per step — O(delta), not O(state) —
  /// while keeping recovery replay proportional to one checkpoint.
  std::size_t min_compact_bytes = 1024;
  double compact_factor = 4.0;

  /// Re-derive the state from storage after every commit and assert it
  /// matches (see file header). O(state) reads per persist — disable for
  /// production-speed runs; tests keep it on.
  bool cross_check = true;
};

class WalPersistence {
 public:
  /// `metrics` may be null (unit tests); counters are registered lazily.
  WalPersistence(sim::StableStorage& storage, obs::MetricsRegistry* metrics,
                 std::string_view key_prefix, ProcessId self,
                 PersistenceOptions options);

  [[nodiscard]] const PersistenceOptions& options() const noexcept {
    return options_;
  }

  /// Records one mutation of the running step. No-op in snapshot mode.
  void stage(StateDelta delta);
  [[nodiscard]] bool has_staged() const noexcept { return !pending_.empty(); }

  /// Persists the step just taken: appends the staged batch (WAL mode;
  /// nothing staged = nothing to write, the state on disk already covers
  /// `state`) or rewrites the snapshot (snapshot mode). Runs the
  /// cross-check when enabled, then compacts if the log tripped the
  /// threshold.
  void commit(const ProtocolState& state);

  /// Full rewrite: fresh checkpoint covering everything, log truncated.
  /// Used at construction (durable from birth) and after disk loss; also
  /// called internally by compaction.
  void checkpoint(const ProtocolState& state);

  /// Reloads state from storage: checkpoint (either format) plus the log
  /// tail beyond it. nullopt = empty disk (paper footnote 4: destroyed).
  /// Resets the staging buffer and LSN bookkeeping.
  [[nodiscard]] std::optional<ProtocolState> recover();

  /// Test hook, invoked between the checkpoint write and the log
  /// truncation — the mid-compaction window a crash can land in.
  void set_before_truncate_hook(std::function<void()> hook) {
    before_truncate_hook_ = std::move(hook);
  }

  /// Persist calls made (WAL appends + elided empty commits + snapshots).
  [[nodiscard]] std::uint64_t persists() const noexcept { return persists_; }

 private:
  [[nodiscard]] std::size_t compact_threshold() const noexcept;
  /// Legacy full-state write (snapshot mode): raw ProtocolState, no
  /// checkpoint framing — byte-identical to the pre-WAL persist path.
  void write_snapshot(const ProtocolState& state);
  /// Decodes checkpoint + log into a fresh state; nullopt on empty disk.
  /// `max_lsn_out` (optional) receives the highest LSN seen.
  [[nodiscard]] std::optional<ProtocolState> replay_storage(
      std::uint64_t* max_lsn_out) const;
  void verify_cross_check(const ProtocolState& state) const;

  sim::StableStorage& storage_;
  PersistenceOptions options_;
  ProcessId self_;
  sim::StableStorage::KeyId ckpt_key_;
  sim::StableStorage::KeyId wal_key_;
  Encoder scratch_;
  std::vector<StateDelta> pending_;
  std::uint64_t next_lsn_ = 1;
  std::size_t last_checkpoint_bytes_ = 0;
  std::uint64_t persists_ = 0;

  // Registered once at wiring time; null when metrics are absent.
  obs::Counter* wal_appends_ = nullptr;
  obs::Counter* wal_bytes_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* checkpoint_bytes_ = nullptr;
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* snapshot_bytes_ = nullptr;
  obs::Counter* persist_calls_ = nullptr;

  std::function<void()> before_truncate_hook_;
};

}  // namespace dynvote
