#include "dv/basic_protocol.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote {

namespace {

constexpr const char* kStateKey = "dv.state";

}  // namespace

InfoBySender as_infos(const SessionProtocolBase::PhaseMessages& messages) {
  InfoBySender infos;
  for (const auto& [from, payload] : messages) {
    const auto* info = dynamic_cast<const InfoPayload*>(payload.get());
    ensure(info != nullptr, "phase-0 message is not an InfoPayload");
    infos.emplace(from, info);
  }
  return infos;
}

StepAggregates aggregate_step1(const InfoBySender& infos) {
  StepAggregates agg;
  agg.max_session = kNoSessionNumber;
  for (const auto& [from, info] : infos) {
    agg.max_session = std::max(agg.max_session, info->session_number);
    if (info->last_primary) {
      // Pick the max-numbered last primary. Formed sessions have unique
      // numbers (paper Lemma 10), but a deliberately broken baseline can
      // report two different sessions with one number; break the tie on
      // membership so all members still agree.
      if (!agg.max_primary ||
          info->last_primary->number > agg.max_primary->number ||
          (info->last_primary->number == agg.max_primary->number &&
           info->last_primary->members < agg.max_primary->members)) {
        agg.max_primary = info->last_primary;
      }
    }
  }
  const SessionNumber floor =
      agg.max_primary ? agg.max_primary->number : kNoSessionNumber;
  std::set<Session> distinct;
  for (const auto& [from, info] : infos) {
    for (const Session& attempt : info->ambiguous) {
      if (attempt.number > floor) distinct.insert(attempt);
    }
  }
  agg.max_ambiguous.assign(distinct.begin(), distinct.end());
  return agg;
}

Eligibility evaluate_eligibility(const QuorumCalculus& calc,
                                 const StepAggregates& agg,
                                 const ProcessSet& M) {
  if (!calc.meets_min_quorum(M)) {
    return {false, "only " + std::to_string(M.intersection_size(calc.admitted())) +
                       " of W present, Min_Quorum=" +
                       std::to_string(calc.min_quorum())};
  }
  // The unconditional clause (|M ∩ WA| > |WA| − Min_Quorum) is evaluated
  // inside sub_quorum for each recorded session; Sub_Quorum(∞, M) stays
  // FALSE by the paper's definition, so a group in which nobody knows any
  // primary can never form one, however large.
  if (!agg.max_primary) {
    return {false, "Max_Primary = (∞,-1): no member knows a primary"};
  }
  if (!calc.sub_quorum(agg.max_primary->members, M)) {
    return {false, "not a sub-quorum of Max_Primary " +
                       agg.max_primary->to_string()};
  }
  for (const Session& attempt : agg.max_ambiguous) {
    if (!calc.sub_quorum(attempt.members, M)) {
      return {false,
              "not a sub-quorum of ambiguous attempt " + attempt.to_string()};
    }
  }
  return {true, "sub-quorum of Max_Primary and all ambiguous attempts"};
}

BasicDvProtocol::BasicDvProtocol(sim::Transport& transport, ProcessId id,
                                 DvConfig config)
    : BasicDvProtocol(transport, id, std::move(config), /*max_phases=*/2) {}

BasicDvProtocol::BasicDvProtocol(sim::Simulator& sim, ProcessId id,
                                 DvConfig config)
    : BasicDvProtocol(sim.transport(), id, std::move(config),
                      /*max_phases=*/2) {}

BasicDvProtocol::BasicDvProtocol(sim::Simulator& sim, ProcessId id,
                                 DvConfig config, int max_phases)
    : BasicDvProtocol(sim.transport(), id, std::move(config), max_phases) {}

BasicDvProtocol::BasicDvProtocol(sim::Transport& transport, ProcessId id,
                                 DvConfig config, int max_phases)
    : SessionProtocolBase(transport, id, max_phases),
      state_(ProtocolState::initial(config.core, id)),
      config_(std::move(config)),
      wal_(storage(),
           config_.registry != nullptr ? config_.registry : &metrics(),
           kStateKey, id, config_.persistence) {
  obs::MetricsRegistry& reg =
      config_.registry != nullptr ? *config_.registry : metrics();
  ambiguity_gauge_ = &reg.gauge("dv.ambiguous_recorded");
  ambiguity_ticks_ = &reg.counter("dv.ambiguity_ticks");
  // Durable from birth: a crash before the first session must not erase
  // the fact that a core member once knew (W0, 0).
  wal_.checkpoint(state_);
}

void BasicDvProtocol::persist() { wal_.commit(state_); }

void BasicDvProtocol::handle_recover() {
  if (std::optional<ProtocolState> recovered = wal_.recover()) {
    state_ = std::move(*recovered);
  } else {
    // The constructor checkpointed the initial state, so an empty store
    // means the disk was destroyed (paper footnote 4): come back with
    // Last_Primary = (∞,-1) and no trustworthy history. The ambiguous
    // records died with the disk — close their lifetime spans.
    for (const AmbiguousSession& amb : state_.ambiguous) {
      record_ambiguity_resolution(obs::TraceEventKind::kAmbiguityResolved,
                                  amb.session, "disk-loss");
    }
    state_ = ProtocolState::after_disk_loss(id());
    record_ambiguity_level();
    wal_.checkpoint(state_);
  }
}

QuorumCalculus BasicDvProtocol::make_calculus() const {
  if (config_.dynamic_participants) {
    return QuorumCalculus(state_.participants.admitted(),
                          state_.participants.all_participants(),
                          config_.min_quorum, config_.linear_tie_break);
  }
  return QuorumCalculus(config_.core, config_.min_quorum,
                        config_.linear_tie_break);
}

void BasicDvProtocol::begin_session(const View& view) {
  (void)view;
  auto info = std::make_shared<InfoPayload>();
  info->session_number = state_.session_number;
  info->has_history = state_.has_history;
  info->last_primary = state_.last_primary;
  info->ambiguous.reserve(state_.ambiguous.size());
  for (const auto& a : state_.ambiguous) info->ambiguous.push_back(a.session);
  if (sends_last_formed()) info->last_formed = state_.last_formed;
  if (config_.dynamic_participants) info->participants = state_.participants;
  send_phase(0, std::move(info));
}

void BasicDvProtocol::on_phase_complete(int phase,
                                        const PhaseMessages& messages) {
  if (phase == 0) {
    if (run_decision(messages)) record_and_send_attempt(1);
  } else {
    run_form_step(messages);
  }
}

Eligibility BasicDvProtocol::decide(const QuorumCalculus& calc,
                                    const StepAggregates& agg,
                                    const ProcessSet& M) const {
  return evaluate_eligibility(calc, agg, M);
}

Session BasicDvProtocol::make_formed_record(const Session& actual) const {
  return actual;
}

bool BasicDvProtocol::run_decision(const PhaseMessages& messages) {
  const ProcessSet& M = session_view().members;
  const InfoBySender infos = as_infos(messages);

  // Optimized protocol: learning + resolution (garbage collection).
  pre_decision_update(infos);

  // Section 6: merge the W / A participant sets before evaluating the
  // quorum requirement. All members merge the same messages, so all use
  // the same calculus (paper Lemma 13).
  if (config_.dynamic_participants) {
    std::vector<const ParticipantTracker*> peers;
    peers.reserve(infos.size());
    for (const auto& [from, info] : infos) peers.push_back(&info->participants);
    const ParticipantTracker before = state_.participants;
    state_.participants.merge_attempt_step(peers);
    if (state_.participants != before) {
      wal_.stage(StateDelta::merge_participants(state_.participants));
    }
  }

  pending_agg_ = aggregate_step1(infos);
  const Eligibility verdict = decide(make_calculus(), pending_agg_, M);
  if (!verdict.eligible) {
    persist();  // learning / participant merges must still survive
    abort_session(verdict.reason);
    return false;
  }
  return true;
}

void BasicDvProtocol::record_and_send_attempt(int phase) {
  state_.session_number = pending_agg_.max_session + 1;
  const Session session{session_view().members, state_.session_number};
  state_.record_attempt(session, id());
  if (config_.ambiguous_record_limit != 0 &&
      state_.ambiguous.size() > config_.ambiguous_record_limit) {
    // Deliberately unsound truncation — see DvConfig::ambiguous_record_limit.
    state_.ambiguous.erase(
        state_.ambiguous.begin(),
        state_.ambiguous.end() -
            static_cast<std::ptrdiff_t>(config_.ambiguous_record_limit));
  }
  wal_.stage(StateDelta::attempt(session, config_.ambiguous_record_limit));
  max_ambiguous_recorded_ =
      std::max(max_ambiguous_recorded_, state_.ambiguous.size());
  record_ambiguity_level();
  persist();
  notify_attempt(session);
  log(LogLevel::kDebug, "attempts " + session.to_string());

  auto attempt = std::make_shared<AttemptPayload>(phase);
  attempt->session_number = state_.session_number;
  send_phase(phase, std::move(attempt));
}

void BasicDvProtocol::run_form_step(const PhaseMessages& messages) {
  // Sanity: all members attempted the same session (paper Lemma 4).
  for (const auto& [from, payload] : messages) {
    const auto* attempt = dynamic_cast<const AttemptPayload*>(payload.get());
    ensure(attempt != nullptr, "form-step message is not an AttemptPayload");
    ensure(attempt->session_number == state_.session_number,
           "attempt session number mismatch (Lemma 4 violated)");
  }
  const Session actual{session_view().members, state_.session_number};
  // The recorded session can differ from the view (the hybrid baseline
  // pins the membership); the delta must carry what was recorded.
  const Session recorded = make_formed_record(actual);
  state_.apply_form(recorded);
  wal_.stage(StateDelta::form(recorded));
  record_ambiguity_level();
  persist();
  mark_primary(actual);
}

void BasicDvProtocol::record_ambiguity_level() {
  const auto level = static_cast<std::int64_t>(state_.ambiguous.size());
  ambiguity_gauge_->set(level);
  // Time-in-ambiguity: each closed episode (level 0 -> >0 -> 0) adds its
  // length to the counter; the fleet report divides by sim time.
  if (last_ambiguity_level_ == 0 && level > 0) {
    ambiguity_open_since_ = now();
  } else if (last_ambiguity_level_ > 0 && level == 0) {
    ambiguity_ticks_->add(now() - ambiguity_open_since_);
  }
  last_ambiguity_level_ = level;
  obs::TraceEvent event;
  event.time = now();
  event.kind = obs::TraceEventKind::kAmbiguityRecord;
  event.a = id();
  event.value = static_cast<std::uint64_t>(level);
  event.lamport = lamport_tick();
  event.cause = session_cause_eid();
  trace().record(std::move(event));
}

void BasicDvProtocol::record_ambiguity_resolution(obs::TraceEventKind kind,
                                                  const Session& session,
                                                  std::string rule) {
  obs::TraceEvent event;
  event.time = now();
  event.kind = kind;
  event.a = id();
  event.number = session.number;
  event.members = session.members;
  event.detail = std::move(rule);
  event.lamport = lamport_tick();
  event.cause = session_cause_eid();
  trace().record(std::move(event));
}

}  // namespace dynvote
