// The basic dynamic-voting protocol (paper section 4, figure 1).
//
// One session per membership view, two communication rounds:
//
//   step 1  broadcast Session_Number, Last_Primary, Ambiguous_Sessions;
//   step 2  (attempt) on receiving step-1 from ALL members: compute
//           Max_Session / Max_Primary / Max_Ambiguous_Sessions; if the
//           view is a Sub_Quorum of Max_Primary and of every ambiguous
//           attempt since, record the attempt durably and broadcast it;
//           otherwise abort the session;
//   step 3  (form) on receiving attempt from ALL members: the view is the
//           new primary component.
//
// The ambiguous-session record is the paper's key idea: if p forms S,
// every member of S recorded S as an attempt first, so any member that
// detached before forming will still hold S against future quorums.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dv/protocol_base.hpp"
#include "dv/state.hpp"
#include "dv/wal.hpp"
#include "quorum/sub_quorum.hpp"

namespace dynvote::obs {
class Gauge;
}  // namespace dynvote::obs

namespace dynvote {

/// Configuration shared by the dynamic-voting protocol family.
struct DvConfig {
  /// The fixed core group W0 (paper section 3).
  ProcessSet core;

  /// Min_Quorum: minimum number of admitted participants in any quorum
  /// (paper section 4.1). 1 = plain dynamic linear voting.
  std::size_t min_quorum = 1;

  /// Enables the dynamically-changing quorum requirements of paper
  /// section 6 (the W / A participant sets).
  bool dynamic_participants = false;

  /// Dynamic *linear* voting's tie-break on equal halves (paper 4.1,
  /// from [12]). Disabling it degrades to plain dynamic voting; the
  /// ablation bench quantifies the availability cost.
  bool linear_tie_break = true;

  /// Cap on how many ambiguous sessions are *kept* (0 = unlimited).
  /// The paper proves any finite cap breaks consistency (section 4.6);
  /// the LastAttemptOnly baseline sets 1 to reproduce exactly that.
  std::size_t ambiguous_record_limit = 0;

  /// How protocol state reaches stable storage (dv/wal.hpp): delta WAL
  /// with checkpoint compaction by default, full snapshot per persist as
  /// the legacy fallback.
  PersistenceOptions persistence;

  /// Where this node's protocol-side instruments land (the dv.storage.*
  /// WAL counters, the dv.ambiguous_recorded gauge, dv.ambiguity_ticks).
  /// nullptr = the simulator's fleet-global registry; a sharded fleet
  /// points every group at its MetricsHub child registry so per-shard
  /// health is attributable (borrowed; must outlive the node).
  obs::MetricsRegistry* registry = nullptr;
};

/// The values computed at the start of the attempt step (paper 4.3).
struct StepAggregates {
  SessionNumber max_session = 0;
  std::optional<Session> max_primary;
  /// Attempts with number > Max_Primary.N, union over all members,
  /// deduplicated by (membership, number).
  std::vector<Session> max_ambiguous;
};

/// Step-1 messages keyed by sender.
using InfoBySender = std::map<ProcessId, const InfoPayload*>;

/// Computes Max_Session, Max_Primary and Max_Ambiguous_Sessions from the
/// step-1 messages. Deterministic: every member computes identical
/// aggregates from the identical message set.
[[nodiscard]] StepAggregates aggregate_step1(const InfoBySender& infos);

struct Eligibility {
  bool eligible = false;
  std::string reason;  // human-readable, used in traces and reject events
};

/// The attempt-step decision (paper figure 1 step 2, extended with the
/// section-6 unconditional clause): is membership M an eligible quorum?
[[nodiscard]] Eligibility evaluate_eligibility(const QuorumCalculus& calc,
                                               const StepAggregates& agg,
                                               const ProcessSet& M);

class BasicDvProtocol : public SessionProtocolBase {
 public:
  BasicDvProtocol(sim::Transport& transport, ProcessId id, DvConfig config);
  BasicDvProtocol(sim::Simulator& sim, ProcessId id, DvConfig config);

  [[nodiscard]] const ProtocolState& state() const noexcept { return state_; }
  [[nodiscard]] const DvConfig& config() const noexcept { return config_; }

  /// The persistence layer (tests hook its mid-compaction window and
  /// read its persist counters).
  [[nodiscard]] WalPersistence& persistence() noexcept { return wal_; }
  [[nodiscard]] const WalPersistence& persistence() const noexcept {
    return wal_;
  }

  /// High-water mark of |Ambiguous_Sessions| ever recorded — the metric
  /// of experiment E3 (exponential without GC, linear with).
  [[nodiscard]] std::size_t max_ambiguous_recorded() const noexcept {
    return max_ambiguous_recorded_;
  }

 protected:
  /// For subclasses with extra rounds (the three-phase-recovery
  /// baseline): `max_phases` broadcast rounds, form on the last.
  BasicDvProtocol(sim::Transport& transport, ProcessId id, DvConfig config,
                  int max_phases);
  BasicDvProtocol(sim::Simulator& sim, ProcessId id, DvConfig config,
                  int max_phases);

  void begin_session(const View& view) override;
  void on_phase_complete(int phase, const PhaseMessages& messages) override;
  void handle_recover() override;

  /// Optimized protocol: include Last_Formed in step-1 messages.
  [[nodiscard]] virtual bool sends_last_formed() const { return false; }

  /// Optimized protocol: learning + resolution rules, applied to own
  /// state before the aggregates are computed (paper figure 3 step 2).
  virtual void pre_decision_update(const InfoBySender& /*infos*/) {}

  /// The eligibility decision; baselines with different quorum rules
  /// (blocking, hybrid) override this.
  [[nodiscard]] virtual Eligibility decide(const QuorumCalculus& calc,
                                           const StepAggregates& agg,
                                           const ProcessSet& M) const;

  /// How the formed session is recorded in Last_Primary. The hybrid
  /// baseline pins the recorded quorum at a floor of three members.
  [[nodiscard]] virtual Session make_formed_record(const Session& actual) const;

  // -- step building blocks, shared with multi-round baselines --------------

  /// Runs the attempt-step computation (learning, participant merge,
  /// aggregates, decision). On rejection, persists and aborts the
  /// session. Stores the aggregates for record_and_send_attempt.
  [[nodiscard]] bool run_decision(const PhaseMessages& messages);

  /// Records the attempt durably and broadcasts it as phase `phase`.
  void record_and_send_attempt(int phase);

  /// The form step: validates attempt messages, adopts the new primary.
  void run_form_step(const PhaseMessages& messages);

  /// Builds the QuorumCalculus for this attempt step (after the
  /// participant sets were merged).
  [[nodiscard]] QuorumCalculus make_calculus() const;

  /// The aggregates computed by the last run_decision of this session —
  /// identical at every member (they fold the same message set).
  [[nodiscard]] const StepAggregates& pending_aggregates() const noexcept {
    return pending_agg_;
  }

  /// Makes the mutations of the current step durable (paper section
  /// 4.4): commits the deltas staged on wal_ (or rewrites the snapshot in
  /// snapshot mode). Called before every send that exposes a state
  /// change; a commit with nothing staged writes nothing.
  void persist();

  /// Records the current |Ambiguous_Sessions| in the trace and the
  /// "dv.ambiguous_recorded" gauge. Called whenever the record changes
  /// (attempt recorded, session formed, garbage collection) so the
  /// trace-replay checker can verify the Theorem-1 bound offline.
  void record_ambiguity_level();

  /// Records the end of one ambiguous record's lifetime: `kind` is
  /// kAmbiguityResolved (deleted) or kAmbiguityAdopted, `rule` names the
  /// §5 rule that fired (see docs/OBSERVABILITY.md). The span builder
  /// closes the record's lifetime span at this event.
  void record_ambiguity_resolution(obs::TraceEventKind kind,
                                   const Session& session, std::string rule);

  ProtocolState state_;
  DvConfig config_;
  /// Persistence of state_. Every mutation of state_ must stage its
  /// delta here before persist() — the cross-check enforces it.
  WalPersistence wal_;

 private:
  StepAggregates pending_agg_;
  std::size_t max_ambiguous_recorded_ = 0;
  /// Cached handles into the registry config_.registry selected — the
  /// ambiguity level is re-recorded on every state change, and a map
  /// lookup per call is measurable at fleet scale.
  obs::Gauge* ambiguity_gauge_ = nullptr;
  obs::Counter* ambiguity_ticks_ = nullptr;
  /// Start of the current ambiguous episode (level > 0); meaningful only
  /// while last_ambiguity_level_ > 0. On the closing transition back to
  /// level 0 the episode length lands on "dv.ambiguity_ticks"; an episode
  /// still open at the end of a run is excluded, matching the
  /// dv.primary_uptime_ticks open-tail convention.
  SimTime ambiguity_open_since_ = 0;
  std::int64_t last_ambiguity_level_ = 0;
};

/// Downcasts a phase bucket to InfoPayloads (phase 0 of the dv family).
[[nodiscard]] InfoBySender as_infos(
    const SessionProtocolBase::PhaseMessages& messages);

}  // namespace dynvote
