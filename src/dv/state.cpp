#include "dv/state.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

ProtocolState ProtocolState::initial(const ProcessSet& core, ProcessId self) {
  ProtocolState state;
  state.participants = ParticipantTracker::initial(core, self);
  if (core.contains(self)) {
    state.session_number = 0;
    state.last_primary = Session{core, 0};
    for (ProcessId q : core) state.last_formed.emplace(q, *state.last_primary);
  } else {
    state.session_number = 0;
    state.last_primary = std::nullopt;  // (∞, -1)
  }
  return state;
}

ProtocolState ProtocolState::after_disk_loss(ProcessId self) {
  ProtocolState state;
  state.participants = ParticipantTracker::initial(ProcessSet{}, self);
  state.last_primary = std::nullopt;
  state.has_history = false;
  return state;
}

AmbiguousSession* ProtocolState::find_ambiguous(SessionNumber number) {
  for (auto& a : ambiguous) {
    if (a.session.number == number) return &a;
  }
  return nullptr;
}

const AmbiguousSession* ProtocolState::find_ambiguous(
    SessionNumber number) const {
  for (const auto& a : ambiguous) {
    if (a.session.number == number) return &a;
  }
  return nullptr;
}

void ProtocolState::record_attempt(const Session& session, ProcessId self) {
  ensure(session.members.contains(self), "attempting a session we're not in");
  ensure(session.number > last_primary_number(),
         "attempt number must exceed last primary's");
  // "If Ambiguous_Sessions already contains an attempt with the same
  // membership, overwrite it" (paper figure 1, step 2).
  std::erase_if(ambiguous, [&](const AmbiguousSession& a) {
    return a.session.members == session.members;
  });
  ambiguous.emplace_back(session, self);
  std::sort(ambiguous.begin(), ambiguous.end(),
            [](const AmbiguousSession& a, const AmbiguousSession& b) {
              return a.session.number < b.session.number;
            });
}

void ProtocolState::apply_form(const Session& session) {
  last_primary = session;
  ambiguous.clear();
  for (ProcessId q : session.members) last_formed[q] = session;
  participants.admit_on_form(session.members);
}

void ProtocolState::adopt_formed(const Session& session) {
  ensure(session.number > last_primary_number(),
         "adopting a session older than Last_Primary");
  last_primary = session;
  for (ProcessId q : session.members) last_formed[q] = session;
  // Resolution rule 2: every ambiguous session with a number <= the
  // formed one is superseded ("p behaves as if it also formed F").
  std::erase_if(ambiguous, [&](const AmbiguousSession& a) {
    return a.session.number <= session.number;
  });
}

namespace {
// Bump when the persistent layout changes; decode rejects other versions
// instead of misreading old disks.
constexpr std::uint8_t kStateFormatVersion = 1;
}  // namespace

void ProtocolState::encode(Encoder& enc) const {
  enc.put_u8(kStateFormatVersion);
  enc.put_i64(session_number);
  encode_optional_session(enc, last_primary);
  enc.put_varint(ambiguous.size());
  for (const auto& a : ambiguous) a.encode(enc);
  enc.put_varint(last_formed.size());
  for (const auto& [q, session] : last_formed) {
    enc.put_process_id(q);
    session.encode(enc);
  }
  participants.encode(enc);
  enc.put_bool(has_history);
}

ProtocolState ProtocolState::decode(Decoder& dec) {
  if (dec.get_u8() != kStateFormatVersion) {
    throw CodecError("unsupported protocol-state format version");
  }
  ProtocolState state;
  state.session_number = dec.get_i64();
  state.last_primary = decode_optional_session(dec);
  const std::uint64_t n_ambiguous = dec.get_varint();
  // Every entry needs at least one byte: a length prefix beyond the
  // remaining buffer is malformed (and must not drive a huge reserve).
  if (n_ambiguous > dec.remaining()) {
    throw CodecError("ambiguous-session count prefix too large");
  }
  state.ambiguous.reserve(n_ambiguous);
  for (std::uint64_t i = 0; i < n_ambiguous; ++i) {
    state.ambiguous.push_back(AmbiguousSession::decode(dec));
  }
  const std::uint64_t n_formed = dec.get_varint();
  if (n_formed > dec.remaining()) {
    throw CodecError("last-formed count prefix too large");
  }
  for (std::uint64_t i = 0; i < n_formed; ++i) {
    ProcessId q = dec.get_process_id();
    state.last_formed.emplace(q, Session::decode(dec));
  }
  state.participants = ParticipantTracker::decode(dec);
  state.has_history = dec.get_bool();
  return state;
}

std::string ProtocolState::to_string() const {
  std::string out = "sn=" + std::to_string(session_number) +
                    " lp=" + dynvote::to_string(last_primary) + " amb=[";
  for (std::size_t i = 0; i < ambiguous.size(); ++i) {
    if (i != 0) out += " ";
    out += ambiguous[i].to_string();
  }
  out += "] " + participants.to_string();
  if (!has_history) out += " (no-history)";
  return out;
}

}  // namespace dynvote
