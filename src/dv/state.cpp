#include "dv/state.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

ProtocolState ProtocolState::initial(const ProcessSet& core, ProcessId self) {
  ProtocolState state;
  state.participants = ParticipantTracker::initial(core, self);
  if (core.contains(self)) {
    state.session_number = 0;
    state.last_primary = Session{core, 0};
    for (ProcessId q : core) state.last_formed.emplace(q, *state.last_primary);
  } else {
    state.session_number = 0;
    state.last_primary = std::nullopt;  // (∞, -1)
  }
  return state;
}

ProtocolState ProtocolState::after_disk_loss(ProcessId self) {
  ProtocolState state;
  state.participants = ParticipantTracker::initial(ProcessSet{}, self);
  state.last_primary = std::nullopt;
  state.has_history = false;
  return state;
}

AmbiguousSession* ProtocolState::find_ambiguous(SessionNumber number) {
  for (auto& a : ambiguous) {
    if (a.session.number == number) return &a;
  }
  return nullptr;
}

const AmbiguousSession* ProtocolState::find_ambiguous(
    SessionNumber number) const {
  for (const auto& a : ambiguous) {
    if (a.session.number == number) return &a;
  }
  return nullptr;
}

void ProtocolState::record_attempt(const Session& session, ProcessId self) {
  ensure(session.members.contains(self), "attempting a session we're not in");
  ensure(session.number > last_primary_number(),
         "attempt number must exceed last primary's");
  // "If Ambiguous_Sessions already contains an attempt with the same
  // membership, overwrite it" (paper figure 1, step 2).
  std::erase_if(ambiguous, [&](const AmbiguousSession& a) {
    return a.session.members == session.members;
  });
  ambiguous.emplace_back(session, self);
  std::sort(ambiguous.begin(), ambiguous.end(),
            [](const AmbiguousSession& a, const AmbiguousSession& b) {
              return a.session.number < b.session.number;
            });
}

void ProtocolState::apply_form(const Session& session) {
  last_primary = session;
  ambiguous.clear();
  for (ProcessId q : session.members) last_formed[q] = session;
  participants.admit_on_form(session.members);
}

void ProtocolState::adopt_formed(const Session& session) {
  ensure(session.number > last_primary_number(),
         "adopting a session older than Last_Primary");
  last_primary = session;
  for (ProcessId q : session.members) last_formed[q] = session;
  // Resolution rule 2: every ambiguous session with a number <= the
  // formed one is superseded ("p behaves as if it also formed F").
  std::erase_if(ambiguous, [&](const AmbiguousSession& a) {
    return a.session.number <= session.number;
  });
}

namespace {
// Bump when the persistent layout changes; decode rejects other versions
// instead of misreading old disks.
constexpr std::uint8_t kStateFormatVersion = 1;
}  // namespace

void ProtocolState::encode(Encoder& enc) const {
  enc.put_u8(kStateFormatVersion);
  enc.put_i64(session_number);
  encode_optional_session(enc, last_primary);
  enc.put_varint(ambiguous.size());
  for (const auto& a : ambiguous) a.encode(enc);
  enc.put_varint(last_formed.size());
  for (const auto& [q, session] : last_formed) {
    enc.put_process_id(q);
    session.encode(enc);
  }
  participants.encode(enc);
  enc.put_bool(has_history);
}

ProtocolState ProtocolState::decode(Decoder& dec) {
  if (dec.get_u8() != kStateFormatVersion) {
    throw CodecError("unsupported protocol-state format version");
  }
  ProtocolState state;
  state.session_number = dec.get_i64();
  state.last_primary = decode_optional_session(dec);
  const std::uint64_t n_ambiguous = dec.get_varint();
  // Every entry needs at least one byte: a length prefix beyond the
  // remaining buffer is malformed (and must not drive a huge reserve).
  if (n_ambiguous > dec.remaining()) {
    throw CodecError("ambiguous-session count prefix too large");
  }
  state.ambiguous.reserve(n_ambiguous);
  for (std::uint64_t i = 0; i < n_ambiguous; ++i) {
    state.ambiguous.push_back(AmbiguousSession::decode(dec));
  }
  const std::uint64_t n_formed = dec.get_varint();
  if (n_formed > dec.remaining()) {
    throw CodecError("last-formed count prefix too large");
  }
  for (std::uint64_t i = 0; i < n_formed; ++i) {
    ProcessId q = dec.get_process_id();
    state.last_formed.emplace(q, Session::decode(dec));
  }
  state.participants = ParticipantTracker::decode(dec);
  state.has_history = dec.get_bool();
  return state;
}

StateDelta StateDelta::session_number(SessionNumber n) {
  StateDelta d;
  d.kind = StateDeltaKind::kSessionNumber;
  d.number = n;
  return d;
}

StateDelta StateDelta::attempt(Session s, std::uint64_t record_limit) {
  StateDelta d;
  d.kind = StateDeltaKind::kAttempt;
  d.session = std::move(s);
  d.record_limit = record_limit;
  return d;
}

StateDelta StateDelta::form(Session s) {
  StateDelta d;
  d.kind = StateDeltaKind::kForm;
  d.session = std::move(s);
  return d;
}

StateDelta StateDelta::adopt(Session s) {
  StateDelta d;
  d.kind = StateDeltaKind::kAdopt;
  d.session = std::move(s);
  return d;
}

StateDelta StateDelta::learned(SessionNumber n, ProcessId q,
                               FormedKnowledge k) {
  StateDelta d;
  d.kind = StateDeltaKind::kKnowledge;
  d.number = n;
  d.subject = q;
  d.knowledge = k;
  return d;
}

StateDelta StateDelta::erase_ambiguous(std::vector<SessionNumber> numbers) {
  StateDelta d;
  d.kind = StateDeltaKind::kEraseAmbiguous;
  d.numbers = std::move(numbers);
  return d;
}

StateDelta StateDelta::merge_participants(ParticipantTracker t) {
  StateDelta d;
  d.kind = StateDeltaKind::kParticipants;
  d.participants = std::move(t);
  return d;
}

void StateDelta::apply(ProtocolState& state, ProcessId self) const {
  switch (kind) {
    case StateDeltaKind::kSessionNumber:
      state.session_number = number;
      return;
    case StateDeltaKind::kAttempt:
      state.session_number = session.number;
      state.record_attempt(session, self);
      if (record_limit != 0 && state.ambiguous.size() > record_limit) {
        state.ambiguous.erase(
            state.ambiguous.begin(),
            state.ambiguous.end() - static_cast<std::ptrdiff_t>(record_limit));
      }
      return;
    case StateDeltaKind::kForm:
      state.session_number = session.number;
      state.apply_form(session);
      return;
    case StateDeltaKind::kAdopt:
      state.adopt_formed(session);
      return;
    case StateDeltaKind::kKnowledge: {
      AmbiguousSession* amb = state.find_ambiguous(number);
      ensure(amb != nullptr, "knowledge delta for unrecorded session");
      amb->set_knowledge(subject, knowledge);
      return;
    }
    case StateDeltaKind::kEraseAmbiguous:
      std::erase_if(state.ambiguous, [&](const AmbiguousSession& a) {
        return std::find(numbers.begin(), numbers.end(), a.session.number) !=
               numbers.end();
      });
      return;
    case StateDeltaKind::kParticipants:
      state.participants = participants;
      return;
  }
  ensure(false, "unknown state-delta kind");
}

namespace {

std::uint8_t encode_knowledge(FormedKnowledge k) {
  return static_cast<std::uint8_t>(static_cast<std::int8_t>(k) + 1);
}

FormedKnowledge decode_knowledge(std::uint8_t byte) {
  if (byte > 2) throw CodecError("invalid formed-knowledge byte");
  return static_cast<FormedKnowledge>(static_cast<std::int8_t>(byte) - 1);
}

}  // namespace

void StateDelta::encode(Encoder& enc) const {
  enc.put_u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case StateDeltaKind::kSessionNumber:
      enc.put_i64(number);
      return;
    case StateDeltaKind::kAttempt:
      session.encode(enc);
      enc.put_varint(record_limit);
      return;
    case StateDeltaKind::kForm:
    case StateDeltaKind::kAdopt:
      session.encode(enc);
      return;
    case StateDeltaKind::kKnowledge:
      enc.put_i64(number);
      enc.put_process_id(subject);
      enc.put_u8(encode_knowledge(knowledge));
      return;
    case StateDeltaKind::kEraseAmbiguous:
      enc.put_varint(numbers.size());
      for (SessionNumber n : numbers) enc.put_i64(n);
      return;
    case StateDeltaKind::kParticipants:
      participants.encode(enc);
      return;
  }
  ensure(false, "unknown state-delta kind");
}

StateDelta StateDelta::decode(Decoder& dec) {
  StateDelta d;
  const std::uint8_t kind = dec.get_u8();
  if (kind < static_cast<std::uint8_t>(StateDeltaKind::kSessionNumber) ||
      kind > static_cast<std::uint8_t>(StateDeltaKind::kParticipants)) {
    throw CodecError("unknown state-delta kind");
  }
  d.kind = static_cast<StateDeltaKind>(kind);
  switch (d.kind) {
    case StateDeltaKind::kSessionNumber:
      d.number = dec.get_i64();
      return d;
    case StateDeltaKind::kAttempt:
      d.session = Session::decode(dec);
      d.record_limit = dec.get_varint();
      return d;
    case StateDeltaKind::kForm:
    case StateDeltaKind::kAdopt:
      d.session = Session::decode(dec);
      return d;
    case StateDeltaKind::kKnowledge:
      d.number = dec.get_i64();
      d.subject = dec.get_process_id();
      d.knowledge = decode_knowledge(dec.get_u8());
      return d;
    case StateDeltaKind::kEraseAmbiguous: {
      const std::uint64_t n = dec.get_varint();
      if (n > dec.remaining()) {
        throw CodecError("erase-delta count prefix too large");
      }
      d.numbers.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) d.numbers.push_back(dec.get_i64());
      return d;
    }
    case StateDeltaKind::kParticipants:
      d.participants = ParticipantTracker::decode(dec);
      return d;
  }
  throw CodecError("unknown state-delta kind");
}

namespace {
// Leading byte of a checkpoint record. Deliberately far from the
// ProtocolState format version (1): recovery dispatches on the first
// byte to also read legacy raw snapshots (and snapshot-mode writes).
constexpr std::uint8_t kCheckpointMagic = 0xC5;
}  // namespace

void encode_checkpoint(Encoder& enc, const ProtocolState& state,
                       std::uint64_t covers_lsn) {
  enc.put_u8(kCheckpointMagic);
  enc.put_varint(covers_lsn);
  state.encode(enc);
}

CheckpointRecord decode_checkpoint(const std::vector<std::uint8_t>& bytes) {
  CheckpointRecord record;
  if (!bytes.empty() && bytes[0] == kCheckpointMagic) {
    Decoder dec(bytes);
    (void)dec.get_u8();
    record.covers_lsn = dec.get_varint();
    record.state = ProtocolState::decode(dec);
  } else {
    Decoder dec(bytes);
    record.state = ProtocolState::decode(dec);
    record.covers_lsn = 0;
  }
  return record;
}

std::string ProtocolState::to_string() const {
  std::string out = "sn=" + std::to_string(session_number) +
                    " lp=" + dynvote::to_string(last_primary) + " amb=[";
  for (std::size_t i = 0; i < ambiguous.size(); ++i) {
    if (i != 0) out += " ";
    out += ambiguous[i].to_string();
  }
  out += "] " + participants.to_string();
  if (!has_history) out += " (no-history)";
  return out;
}

}  // namespace dynvote
