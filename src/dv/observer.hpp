// Observation interface for protocol executions.
//
// Protocols report what they do — attempts, formed primaries, rejections
// — to an external observer. The consistency checker, the metrics
// collector, and the availability harness are all observers; keeping
// them outside the protocol guarantees the measurement can't influence
// the measured (and lets the deliberately broken baselines run to
// completion so their inconsistencies can be counted).
#pragma once

#include <string>

#include "dv/session.hpp"
#include "membership/view.hpp"
#include "util/ids.hpp"

namespace dynvote {

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// A process installed a membership view and started a session.
  virtual void on_view_installed(SimTime /*time*/, ProcessId /*p*/,
                                 const View& /*view*/) {}

  /// A process recorded the session in its attempt step.
  virtual void on_attempt(SimTime /*time*/, ProcessId /*p*/,
                          const Session& /*session*/) {}

  /// A process formed the session: it is now in the primary component.
  /// `rounds` is the number of communication rounds the session used.
  virtual void on_formed(SimTime /*time*/, ProcessId /*p*/,
                         const Session& /*session*/, int /*rounds*/) {}

  /// A process left the primary component (view change or crash).
  virtual void on_primary_lost(SimTime /*time*/, ProcessId /*p*/) {}

  /// A session was aborted: the view was not an eligible quorum (or a
  /// blocking baseline is stuck waiting for absent members — the reason
  /// string distinguishes the cases).
  virtual void on_session_rejected(SimTime /*time*/, ProcessId /*p*/,
                                   const View& /*view*/,
                                   const std::string& /*reason*/) {}
};

/// A per-process hook for applications built on the service: told when
/// its process enters/leaves the primary component.
class PrimaryListener {
 public:
  virtual ~PrimaryListener() = default;
  virtual void on_primary_formed(const Session& session) = 0;
  virtual void on_primary_lost() = 0;
};

}  // namespace dynvote
