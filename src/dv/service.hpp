// Public facade: the primary-component maintenance service.
//
// This is the API an application embeds (the paper's intended use:
// replication algorithms, transaction managers, group-communication
// toolkits). One PrimaryComponentService fronts one process's protocol
// instance; the application asks "am I in the primary component?" and
// registers a listener for transitions.
//
// The protocol factory builds any protocol variant in the library by
// name — the harness, benches and examples all construct protocols
// through it.
#pragma once

#include <memory>
#include <string>

#include <vector>

#include "dv/basic_protocol.hpp"
#include "dv/protocol_base.hpp"
#include "dv/protocol_node.hpp"

namespace dynvote {

/// Every protocol variant in the library: the paper's two protocols and
/// the six comparison baselines.
enum class ProtocolKind {
  kBasic,              // paper section 4 (figure 1)
  kOptimized,          // paper section 5 (figures 2-3)
  kCentralized,        // paper section 4.4: coordinator-based variant
  kStaticMajority,     // static voting baseline
  kNaiveDynamic,       // no attempt step — INCONSISTENT by design
  kLastAttemptOnly,    // paper section 4.6 strawman — INCONSISTENT by design
  kBlockingDynamic,    // 2PC-style: waits for ALL attempters
  kHybridJm,           // Jajodia-Mutchler hybrid static/dynamic
  kThreePhaseRecovery  // explicit 3-phase resolution: 5 rounds
};

[[nodiscard]] const char* to_string(ProtocolKind kind) noexcept;

/// All kinds, in a stable order (for sweeps over protocols).
[[nodiscard]] const std::vector<ProtocolKind>& all_protocol_kinds();

/// True for the protocols that guarantee a total order on primary
/// components; false for the two deliberately broken baselines.
[[nodiscard]] bool is_consistent_protocol(ProtocolKind kind) noexcept;

/// Constructs a protocol node of the given kind over any Transport
/// (the simulator's or the thread runtime's). The DvConfig is
/// interpreted by each variant as documented on its class; the static
/// baseline uses only `core`.
[[nodiscard]] std::unique_ptr<ProtocolNode> make_protocol(
    ProtocolKind kind, sim::Transport& transport, ProcessId id,
    DvConfig config);

/// Application-facing handle over one process's protocol instance.
class PrimaryComponentService {
 public:
  /// Borrows the protocol node (owned by the Simulator).
  explicit PrimaryComponentService(ProtocolNode& protocol)
      : protocol_(&protocol) {}

  /// Is this process currently in the primary component?
  [[nodiscard]] bool in_primary() const { return protocol_->is_primary(); }

  /// The session of the current primary component, if this process is in
  /// it.
  [[nodiscard]] const std::optional<Session>& primary() const {
    return protocol_->primary_session();
  }

  /// Registers the application callback for primary transitions. At most
  /// one listener per service.
  void set_listener(PrimaryListener* listener) {
    protocol_->set_primary_listener(listener);
  }

  [[nodiscard]] ProcessId process() const { return protocol_->id(); }

 private:
  ProtocolNode* protocol_;
};

}  // namespace dynvote
