// Sessions and ambiguous sessions (paper sections 4.2, 4.4, 5.1).
//
// A session S of the protocol is identified by its membership S.M and
// session number S.N. A *formed* session is one at least one member has
// formed; an *attempted* session is one at least one member recorded in
// the attempt step. Every formed session is in particular attempted.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/codec.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct Session {
  ProcessSet members;      // S.M
  SessionNumber number = 0;  // S.N

  friend bool operator==(const Session&, const Session&) = default;
  friend auto operator<=>(const Session&, const Session&) = default;

  [[nodiscard]] std::string to_string() const;

  void encode(Encoder& enc) const;
  [[nodiscard]] static Session decode(Decoder& dec);
};

/// What a process knows about whether a given member formed a session
/// (the S.A array of paper section 5.1).
enum class FormedKnowledge : std::int8_t {
  kNotFormed = -1,  // S.A[i] = -1: known not to have formed S
  kUnknown = 0,     // S.A[i] =  0: no information
  kFormed = 1,      // S.A[i] =  1: known to have formed S
};

/// An entry of Ambiguous_Sessions: a session this process attempted to
/// form after its last formed primary, annotated (in the optimized
/// protocol) with per-member formation knowledge.
struct AmbiguousSession {
  Session session;
  /// knowledge[i] is what we know about session.members.members()[i];
  /// always sized to the membership. The basic protocol carries the array
  /// too but never updates it past the initial self = kNotFormed.
  std::vector<FormedKnowledge> knowledge;

  AmbiguousSession() = default;

  /// Fresh attempt record as written in the attempt step: everything
  /// unknown except the recording process itself, which has certainly not
  /// formed the session yet (paper figure 3, step 2).
  AmbiguousSession(Session s, ProcessId self);

  [[nodiscard]] FormedKnowledge knowledge_about(ProcessId q) const;
  void set_knowledge(ProcessId q, FormedKnowledge k);

  /// True iff every member (including self) is known not to have formed
  /// the session — the deletion condition of resolution rule 1.
  [[nodiscard]] bool known_unformed_by_all() const;

  /// True iff some member is known to have formed the session.
  [[nodiscard]] bool known_formed_by_someone() const;

  [[nodiscard]] std::string to_string() const;

  void encode(Encoder& enc) const;
  [[nodiscard]] static AmbiguousSession decode(Decoder& dec);

  friend bool operator==(const AmbiguousSession&,
                         const AmbiguousSession&) = default;
};

void encode_optional_session(Encoder& enc, const std::optional<Session>& s);
[[nodiscard]] std::optional<Session> decode_optional_session(Decoder& dec);

[[nodiscard]] std::string to_string(const std::optional<Session>& s);

}  // namespace dynvote
