// The centralized variant of the basic protocol (paper section 4.4).
//
// "It is straightforward to convert it to work in a centralized fashion
//  by appointing a coordinator for each session. In every step the
//  coordinator receives messages from all processes in a session, does
//  local computation, and sends every process its decision. The
//  centralized version requires less point to point messages. However,
//  with hardware multicast capabilities, the symmetric version is more
//  efficient."
//
// Realization (coordinator = lowest-ranked view member):
//
//   hop 1  every member sends its Info to the coordinator;
//   hop 2  the coordinator computes Max_Session / Max_Primary /
//          Max_Ambiguous_Sessions, decides eligibility, records its own
//          attempt, and sends every member the attempt decision (with
//          the agreed session number);
//   hop 3  each member records the attempt durably and acknowledges;
//   hop 4  on all acks the coordinator forms and tells everyone to form.
//
// Per new quorum: 4(n-1) point-to-point messages and 4 message latencies
// — versus the symmetric protocol's 2n(n-1) messages in 2 latencies.
// The safety argument is unchanged: a member acknowledges only after its
// attempt record is durable, and the coordinator commits only after all
// acknowledgements, so any member that detaches before the commit still
// holds the session ambiguous.
#pragma once

#include <map>

#include "dv/basic_protocol.hpp"
#include "dv/protocol_node.hpp"
#include "dv/state.hpp"

namespace dynvote {

/// Messages of the centralized variant. All carry their hop so traces
/// stay readable; collection is role-specific, not phase-generic.
class CentralizedPayload final : public sim::MessagePayload {
 public:
  enum class Hop : std::uint8_t {
    kInfo = 1,     // member -> coordinator: the step-1 state
    kAttempt = 2,  // coordinator -> member: attempt with session number
    kAck = 3,      // member -> coordinator: attempt recorded durably
    kCommit = 4,   // coordinator -> member: all acked, form
  };

  Hop hop = Hop::kInfo;
  InfoPayload info;               // kInfo only
  SessionNumber session_number = 0;  // kAttempt / kAck / kCommit

  [[nodiscard]] std::string type_name() const override;
  [[nodiscard]] std::size_t encoded_size() const override;
};

class CentralizedDvProtocol : public ProtocolNode {
 public:
  CentralizedDvProtocol(sim::Transport& transport, ProcessId id,
                        DvConfig config);
  CentralizedDvProtocol(sim::Simulator& sim, ProcessId id, DvConfig config);

  [[nodiscard]] const ProtocolState& state() const noexcept { return state_; }

  /// The persistence layer (tests hook its mid-compaction window and
  /// read its persist counters).
  [[nodiscard]] WalPersistence& persistence() noexcept { return wal_; }

  /// The coordinator of a view: its lowest-ranked member.
  [[nodiscard]] static ProcessId coordinator_of(const View& view);

 protected:
  void on_view(const View& view) override;
  void on_message(ProcessId from, const sim::PayloadPtr& payload) override;
  void on_crash() override;
  void on_recover() override;

 private:
  [[nodiscard]] bool coordinating() const;
  void persist();
  void run_coordinator_decision();
  void maybe_commit();
  void handle_attempt(const CentralizedPayload& msg);
  void handle_commit(const CentralizedPayload& msg);
  void form(SessionNumber number);

  ProtocolState state_;
  DvConfig config_;
  WalPersistence wal_;

  bool session_active_ = false;
  std::map<ProcessId, InfoPayload> collected_infos_;  // coordinator only
  ProcessSet acked_;                                  // coordinator only
  bool attempted_this_session_ = false;
};

}  // namespace dynvote
