// The optimized dynamic-voting protocol (paper section 5, figures 2-3).
//
// Extends the basic protocol with local garbage collection of ambiguous
// sessions. In step 1 each process additionally gossips its Last_Formed
// array; in step 2, before deciding, it applies:
//
//  learning rules (5.2) — from Last_Formed_q(p) it learns, for each of
//  its recorded ambiguous sessions S with q ∈ S.M, whether q formed S;
//  and from q's Last_Primary / Ambiguous_Sessions it can learn that S
//  was formed by nobody at all;
//
//  resolution rules (figure 2) — a session learned formed by someone is
//  adopted as Last_Primary (superseding older ambiguity); a session
//  learned formed by nobody is deleted.
//
// The effect (paper Theorem 1): at most n − Min_Quorum + 1 ambiguous
// sessions are ever recorded concurrently, versus 2^⌊n/2⌋ for the basic
// protocol (paper section 4.7) — reproduced by experiment E3.
#pragma once

#include "dv/basic_protocol.hpp"

namespace dynvote {

class OptimizedDvProtocol : public BasicDvProtocol {
 public:
  using BasicDvProtocol::BasicDvProtocol;

  /// How many ambiguous sessions were deleted by resolution rule 1
  /// ("formed by nobody") and how many were resolved by adoption —
  /// exposed for tests and the E3 bench.
  [[nodiscard]] std::uint64_t gc_deletions() const noexcept {
    return gc_deletions_;
  }
  [[nodiscard]] std::uint64_t gc_adoptions() const noexcept {
    return gc_adoptions_;
  }

 protected:
  [[nodiscard]] bool sends_last_formed() const override { return true; }
  void pre_decision_update(const InfoBySender& infos) override;

 private:
  std::uint64_t gc_deletions_ = 0;
  std::uint64_t gc_adoptions_ = 0;
};

}  // namespace dynvote
