#include "dv/session.hpp"

#include "util/ensure.hpp"

namespace dynvote {

std::string Session::to_string() const {
  return "(" + members.to_string() + "," + std::to_string(number) + ")";
}

void Session::encode(Encoder& enc) const {
  enc.put_process_set(members);
  enc.put_i64(number);
}

Session Session::decode(Decoder& dec) {
  Session s;
  s.members = dec.get_process_set();
  s.number = dec.get_i64();
  return s;
}

AmbiguousSession::AmbiguousSession(Session s, ProcessId self)
    : session(std::move(s)),
      knowledge(session.members.size(), FormedKnowledge::kUnknown) {
  set_knowledge(self, FormedKnowledge::kNotFormed);
}

FormedKnowledge AmbiguousSession::knowledge_about(ProcessId q) const {
  return knowledge.at(session.members.index_of(q));
}

void AmbiguousSession::set_knowledge(ProcessId q, FormedKnowledge k) {
  knowledge.at(session.members.index_of(q)) = k;
}

bool AmbiguousSession::known_unformed_by_all() const {
  for (FormedKnowledge k : knowledge) {
    if (k != FormedKnowledge::kNotFormed) return false;
  }
  return true;
}

bool AmbiguousSession::known_formed_by_someone() const {
  for (FormedKnowledge k : knowledge) {
    if (k == FormedKnowledge::kFormed) return true;
  }
  return false;
}

std::string AmbiguousSession::to_string() const {
  std::string out = session.to_string() + "[";
  for (std::size_t i = 0; i < knowledge.size(); ++i) {
    if (i != 0) out += ",";
    switch (knowledge[i]) {
      case FormedKnowledge::kFormed: out += "+"; break;
      case FormedKnowledge::kNotFormed: out += "-"; break;
      case FormedKnowledge::kUnknown: out += "?"; break;
    }
  }
  return out + "]";
}

void AmbiguousSession::encode(Encoder& enc) const {
  session.encode(enc);
  enc.put_varint(knowledge.size());
  for (FormedKnowledge k : knowledge) {
    enc.put_u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(k) + 1));
  }
}

AmbiguousSession AmbiguousSession::decode(Decoder& dec) {
  AmbiguousSession a;
  a.session = Session::decode(dec);
  const std::uint64_t n = dec.get_varint();
  if (n != a.session.members.size()) {
    throw CodecError("knowledge array size mismatch");
  }
  a.knowledge.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t raw = dec.get_u8();
    if (raw > 2) throw CodecError("bad knowledge value");
    a.knowledge.push_back(
        static_cast<FormedKnowledge>(static_cast<std::int8_t>(raw) - 1));
  }
  return a;
}

void encode_optional_session(Encoder& enc, const std::optional<Session>& s) {
  enc.put_bool(s.has_value());
  if (s) s->encode(enc);
}

std::optional<Session> decode_optional_session(Decoder& dec) {
  if (!dec.get_bool()) return std::nullopt;
  return Session::decode(dec);
}

std::string to_string(const std::optional<Session>& s) {
  return s ? s->to_string() : "(∞,-1)";
}

}  // namespace dynvote
