// Protocol messages.
//
// The dynamic-voting family uses two message kinds per session (paper
// figure 1 / figure 3):
//
//   phase 0 — InfoPayload: Session_Number, Last_Primary,
//             Ambiguous_Sessions, plus Last_Formed (optimized protocol)
//             and the W/A participant sets (section 6).
//   phase 1 — AttemptPayload.
//
// The three-phase-recovery baseline adds small intermediate resolution
// payloads. All payloads know their own encoded size (through the binary
// codec) so the communication benchmarks report honest byte counts.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dv/session.hpp"
#include "quorum/participants.hpp"
#include "sim/message.hpp"
#include "util/codec.hpp"

namespace dynvote {

/// Base for session-protocol messages: each belongs to a numbered phase
/// within a session, and the generic phase collector in protocol_base
/// groups them by it.
class PhasedPayload : public sim::MessagePayload {
 public:
  [[nodiscard]] virtual int phase() const noexcept = 0;
};

/// Phase-0 state exchange ("Send your Session_Number, Last_Primary, and
/// Ambiguous_Sessions to all the members of M").
class InfoPayload final : public PhasedPayload {
 public:
  SessionNumber session_number = 0;
  bool has_history = true;
  std::optional<Session> last_primary;
  std::vector<Session> ambiguous;  // (M, N) pairs; knowledge arrays are local
  std::map<ProcessId, Session> last_formed;  // optimized protocol only
  ParticipantTracker participants;           // section 6 only

  [[nodiscard]] int phase() const noexcept override { return 0; }
  [[nodiscard]] std::string type_name() const override { return "dv.info"; }
  [[nodiscard]] std::size_t encoded_size() const override;

  void encode(Encoder& enc) const;

 private:
  // A broadcast asks for the size once per recipient; the payload is
  // immutable by the time it reaches the network, so encode once.
  // (Every encoding starts with an 8-byte session number, so 0 is free
  // as the "not yet computed" sentinel.)
  mutable std::size_t cached_size_ = 0;
};

/// The attempt message (paper figure 1, step 2). Phase 1 in the
/// two-round protocols; the three-phase-recovery baseline sends it as a
/// later phase after its explicit resolution rounds.
class AttemptPayload final : public PhasedPayload {
 public:
  explicit AttemptPayload(int phase = 1) : phase_(phase) {}

  SessionNumber session_number = 0;

  [[nodiscard]] int phase() const noexcept override { return phase_; }
  [[nodiscard]] std::string type_name() const override { return "dv.attempt"; }
  [[nodiscard]] std::size_t encoded_size() const override;

 private:
  int phase_;
};

/// Generic small payload for auxiliary rounds (the explicit recovery
/// phases of the three-phase baseline, acknowledgement rounds, ...).
class RoundPayload final : public PhasedPayload {
 public:
  RoundPayload(int phase, std::string name) : phase_(phase), name_(std::move(name)) {}

  [[nodiscard]] int phase() const noexcept override { return phase_; }
  [[nodiscard]] std::string type_name() const override { return name_; }
  [[nodiscard]] std::size_t encoded_size() const override;

 private:
  int phase_;
  std::string name_;
};

}  // namespace dynvote
