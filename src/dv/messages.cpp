#include "dv/messages.hpp"

namespace dynvote {

void InfoPayload::encode(Encoder& enc) const {
  enc.put_i64(session_number);
  enc.put_bool(has_history);
  encode_optional_session(enc, last_primary);
  enc.put_varint(ambiguous.size());
  for (const Session& s : ambiguous) s.encode(enc);
  enc.put_varint(last_formed.size());
  for (const auto& [q, session] : last_formed) {
    enc.put_process_id(q);
    session.encode(enc);
  }
  participants.encode(enc);
}

std::size_t InfoPayload::encoded_size() const {
  if (cached_size_ == 0) {
    Encoder enc;
    encode(enc);
    cached_size_ = enc.size();
  }
  return cached_size_;
}

std::size_t AttemptPayload::encoded_size() const {
  return 8;  // one put_i64(session_number)
}

std::size_t RoundPayload::encoded_size() const {
  // A phase tag and a session stamp: the resolution rounds of the
  // three-phase baseline carry only votes/acknowledgements.
  return 9;
}

}  // namespace dynvote
