#include "dv/protocol_base.hpp"

#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote {

SessionProtocolBase::SessionProtocolBase(sim::Transport& transport,
                                         ProcessId id, int max_phases)
    : ProtocolNode(transport, id), max_phases_(max_phases) {
  ensure(max_phases_ >= 0, "negative phase count");
}

SessionProtocolBase::SessionProtocolBase(sim::Simulator& sim, ProcessId id,
                                         int max_phases)
    : SessionProtocolBase(sim.transport(), id, max_phases) {}

void SessionProtocolBase::on_view(const View& view) {
  // "Set Is_Primary to FALSE" — step 1 of every session (paper fig. 1).
  leave_primary();
  session_active_ = true;
  session_view_ = view;
  current_phase_ = -1;
  rounds_used_ = 0;
  collected_.assign(static_cast<std::size_t>(max_phases_), PhaseMessages{});
  notify_view_installed(view);
  begin_session(view);
}

void SessionProtocolBase::on_message(ProcessId from,
                                     const sim::PayloadPtr& payload) {
  if (!session_active_) return;  // session already ended within this view
  auto phased = std::dynamic_pointer_cast<const PhasedPayload>(payload);
  ensure(phased != nullptr, "non-phased payload delivered to protocol");
  const int phase = phased->phase();
  ensure(phase >= 0 && phase < max_phases_, "phase out of range");
  ensure(session_view_->members.contains(from), "message from non-member");
  // FIFO channels + view gating mean no duplicates; a phase ahead of ours
  // simply waits in its bucket.
  auto [it, inserted] =
      collected_[static_cast<std::size_t>(phase)].emplace(from, std::move(phased));
  ensure(inserted, "duplicate phase message");
  try_complete_phase();
}

void SessionProtocolBase::try_complete_phase() {
  if (in_completion_) return;  // re-entrancy guard: loop below handles it
  in_completion_ = true;
  while (session_active_ && current_phase_ >= 0 &&
         current_phase_ < max_phases_ &&
         collected_[static_cast<std::size_t>(current_phase_)].size() ==
             session_view_->members.size()) {
    const int phase = current_phase_;
    on_phase_complete(phase, collected_[static_cast<std::size_t>(phase)]);
    if (current_phase_ == phase) break;  // derived didn't advance: done
  }
  in_completion_ = false;
}

void SessionProtocolBase::send_phase(
    int phase, std::shared_ptr<const PhasedPayload> payload) {
  ensure(session_active_, "send_phase outside an active session");
  ensure(payload && payload->phase() == phase, "payload/phase mismatch");
  ensure(phase == current_phase_ + 1, "phases must advance one at a time");
  current_phase_ = phase;
  ++rounds_used_;
  broadcast(std::move(payload));
  try_complete_phase();
}

void SessionProtocolBase::mark_primary(const Session& session) {
  ensure(session_active_, "mark_primary outside an active session");
  session_active_ = false;
  enter_primary(session, rounds_used_);
}

void SessionProtocolBase::abort_session(const std::string& reason) {
  ensure(session_active_, "abort_session outside an active session");
  session_active_ = false;
  log(LogLevel::kDebug, "session aborted: " + reason);
  notify_rejected(*session_view_, reason);
}

const View& SessionProtocolBase::session_view() const {
  ensure(session_view_.has_value(), "no session view");
  return *session_view_;
}

void SessionProtocolBase::on_crash() {
  leave_primary();
  session_active_ = false;
  session_view_.reset();
  collected_.clear();
  handle_crash();
}

void SessionProtocolBase::on_recover() { handle_recover(); }

}  // namespace dynvote
