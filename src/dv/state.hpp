// Persistent per-process protocol state (paper sections 4.2, 5.1, 6).
//
// Everything here except Is_Primary must survive crashes: the protocol
// writes the encoded state to stable storage before sending any message
// that depends on it (paper section 4.4). Is_Primary is volatile by
// definition — a recovering process is never primary until it forms a
// new session.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dv/session.hpp"
#include "quorum/participants.hpp"
#include "util/codec.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct ProtocolState {
  /// Session_Number: monotonically increasing (paper Lemma 1/3).
  SessionNumber session_number = 0;

  /// Last_Primary: the last session this process formed. nullopt encodes
  /// the paper's (∞, -1) — no primary known; Sub_Quorum(∞, T) is FALSE.
  std::optional<Session> last_primary;

  /// Ambiguous_Sessions: attempts made after last_primary, ascending by
  /// session number. At most one entry per distinct membership (a later
  /// attempt with the same membership overwrites the earlier).
  std::vector<AmbiguousSession> ambiguous;

  /// Last_Formed(q): the last session this process formed that q was a
  /// member of (optimized protocol, paper 5.1).
  std::map<ProcessId, Session> last_formed;

  /// W / A participant sets (paper section 6). Maintained by every
  /// protocol variant; only consulted when dynamic participants are
  /// enabled.
  ParticipantTracker participants;

  /// False after recovering from a destroyed disk: this process's
  /// negative statements ("I did not form S") can no longer be trusted
  /// by peers' learning rules, so it advertises itself as history-less.
  bool has_history = true;

  /// Initial state (paper 4.2): core members start with
  /// Last_Primary = (W0, 0), everyone else with (∞, -1).
  [[nodiscard]] static ProtocolState initial(const ProcessSet& core,
                                             ProcessId self);

  /// State after recovery from a destroyed disk (paper footnote 4).
  [[nodiscard]] static ProtocolState after_disk_loss(ProcessId self);

  [[nodiscard]] SessionNumber last_primary_number() const noexcept {
    return last_primary ? last_primary->number : kNoSessionNumber;
  }

  /// Finds the recorded ambiguous session with the given number, if any.
  /// Session numbers are unique within one process's list (Lemma 1).
  [[nodiscard]] AmbiguousSession* find_ambiguous(SessionNumber number);
  [[nodiscard]] const AmbiguousSession* find_ambiguous(
      SessionNumber number) const;

  /// Records an attempt (paper figure 1 / figure 3, step 2): appends
  /// (members, number), overwriting an existing attempt with the same
  /// membership, keeping ascending number order.
  void record_attempt(const Session& session, ProcessId self);

  /// Form step (paper figure 1 / figure 3, step 3): adopt `session` as
  /// Last_Primary, clear ambiguous sessions, refresh Last_Formed for all
  /// members, admit pending participants.
  void apply_form(const Session& session);

  /// Resolution-rule adoption (paper figure 2): learned that `session`
  /// (one of our ambiguous attempts) was formed by some member. Adopt it
  /// as Last_Primary and drop every ambiguous session it supersedes.
  void adopt_formed(const Session& session);

  void encode(Encoder& enc) const;
  [[nodiscard]] static ProtocolState decode(Decoder& dec);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ProtocolState&, const ProtocolState&) = default;
};

}  // namespace dynvote
