// Persistent per-process protocol state (paper sections 4.2, 5.1, 6).
//
// Everything here except Is_Primary must survive crashes: the protocol
// writes the encoded state to stable storage before sending any message
// that depends on it (paper section 4.4). Is_Primary is volatile by
// definition — a recovering process is never primary until it forms a
// new session.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dv/session.hpp"
#include "quorum/participants.hpp"
#include "util/codec.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct ProtocolState {
  /// Session_Number: monotonically increasing (paper Lemma 1/3).
  SessionNumber session_number = 0;

  /// Last_Primary: the last session this process formed. nullopt encodes
  /// the paper's (∞, -1) — no primary known; Sub_Quorum(∞, T) is FALSE.
  std::optional<Session> last_primary;

  /// Ambiguous_Sessions: attempts made after last_primary, ascending by
  /// session number. At most one entry per distinct membership (a later
  /// attempt with the same membership overwrites the earlier).
  std::vector<AmbiguousSession> ambiguous;

  /// Last_Formed(q): the last session this process formed that q was a
  /// member of (optimized protocol, paper 5.1).
  std::map<ProcessId, Session> last_formed;

  /// W / A participant sets (paper section 6). Maintained by every
  /// protocol variant; only consulted when dynamic participants are
  /// enabled.
  ParticipantTracker participants;

  /// False after recovering from a destroyed disk: this process's
  /// negative statements ("I did not form S") can no longer be trusted
  /// by peers' learning rules, so it advertises itself as history-less.
  bool has_history = true;

  /// Initial state (paper 4.2): core members start with
  /// Last_Primary = (W0, 0), everyone else with (∞, -1).
  [[nodiscard]] static ProtocolState initial(const ProcessSet& core,
                                             ProcessId self);

  /// State after recovery from a destroyed disk (paper footnote 4).
  [[nodiscard]] static ProtocolState after_disk_loss(ProcessId self);

  [[nodiscard]] SessionNumber last_primary_number() const noexcept {
    return last_primary ? last_primary->number : kNoSessionNumber;
  }

  /// Finds the recorded ambiguous session with the given number, if any.
  /// Session numbers are unique within one process's list (Lemma 1).
  [[nodiscard]] AmbiguousSession* find_ambiguous(SessionNumber number);
  [[nodiscard]] const AmbiguousSession* find_ambiguous(
      SessionNumber number) const;

  /// Records an attempt (paper figure 1 / figure 3, step 2): appends
  /// (members, number), overwriting an existing attempt with the same
  /// membership, keeping ascending number order.
  void record_attempt(const Session& session, ProcessId self);

  /// Form step (paper figure 1 / figure 3, step 3): adopt `session` as
  /// Last_Primary, clear ambiguous sessions, refresh Last_Formed for all
  /// members, admit pending participants.
  void apply_form(const Session& session);

  /// Resolution-rule adoption (paper figure 2): learned that `session`
  /// (one of our ambiguous attempts) was formed by some member. Adopt it
  /// as Last_Primary and drop every ambiguous session it supersedes.
  void adopt_formed(const Session& session);

  void encode(Encoder& enc) const;
  [[nodiscard]] static ProtocolState decode(Decoder& dec);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ProtocolState&, const ProtocolState&) = default;
};

/// One delta record of the persistence WAL (dv/wal.hpp). Each kind
/// mirrors exactly one mutation of ProtocolState, so a step that changed
/// the state is durably described by the (ordered) deltas it staged, and
/// `apply` replays it: replay(checkpoint, log) must always reproduce the
/// live state — the cross-check in WalPersistence asserts it does.
enum class StateDeltaKind : std::uint8_t {
  /// Raw Session_Number assignment (rarely needed alone: kAttempt and
  /// kForm both carry the number of the session they install).
  kSessionNumber = 1,
  /// Attempt step: Session_Number := S.N, record_attempt(S), then the
  /// deliberately-unsound truncation of DvConfig::ambiguous_record_limit
  /// if the writer had one configured.
  kAttempt = 2,
  /// Form step: Session_Number := S.N, apply_form(S). S is the *recorded*
  /// session (baselines may pin a different membership than the view).
  kForm = 3,
  /// Resolution-rule adoption (paper figure 2): adopt_formed(S).
  kAdopt = 4,
  /// Learning rule outcome (paper 5.2): S.A[q] := k for the ambiguous
  /// session with the given number.
  kKnowledge = 5,
  /// Resolution-rule deletions: drop the ambiguous sessions with these
  /// numbers ("formed by nobody").
  kEraseAmbiguous = 6,
  /// Attempt-step participant merge (paper section 6): the post-merge
  /// W / A tracker (small: two process sets).
  kParticipants = 7,
};

struct StateDelta {
  StateDeltaKind kind = StateDeltaKind::kSessionNumber;
  Session session;                      // kAttempt / kForm / kAdopt
  SessionNumber number = 0;             // kSessionNumber / kKnowledge
  ProcessId subject;                    // kKnowledge
  FormedKnowledge knowledge = FormedKnowledge::kUnknown;  // kKnowledge
  std::vector<SessionNumber> numbers;   // kEraseAmbiguous
  ParticipantTracker participants;      // kParticipants
  std::uint64_t record_limit = 0;       // kAttempt (0 = unlimited)

  [[nodiscard]] static StateDelta session_number(SessionNumber n);
  [[nodiscard]] static StateDelta attempt(Session s,
                                          std::uint64_t record_limit);
  [[nodiscard]] static StateDelta form(Session s);
  [[nodiscard]] static StateDelta adopt(Session s);
  [[nodiscard]] static StateDelta learned(SessionNumber n, ProcessId q,
                                          FormedKnowledge k);
  [[nodiscard]] static StateDelta erase_ambiguous(
      std::vector<SessionNumber> numbers);
  [[nodiscard]] static StateDelta merge_participants(ParticipantTracker t);

  /// Replays this delta against `state`. `self` is the replaying process
  /// (attempt records initialize their knowledge array around it).
  void apply(ProtocolState& state, ProcessId self) const;

  void encode(Encoder& enc) const;
  [[nodiscard]] static StateDelta decode(Decoder& dec);

  friend bool operator==(const StateDelta&, const StateDelta&) = default;
};

/// Versioned checkpoint record: the full snapshot plus the WAL sequence
/// number it covers. Distinguished from a legacy raw ProtocolState
/// snapshot by its leading magic byte, so recovery reads both formats.
void encode_checkpoint(Encoder& enc, const ProtocolState& state,
                       std::uint64_t covers_lsn);

struct CheckpointRecord {
  ProtocolState state;
  /// Log records with lsn <= covers_lsn are already folded into `state`
  /// (a crash between checkpoint write and log truncation leaves them in
  /// the log; replay must skip them).
  std::uint64_t covers_lsn = 0;
};

/// Decodes either a checkpoint record or a legacy raw snapshot (which
/// covers nothing, lsn 0).
[[nodiscard]] CheckpointRecord decode_checkpoint(
    const std::vector<std::uint8_t>& bytes);

}  // namespace dynvote
