// ProtocolNode: the common face of every protocol implementation.
//
// Both protocol shapes in the library — the symmetric phase-broadcast
// protocols (SessionProtocolBase) and the coordinator-based centralized
// variant — expose the same surface: Is_Primary state, the current
// primary session, and observer/listener wiring. The harness, the
// service facade and the applications depend only on this class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dv/observer.hpp"
#include "dv/session.hpp"
#include "membership/view.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace dynvote {

class ProtocolNode : public sim::Node {
 public:
  ProtocolNode(sim::Simulator& sim, ProcessId id) : sim::Node(sim, id) {}

  void set_observer(ProtocolObserver* observer) noexcept {
    observer_ = observer;
  }
  void set_primary_listener(PrimaryListener* listener) noexcept {
    listener_ = listener;
  }

  /// Is_Primary: true iff this process's current membership is the
  /// primary component.
  [[nodiscard]] bool is_primary() const noexcept { return primary_.has_value(); }

  /// The session of the primary component this process is currently in.
  [[nodiscard]] const std::optional<Session>& primary_session() const noexcept {
    return primary_;
  }

  /// Number of sessions this node formed over its lifetime.
  [[nodiscard]] std::uint64_t formed_count() const noexcept {
    return formed_count_;
  }

 protected:
  /// Records entry into a freshly formed primary and notifies the
  /// observer (with the session's communication-round count) and the
  /// application listener.
  void enter_primary(const Session& session, int rounds) {
    primary_ = session;
    ++formed_count_;
    log(LogLevel::kInfo, "FORMED primary " + session.to_string());
    trace().record({now(), obs::TraceEventKind::kSessionFormed, id(),
                    ProcessId{}, session.number,
                    static_cast<std::uint64_t>(rounds), session.members,
                    {}});
    if (observer_) observer_->on_formed(now(), id(), session, rounds);
    if (listener_) listener_->on_primary_formed(session);
  }

  /// Reports loss of primary status (view change / crash) exactly once.
  void leave_primary() {
    if (!primary_) return;
    primary_.reset();
    trace().record({now(), obs::TraceEventKind::kPrimaryLost, id(),
                    ProcessId{}, 0, 0, {}, {}});
    if (observer_) observer_->on_primary_lost(now(), id());
    if (listener_) listener_->on_primary_lost();
  }

  void notify_view_installed(const View& view) {
    trace().record({now(), obs::TraceEventKind::kViewInstalled, id(),
                    ProcessId{}, static_cast<std::int64_t>(view.id.value()), 0,
                    view.members, {}});
    if (observer_) observer_->on_view_installed(now(), id(), view);
  }
  void notify_attempt(const Session& session) {
    trace().record({now(), obs::TraceEventKind::kSessionAttempt, id(),
                    ProcessId{}, session.number, 0, session.members, {}});
    if (observer_) observer_->on_attempt(now(), id(), session);
  }
  void notify_rejected(const View& view, const std::string& reason) {
    trace().record({now(), obs::TraceEventKind::kSessionAbort, id(),
                    ProcessId{}, static_cast<std::int64_t>(view.id.value()), 0,
                    view.members, reason});
    if (observer_) observer_->on_session_rejected(now(), id(), view, reason);
  }

  [[nodiscard]] ProtocolObserver* observer() const noexcept { return observer_; }

 private:
  ProtocolObserver* observer_ = nullptr;
  PrimaryListener* listener_ = nullptr;
  std::optional<Session> primary_;
  std::uint64_t formed_count_ = 0;
};

}  // namespace dynvote
