// ProtocolNode: the common face of every protocol implementation.
//
// Both protocol shapes in the library — the symmetric phase-broadcast
// protocols (SessionProtocolBase) and the coordinator-based centralized
// variant — expose the same surface: Is_Primary state, the current
// primary session, and observer/listener wiring. The harness, the
// service facade and the applications depend only on this class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dv/observer.hpp"
#include "dv/session.hpp"
#include "membership/view.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"
#include "util/codec.hpp"

namespace dynvote {

class ProtocolNode : public sim::Node {
 public:
  ProtocolNode(sim::Transport& transport, ProcessId id)
      : sim::Node(transport, id) {}
  /// Convenience for simulator-driven code: Node resolves the
  /// simulator's transport.
  ProtocolNode(sim::Simulator& sim, ProcessId id) : sim::Node(sim, id) {}

  void set_observer(ProtocolObserver* observer) noexcept {
    observer_ = observer;
  }
  void set_primary_listener(PrimaryListener* listener) noexcept {
    listener_ = listener;
  }

  /// Is_Primary: true iff this process's current membership is the
  /// primary component.
  [[nodiscard]] bool is_primary() const noexcept { return primary_.has_value(); }

  /// The session of the primary component this process is currently in.
  [[nodiscard]] const std::optional<Session>& primary_session() const noexcept {
    return primary_;
  }

  /// Number of sessions this node formed over its lifetime.
  [[nodiscard]] std::uint64_t formed_count() const noexcept {
    return formed_count_;
  }

 protected:
  /// Records entry into a freshly formed primary and notifies the
  /// observer (with the session's communication-round count) and the
  /// application listener. The trace event cites the session's attempt
  /// (or, for zero-round protocols, the view install) as its cause.
  void enter_primary(const Session& session, int rounds) {
    primary_ = session;
    ++formed_count_;
    log(LogLevel::kInfo, "FORMED primary " + session.to_string());
    obs::TraceEvent event;
    event.time = now();
    event.kind = obs::TraceEventKind::kSessionFormed;
    event.a = id();
    event.number = session.number;
    event.value = static_cast<std::uint64_t>(rounds);
    event.members = session.members;
    event.lamport = lamport_tick();
    event.cause = session_cause_eid();
    formed_eid_ = trace().record(std::move(event));
    if (observer_) observer_->on_formed(now(), id(), session, rounds);
    if (listener_) listener_->on_primary_formed(session);
  }

  /// Reports loss of primary status (view change / crash) exactly once.
  /// The trace event cites the formation it ends.
  void leave_primary() {
    if (!primary_) return;
    primary_.reset();
    obs::TraceEvent event;
    event.time = now();
    event.kind = obs::TraceEventKind::kPrimaryLost;
    event.a = id();
    event.lamport = lamport_tick();
    event.cause = formed_eid_;
    formed_eid_ = 0;
    trace().record(std::move(event));
    if (observer_) observer_->on_primary_lost(now(), id());
    if (listener_) listener_->on_primary_lost();
  }

  /// Records the view install, citing the topology change that produced
  /// it; resets the per-session causal chain (a new view starts a new
  /// session in every protocol).
  void notify_view_installed(const View& view) {
    obs::TraceEvent event;
    event.time = now();
    event.kind = obs::TraceEventKind::kViewInstalled;
    event.a = id();
    event.number = static_cast<std::int64_t>(view.id.value());
    event.members = view.members;
    event.lamport = lamport_tick();
    event.cause = last_topology_eid();
    view_eid_ = trace().record(std::move(event));
    attempt_eid_ = 0;
    if (observer_) observer_->on_view_installed(now(), id(), view);
  }
  void notify_attempt(const Session& session) {
    obs::TraceEvent event;
    event.time = now();
    event.kind = obs::TraceEventKind::kSessionAttempt;
    event.a = id();
    event.number = session.number;
    event.members = session.members;
    event.lamport = lamport_tick();
    event.cause = view_eid_;
    attempt_eid_ = trace().record(std::move(event));
    if (observer_) observer_->on_attempt(now(), id(), session);
  }
  void notify_rejected(const View& view, const std::string& reason) {
    obs::TraceEvent event;
    event.time = now();
    event.kind = obs::TraceEventKind::kSessionAbort;
    event.a = id();
    event.number = static_cast<std::int64_t>(view.id.value());
    event.members = view.members;
    event.detail = reason;
    event.lamport = lamport_tick();
    event.cause = session_cause_eid();
    trace().record(std::move(event));
    if (observer_) observer_->on_session_rejected(now(), id(), view, reason);
  }

  /// Causal parent for events of the current session: the attempt if one
  /// was recorded in this view, else the view install itself.
  [[nodiscard]] std::uint64_t session_cause_eid() const noexcept {
    return attempt_eid_ != 0 ? attempt_eid_ : view_eid_;
  }
  /// Event id of the current view's install record (0 before the first).
  [[nodiscard]] std::uint64_t current_view_eid() const noexcept {
    return view_eid_;
  }

  [[nodiscard]] ProtocolObserver* observer() const noexcept { return observer_; }

  /// Scratch encoder for the persist path. Returned cleared; the buffer
  /// capacity persists across calls, so a protocol that re-encodes its
  /// state on every step stops paying one allocation per stable write.
  [[nodiscard]] Encoder& scratch_encoder() noexcept {
    scratch_.clear();
    return scratch_;
  }

 private:
  Encoder scratch_;
  ProtocolObserver* observer_ = nullptr;
  PrimaryListener* listener_ = nullptr;
  std::optional<Session> primary_;
  std::uint64_t formed_count_ = 0;
  std::uint64_t view_eid_ = 0;     // eid of the latest kViewInstalled
  std::uint64_t attempt_eid_ = 0;  // eid of this session's kSessionAttempt
  std::uint64_t formed_eid_ = 0;   // eid of the live kSessionFormed
};

}  // namespace dynvote
