#include "dv/optimized_protocol.hpp"

#include <algorithm>
#include <set>

#include "util/ensure.hpp"

namespace dynvote {

namespace {

bool contains_session(const std::vector<Session>& list, const Session& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

}  // namespace

void OptimizedDvProtocol::pre_decision_update(const InfoBySender& infos) {
  // ---- Learning rules (paper section 5.2) --------------------------------
  std::set<SessionNumber> formed_by_nobody;
  for (const auto& [q, info] : infos) {
    if (q == id()) continue;
    // A peer that lost its disk can no longer truthfully assert "I did
    // not form S"; skip all negative inference from it. (Positive
    // Last_Formed entries it cannot have either.)
    if (!info->has_history) continue;

    const auto lf_it = info->last_formed.find(id());
    const bool has_entry = lf_it != info->last_formed.end();

    for (AmbiguousSession& amb : state_.ambiguous) {
      if (!amb.session.members.contains(q)) continue;
      if (has_entry && lf_it->second.number == amb.session.number) {
        // Last_Formed_q(p).N = S.N  =>  q formed S.
        ensure(lf_it->second.members == amb.session.members,
               "formed session number collision (Lemma 10 violated)");
        if (amb.knowledge_about(q) != FormedKnowledge::kFormed) {
          amb.set_knowledge(q, FormedKnowledge::kFormed);
          wal_.stage(StateDelta::learned(amb.session.number, q,
                                         FormedKnowledge::kFormed));
        }
      } else if (!has_entry || lf_it->second.number < amb.session.number) {
        // Last_Formed_q(p).N < S.N  =>  q did not form S. (No entry at
        // all means q never formed any session containing us.)
        if (amb.knowledge_about(q) != FormedKnowledge::kNotFormed) {
          amb.set_knowledge(q, FormedKnowledge::kNotFormed);
          wal_.stage(StateDelta::learned(amb.session.number, q,
                                         FormedKnowledge::kNotFormed));
        }
      }
      // Last_Formed_q(p).N > S.N gives no direct verdict on S here; the
      // later formed session is itself one of our ambiguous attempts
      // (paper Lemma 2) and resolves S by adoption below.

      // Second learning rule: q's Last_Primary predates S and q does not
      // hold S ambiguous  =>  S was formed by no member at all (either q
      // never attempted S — then nobody can have formed it — or q
      // already resolved it as unformed).
      const SessionNumber q_lp = info->last_primary
                                     ? info->last_primary->number
                                     : kNoSessionNumber;
      const bool q_lp_predates =
          q_lp < amb.session.number ||
          (q_lp == amb.session.number && info->last_primary &&
           info->last_primary->members != amb.session.members);
      if (q_lp_predates && !contains_session(info->ambiguous, amb.session)) {
        formed_by_nobody.insert(amb.session.number);
      }
    }
  }

  // ---- Resolution rules (paper figure 2) -----------------------------------
  // Adoption: the highest-numbered attempt known formed by some member
  // becomes Last_Primary ("the other members behave as if they also
  // formed this session").
  const AmbiguousSession* to_adopt = nullptr;
  for (const AmbiguousSession& amb : state_.ambiguous) {
    if (amb.known_formed_by_someone()) {
      ensure(!formed_by_nobody.contains(amb.session.number),
             "session both formed and formed-by-nobody");
      if (!to_adopt || amb.session.number > to_adopt->session.number) {
        to_adopt = &amb;
      }
    }
  }
  if (to_adopt) {
    const Session adopted = to_adopt->session;  // copy before mutating list
    log(LogLevel::kDebug, "resolution: adopting formed " + adopted.to_string());
    // Close the lifetime span of every record the adoption resolves: the
    // adopted session itself plus everything it supersedes (adopt_formed
    // erases all records with number <= adopted.number).
    for (const AmbiguousSession& amb : state_.ambiguous) {
      if (amb.session.number > adopted.number) continue;
      if (amb.session.number == adopted.number) {
        record_ambiguity_resolution(obs::TraceEventKind::kAmbiguityAdopted,
                                    amb.session, "fig2-adoption");
      } else {
        record_ambiguity_resolution(obs::TraceEventKind::kAmbiguityResolved,
                                    amb.session, "fig2-adoption-supersedes");
      }
    }
    state_.adopt_formed(adopted);
    wal_.stage(StateDelta::adopt(adopted));
    ++gc_adoptions_;
  }

  // Deletion: sessions formed by nobody are no constraint on anything.
  const std::size_t before = state_.ambiguous.size();
  std::vector<SessionNumber> deleted;
  std::erase_if(state_.ambiguous, [&](const AmbiguousSession& amb) {
    if (amb.known_unformed_by_all()) {
      record_ambiguity_resolution(obs::TraceEventKind::kAmbiguityResolved,
                                  amb.session, "5.2-rule1-unformed-by-all");
      deleted.push_back(amb.session.number);
      return true;
    }
    if (formed_by_nobody.contains(amb.session.number)) {
      record_ambiguity_resolution(obs::TraceEventKind::kAmbiguityResolved,
                                  amb.session, "5.2-rule2-formed-by-nobody");
      deleted.push_back(amb.session.number);
      return true;
    }
    return false;
  });
  if (!deleted.empty()) {
    wal_.stage(StateDelta::erase_ambiguous(std::move(deleted)));
  }
  gc_deletions_ += before - state_.ambiguous.size();
  if (to_adopt != nullptr || before != state_.ambiguous.size()) {
    record_ambiguity_level();
  }
}

}  // namespace dynvote
