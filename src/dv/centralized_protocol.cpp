#include "dv/centralized_protocol.hpp"

#include "sim/simulator.hpp"
#include "sim/stable_storage.hpp"
#include "util/ensure.hpp"

namespace dynvote {

namespace {
constexpr const char* kStateKey = "dv.centralized.state";
}  // namespace

std::string CentralizedPayload::type_name() const {
  switch (hop) {
    case Hop::kInfo: return "dvc.info";
    case Hop::kAttempt: return "dvc.attempt";
    case Hop::kAck: return "dvc.ack";
    case Hop::kCommit: return "dvc.commit";
  }
  return "dvc.?";
}

std::size_t CentralizedPayload::encoded_size() const {
  if (hop == Hop::kInfo) return 1 + info.encoded_size();
  return 1 + 8;  // hop tag + session number
}

CentralizedDvProtocol::CentralizedDvProtocol(sim::Simulator& sim, ProcessId id,
                                             DvConfig config)
    : CentralizedDvProtocol(sim.transport(), id, std::move(config)) {}

CentralizedDvProtocol::CentralizedDvProtocol(sim::Transport& transport,
                                             ProcessId id, DvConfig config)
    : ProtocolNode(transport, id),
      state_(ProtocolState::initial(config.core, id)),
      config_(std::move(config)),
      wal_(storage(),
           config_.registry != nullptr ? config_.registry : &metrics(),
           kStateKey, id, config_.persistence) {
  wal_.checkpoint(state_);
}

ProcessId CentralizedDvProtocol::coordinator_of(const View& view) {
  ensure(!view.members.empty(), "empty view has no coordinator");
  return view.members.members().front();
}

bool CentralizedDvProtocol::coordinating() const {
  return current_view() && coordinator_of(*current_view()) == id();
}

void CentralizedDvProtocol::persist() { wal_.commit(state_); }

void CentralizedDvProtocol::on_view(const View& view) {
  leave_primary();
  session_active_ = true;
  collected_infos_.clear();
  acked_ = ProcessSet{};
  attempted_this_session_ = false;
  notify_view_installed(view);

  // Hop 1: everyone (the coordinator included, via loopback) reports its
  // state to the coordinator.
  auto msg = std::make_shared<CentralizedPayload>();
  msg->hop = CentralizedPayload::Hop::kInfo;
  msg->info.session_number = state_.session_number;
  msg->info.has_history = state_.has_history;
  msg->info.last_primary = state_.last_primary;
  for (const auto& a : state_.ambiguous) msg->info.ambiguous.push_back(a.session);
  if (config_.dynamic_participants) msg->info.participants = state_.participants;
  send(coordinator_of(view), std::move(msg));
}

void CentralizedDvProtocol::on_message(ProcessId from,
                                       const sim::PayloadPtr& payload) {
  if (!session_active_) return;
  const auto* msg = dynamic_cast<const CentralizedPayload*>(payload.get());
  ensure(msg != nullptr, "unexpected payload type");
  switch (msg->hop) {
    case CentralizedPayload::Hop::kInfo:
      ensure(coordinating(), "info hop reached a non-coordinator");
      collected_infos_.emplace(from, msg->info);
      if (collected_infos_.size() == current_view()->members.size()) {
        run_coordinator_decision();
      }
      return;
    case CentralizedPayload::Hop::kAttempt:
      handle_attempt(*msg);
      return;
    case CentralizedPayload::Hop::kAck:
      ensure(coordinating(), "ack hop reached a non-coordinator");
      acked_.insert(from);
      maybe_commit();
      return;
    case CentralizedPayload::Hop::kCommit:
      handle_commit(*msg);
      return;
  }
}

void CentralizedDvProtocol::run_coordinator_decision() {
  const ProcessSet& M = current_view()->members;
  InfoBySender infos;
  for (const auto& [p, info] : collected_infos_) infos.emplace(p, &info);

  if (config_.dynamic_participants) {
    std::vector<const ParticipantTracker*> peers;
    for (const auto& [p, info] : infos) peers.push_back(&info->participants);
    const ParticipantTracker before = state_.participants;
    state_.participants.merge_attempt_step(peers);
    if (state_.participants != before) {
      wal_.stage(StateDelta::merge_participants(state_.participants));
    }
  }

  const StepAggregates agg = aggregate_step1(infos);
  const QuorumCalculus calc =
      config_.dynamic_participants
          ? QuorumCalculus(state_.participants.admitted(),
                           state_.participants.all_participants(),
                           config_.min_quorum, config_.linear_tie_break)
          : QuorumCalculus(config_.core, config_.min_quorum,
                           config_.linear_tie_break);
  const Eligibility verdict = evaluate_eligibility(calc, agg, M);
  if (!verdict.eligible) {
    persist();
    session_active_ = false;
    notify_rejected(*current_view(), verdict.reason);
    return;
  }

  // Hop 2: the coordinator records its own attempt first, then hands
  // every member the decision.
  state_.session_number = agg.max_session + 1;
  const Session session{M, state_.session_number};
  state_.record_attempt(session, id());
  wal_.stage(StateDelta::attempt(session, /*record_limit=*/0));
  persist();
  attempted_this_session_ = true;
  notify_attempt(session);

  auto attempt = std::make_shared<CentralizedPayload>();
  attempt->hop = CentralizedPayload::Hop::kAttempt;
  attempt->session_number = state_.session_number;
  for (ProcessId member : M) {
    if (member != id()) send(member, attempt);
  }
  // The coordinator's own ack is implicit — and may already complete the
  // round (it always does in a singleton view).
  acked_.insert(id());
  maybe_commit();
}

void CentralizedDvProtocol::maybe_commit() {
  if (!session_active_ || !coordinating()) return;
  if (acked_.size() != current_view()->members.size()) return;
  // Hop 4: everyone's attempt is durable; commit.
  const SessionNumber number = state_.session_number;
  form(number);
  auto commit = std::make_shared<CentralizedPayload>();
  commit->hop = CentralizedPayload::Hop::kCommit;
  commit->session_number = number;
  for (ProcessId member : current_view()->members) {
    if (member != id()) send(member, commit);
  }
}

void CentralizedDvProtocol::handle_attempt(const CentralizedPayload& msg) {
  ensure(!coordinating(), "attempt hop reached the coordinator");
  state_.session_number = msg.session_number;
  const Session session{current_view()->members, msg.session_number};
  state_.record_attempt(session, id());
  wal_.stage(StateDelta::attempt(session, /*record_limit=*/0));
  persist();  // durable BEFORE the ack: the whole point of the hop
  attempted_this_session_ = true;
  notify_attempt(session);

  auto ack = std::make_shared<CentralizedPayload>();
  ack->hop = CentralizedPayload::Hop::kAck;
  ack->session_number = msg.session_number;
  send(coordinator_of(*current_view()), std::move(ack));
}

void CentralizedDvProtocol::handle_commit(const CentralizedPayload& msg) {
  ensure(attempted_this_session_, "commit without a recorded attempt");
  ensure(msg.session_number == state_.session_number,
         "commit session number mismatch");
  form(msg.session_number);
}

void CentralizedDvProtocol::form(SessionNumber number) {
  const Session session{current_view()->members, number};
  state_.apply_form(session);
  wal_.stage(StateDelta::form(session));
  persist();
  session_active_ = false;
  // 4 hops of latency; reported as 4 rounds for the cost comparisons.
  enter_primary(session, 4);
}

void CentralizedDvProtocol::on_crash() {
  leave_primary();
  session_active_ = false;
  collected_infos_.clear();
  acked_ = ProcessSet{};
}

void CentralizedDvProtocol::on_recover() {
  if (std::optional<ProtocolState> recovered = wal_.recover()) {
    state_ = std::move(*recovered);
  } else {
    state_ = ProtocolState::after_disk_loss(id());
    wal_.checkpoint(state_);
  }
}

}  // namespace dynvote
