#include "dv/service.hpp"

#include "baselines/blocking_dynamic.hpp"
#include "baselines/hybrid_jm.hpp"
#include "baselines/last_attempt_only.hpp"
#include "baselines/naive_dynamic.hpp"
#include "baselines/static_majority.hpp"
#include "baselines/three_phase_recovery.hpp"
#include "dv/centralized_protocol.hpp"
#include "dv/optimized_protocol.hpp"
#include "util/ensure.hpp"

namespace dynvote {

const char* to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kBasic: return "dv-basic";
    case ProtocolKind::kOptimized: return "dv-optimized";
    case ProtocolKind::kCentralized: return "dv-centralized";
    case ProtocolKind::kStaticMajority: return "static-majority";
    case ProtocolKind::kNaiveDynamic: return "naive-dynamic";
    case ProtocolKind::kLastAttemptOnly: return "last-attempt-only";
    case ProtocolKind::kBlockingDynamic: return "blocking-dynamic";
    case ProtocolKind::kHybridJm: return "hybrid-jm";
    case ProtocolKind::kThreePhaseRecovery: return "3phase-recovery";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kBasic,
      ProtocolKind::kOptimized,
      ProtocolKind::kCentralized,
      ProtocolKind::kStaticMajority,
      ProtocolKind::kNaiveDynamic,
      ProtocolKind::kLastAttemptOnly,
      ProtocolKind::kBlockingDynamic,
      ProtocolKind::kHybridJm,
      ProtocolKind::kThreePhaseRecovery,
  };
  return kinds;
}

bool is_consistent_protocol(ProtocolKind kind) noexcept {
  return kind != ProtocolKind::kNaiveDynamic &&
         kind != ProtocolKind::kLastAttemptOnly;
}

std::unique_ptr<ProtocolNode> make_protocol(ProtocolKind kind,
                                            sim::Transport& transport,
                                            ProcessId id, DvConfig config) {
  switch (kind) {
    case ProtocolKind::kBasic:
      return std::make_unique<BasicDvProtocol>(transport, id,
                                               std::move(config));
    case ProtocolKind::kOptimized:
      return std::make_unique<OptimizedDvProtocol>(transport, id,
                                                   std::move(config));
    case ProtocolKind::kCentralized:
      return std::make_unique<CentralizedDvProtocol>(transport, id,
                                                     std::move(config));
    case ProtocolKind::kStaticMajority:
      return std::make_unique<StaticMajorityProtocol>(
          transport, id, StaticMajorityConfig{config.core, false});
    case ProtocolKind::kNaiveDynamic:
      return std::make_unique<NaiveDynamicProtocol>(transport, id, std::move(config));
    case ProtocolKind::kLastAttemptOnly:
      return std::make_unique<LastAttemptOnlyProtocol>(transport, id,
                                                       std::move(config));
    case ProtocolKind::kBlockingDynamic:
      return std::make_unique<BlockingDynamicProtocol>(transport, id,
                                                       std::move(config));
    case ProtocolKind::kHybridJm:
      return std::make_unique<HybridJmProtocol>(transport, id,
                                                  std::move(config));
    case ProtocolKind::kThreePhaseRecovery:
      return std::make_unique<ThreePhaseRecoveryProtocol>(transport, id,
                                                          std::move(config));
  }
  ensure(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace dynvote
