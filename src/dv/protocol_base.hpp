// SessionProtocolBase: the shared session lifecycle of the symmetric
// (all-to-all broadcast) protocols.
//
// Every symmetric protocol in this library (the paper's protocols and
// five of the six baselines) runs in *sessions* driven by membership
// views:
//
//   * a new view aborts any session in progress and starts a fresh one
//     (paper section 4: "If a process receives a membership message in
//     the course of a session, it aborts the session and invokes a new
//     session");
//   * a session proceeds in numbered phases; in each phase the process
//     broadcasts one message to all view members (itself included) and
//     waits to receive the phase message from *all* members;
//   * a phase message from a fast member can overtake a slow member's
//     earlier-phase message (channels are FIFO per pair, not globally),
//     so arrivals are bucketed per phase.
//
// Concrete protocols implement begin_session (send the phase-0 message)
// and on_phase_complete (decide: advance, form, or abort).
//
// The coordinator-based centralized variant (paper 4.4) does not fit the
// broadcast-phase shape and implements ProtocolNode directly.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dv/messages.hpp"
#include "dv/observer.hpp"
#include "dv/protocol_node.hpp"
#include "util/ids.hpp"

namespace dynvote {

class SessionProtocolBase : public ProtocolNode {
 public:
  /// Collected messages of one phase: sender -> payload.
  using PhaseMessages = std::map<ProcessId, std::shared_ptr<const PhasedPayload>>;

 protected:
  SessionProtocolBase(sim::Transport& transport, ProcessId id, int max_phases);
  SessionProtocolBase(sim::Simulator& sim, ProcessId id, int max_phases);

  // -- Node hooks (final: the lifecycle is owned here) ----------------------
  void on_view(const View& view) final;
  void on_message(ProcessId from, const sim::PayloadPtr& payload) final;
  void on_crash() final;
  void on_recover() final;

  // -- derived-protocol interface -------------------------------------------

  /// A session started for `view`; send the phase-0 broadcast (or decide
  /// locally and call mark_primary / abort_session for 0-round
  /// protocols).
  virtual void begin_session(const View& view) = 0;

  /// All members' messages for `phase` have arrived. The implementation
  /// must either advance (send_phase), finish (mark_primary), or stop
  /// (abort_session); doing nothing ends the session silently.
  virtual void on_phase_complete(int phase, const PhaseMessages& messages) = 0;

  /// Volatile-state reset on crash / persistent-state reload on recovery.
  virtual void handle_crash() {}
  virtual void handle_recover() {}

  // -- helpers for derived protocols ------------------------------------------

  /// Broadcasts `payload` (whose phase() must equal `phase`) to every
  /// view member and starts collecting that phase.
  void send_phase(int phase, std::shared_ptr<const PhasedPayload> payload);

  /// Ends the session successfully: Is_Primary := true for `session`.
  void mark_primary(const Session& session);

  /// Ends the session: the view is not an eligible quorum.
  void abort_session(const std::string& reason);

  /// Rounds of communication used so far in the current session.
  [[nodiscard]] int rounds_used() const noexcept { return rounds_used_; }

  [[nodiscard]] const View& session_view() const;
  [[nodiscard]] bool session_active() const noexcept { return session_active_; }

 private:
  void try_complete_phase();

  int max_phases_;
  bool session_active_ = false;
  std::optional<View> session_view_;
  int current_phase_ = -1;
  int rounds_used_ = 0;
  bool in_completion_ = false;
  std::vector<PhaseMessages> collected_;
};

}  // namespace dynvote
