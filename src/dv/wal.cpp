#include "dv/wal.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/ensure.hpp"

namespace dynvote {

WalPersistence::WalPersistence(sim::StableStorage& storage,
                               obs::MetricsRegistry* metrics,
                               std::string_view key_prefix, ProcessId self,
                               PersistenceOptions options)
    : storage_(storage),
      options_(options),
      self_(self),
      ckpt_key_(storage.intern(key_prefix)),
      wal_key_(storage.intern(std::string(key_prefix) + ".wal")) {
  if (metrics != nullptr) {
    wal_appends_ = &metrics->counter("dv.storage.wal_appends");
    wal_bytes_ = &metrics->counter("dv.storage.wal_bytes");
    checkpoints_ = &metrics->counter("dv.storage.checkpoints");
    checkpoint_bytes_ = &metrics->counter("dv.storage.checkpoint_bytes");
    snapshots_ = &metrics->counter("dv.storage.snapshots");
    snapshot_bytes_ = &metrics->counter("dv.storage.snapshot_bytes");
    persist_calls_ = &metrics->counter("dv.storage.persists");
  }
}

void WalPersistence::stage(StateDelta delta) {
  if (options_.mode != PersistenceMode::kWal) return;
  pending_.push_back(std::move(delta));
}

void WalPersistence::commit(const ProtocolState& state) {
  ++persists_;
  if (persist_calls_ != nullptr) persist_calls_->increment();

  if (options_.mode == PersistenceMode::kSnapshot) {
    write_snapshot(state);
    if (options_.cross_check) verify_cross_check(state);
    return;
  }

  if (!pending_.empty()) {
    scratch_.clear();
    scratch_.put_varint(next_lsn_);
    scratch_.put_varint(pending_.size());
    for (const StateDelta& delta : pending_) delta.encode(scratch_);
    storage_.append(wal_key_, scratch_.bytes().data(), scratch_.size());
    ++next_lsn_;
    pending_.clear();
    if (wal_appends_ != nullptr) {
      wal_appends_->increment();
      wal_bytes_->add(scratch_.size());
    }
  }
  // else: nothing mutated since the last commit — the bytes on disk
  // already describe `state`, so the write is elided entirely.

  if (storage_.log_bytes(wal_key_) > compact_threshold()) {
    checkpoint(state);  // verifies internally
    return;
  }
  if (options_.cross_check) verify_cross_check(state);
}

void WalPersistence::checkpoint(const ProtocolState& state) {
  // Anything still staged is folded into the snapshot below.
  pending_.clear();

  if (options_.mode == PersistenceMode::kSnapshot) {
    write_snapshot(state);
    if (options_.cross_check) verify_cross_check(state);
    return;
  }

  scratch_.clear();
  // Batches appended so far carry lsn < next_lsn_; all of them are
  // folded into this snapshot, so recovery must skip every one that a
  // mid-compaction crash leaves behind in the log.
  encode_checkpoint(scratch_, state, /*covers_lsn=*/next_lsn_ - 1);
  storage_.put(ckpt_key_, scratch_.bytes().data(), scratch_.size());
  last_checkpoint_bytes_ = scratch_.size();
  if (checkpoints_ != nullptr) {
    checkpoints_->increment();
    checkpoint_bytes_->add(scratch_.size());
  }

  if (before_truncate_hook_) before_truncate_hook_();
  storage_.truncate_log(wal_key_);

  if (options_.cross_check) verify_cross_check(state);
}

std::optional<ProtocolState> WalPersistence::recover() {
  pending_.clear();
  std::uint64_t max_lsn = 0;
  std::optional<ProtocolState> state = replay_storage(&max_lsn);
  next_lsn_ = max_lsn + 1;
  const std::vector<std::uint8_t>* ckpt = storage_.value(ckpt_key_);
  last_checkpoint_bytes_ = ckpt != nullptr ? ckpt->size() : 0;
  return state;
}

std::size_t WalPersistence::compact_threshold() const noexcept {
  const auto scaled = static_cast<std::size_t>(
      options_.compact_factor * static_cast<double>(last_checkpoint_bytes_));
  return std::max(options_.min_compact_bytes, scaled);
}

void WalPersistence::write_snapshot(const ProtocolState& state) {
  scratch_.clear();
  state.encode(scratch_);
  storage_.put(ckpt_key_, scratch_.bytes().data(), scratch_.size());
  last_checkpoint_bytes_ = scratch_.size();
  if (snapshots_ != nullptr) {
    snapshots_->increment();
    snapshot_bytes_->add(scratch_.size());
  }
}

std::optional<ProtocolState> WalPersistence::replay_storage(
    std::uint64_t* max_lsn_out) const {
  const std::vector<std::uint8_t>* ckpt_bytes = storage_.value(ckpt_key_);
  const std::vector<std::uint8_t>& log = storage_.log(wal_key_);
  if (ckpt_bytes == nullptr) {
    // The constructor checkpoints before any commit can append, so a
    // missing checkpoint means the disk was destroyed — and destroy()
    // wipes the log with it.
    ensure(log.empty(), "WAL log present without a checkpoint");
    return std::nullopt;
  }

  CheckpointRecord record = decode_checkpoint(*ckpt_bytes);
  ProtocolState state = std::move(record.state);
  std::uint64_t max_lsn = record.covers_lsn;
  Decoder dec(log);
  while (!dec.exhausted()) {
    const std::uint64_t lsn = dec.get_varint();
    const std::uint64_t count = dec.get_varint();
    if (count > dec.remaining()) {
      throw CodecError("WAL batch count prefix too large");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const StateDelta delta = StateDelta::decode(dec);
      // A checkpoint written but not yet truncated (crash mid-compaction)
      // leaves already-covered batches in the log; replaying them would
      // double-apply. Skip anything the checkpoint covers.
      if (lsn > record.covers_lsn) delta.apply(state, self_);
    }
    max_lsn = std::max(max_lsn, lsn);
  }
  if (max_lsn_out != nullptr) *max_lsn_out = max_lsn;
  return state;
}

void WalPersistence::verify_cross_check(const ProtocolState& state) const {
  const std::optional<ProtocolState> replayed = replay_storage(nullptr);
  ensure(replayed.has_value(), "cross-check: storage empty after persist");
  if (*replayed != state) {
    throw InvariantViolation(
        "cross-check: replay(checkpoint, log) diverges from live state — a "
        "mutation was not staged.\n  replayed: " +
        replayed->to_string() + "\n  live:     " + state.to_string());
  }
}

}  // namespace dynvote
