// Simulated partitionable network.
//
// Model (paper section 3): processes communicate over reliable FIFO
// channels while connected; failures partition the network into disjoint
// components and components may re-merge; messages in flight across a
// partition boundary are lost (the protocol learns of the loss through a
// membership change, never through corruption).
//
// Connectivity is component-based: each live process belongs to exactly
// one component; two processes are connected iff they are both alive and
// in the same component. A per-pair "link epoch" is bumped whenever a
// pair becomes disconnected, so a message sent before a partition is not
// resurrected by a later merge. Bumping an epoch also clears the pair's
// FIFO bookkeeping: a message that died with the old link must not delay
// traffic on the healed one.
//
// Observability: every send/drop/delivery and topology change is counted
// in the simulation's MetricsRegistry and (optionally) recorded in its
// TraceSink; NetworkStats is now a read-only snapshot assembled from
// those counters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote::sim {

/// Uniform message latency in simulated ticks.
struct LatencyModel {
  SimTime min = 40;
  SimTime max = 160;
};

/// Read-only snapshot of the network counters (assembled from the
/// MetricsRegistry — see Network::stats()).
struct NetworkStats {
  std::uint64_t messages_sent = 0;      // every send() call
  std::uint64_t messages_loopback = 0;  // self-deliveries (subset of sent)
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   // filtered + unroutable + lost
  std::uint64_t messages_filtered = 0;  // fault-injection drop filter
  std::uint64_t messages_unroutable = 0;    // disconnected at send time
  std::uint64_t messages_lost_in_flight = 0;  // link cut while in flight
  std::uint64_t bytes_sent = 0;      // admitted to a channel only
  std::uint64_t bytes_rejected = 0;  // filtered or unroutable at send
};

class Network {
 public:
  /// Fault-injection hook, consulted for every send. Return true to drop
  /// the message (used by scenarios to make a process "detach before
  /// receiving the last message", paper section 1).
  using DropFilter = std::function<bool(const Envelope&)>;

  /// Observer invoked after every connectivity change (partition, merge,
  /// crash, recovery). The membership oracle subscribes to this.
  using TopologyObserver = std::function<void()>;

  Network(EventQueue& queue, Rng rng, Logger& logger, LatencyModel latency,
          obs::TraceSink& trace, obs::MetricsRegistry& metrics);

  /// Registers a process. All processes start alive, each in its own
  /// singleton component until set_components is called.
  void add_process(ProcessId p);

  /// Installs the delivery callback for a process (the Node layer).
  void set_delivery_handler(ProcessId p,
                            std::function<void(Envelope)> handler);

  // -- connectivity control ------------------------------------------------

  /// Reassigns every listed process to the component given by its group.
  /// Processes not mentioned keep their component. Crashed processes may
  /// be mentioned; their assignment takes effect when they recover.
  void set_components(const std::vector<ProcessSet>& groups);

  /// Puts all live processes into one component.
  void merge_all();

  void set_alive(ProcessId p, bool alive);

  [[nodiscard]] bool alive(ProcessId p) const;
  [[nodiscard]] bool connected(ProcessId a, ProcessId b) const;

  /// Current components over live processes, deterministically ordered.
  [[nodiscard]] std::vector<ProcessSet> live_components() const;

  /// The component of `p` (members alive and connected to p, including p).
  /// Empty if p is crashed.
  [[nodiscard]] ProcessSet component_of(ProcessId p) const;

  [[nodiscard]] const ProcessSet& all_processes() const noexcept {
    return processes_;
  }

  // -- messaging -------------------------------------------------------------

  /// Sends `env`. Self-sends deliver at the current time (after currently
  /// queued events); remote sends sample the latency model and respect
  /// per-pair FIFO order. Messages crossing a partition are dropped.
  void send(Envelope env);

  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }
  void clear_drop_filter() { drop_filter_ = nullptr; }

  void add_topology_observer(TopologyObserver observer);

  /// Snapshot of the network counters in the metrics registry.
  [[nodiscard]] NetworkStats stats() const;

  // -- causality -------------------------------------------------------------

  /// Advances `p`'s Lamport clock by one local event and returns the new
  /// value. Protocol layers call this (via sim::Node) when they record a
  /// trace event for a local step.
  std::uint64_t lamport_tick(ProcessId p);

  /// Current Lamport clock of `p` (without advancing it).
  [[nodiscard]] std::uint64_t lamport(ProcessId p) const;

  /// Trace-event id of the most recent topology-change event whose
  /// component contained `p` (0 = none). View installations cite this as
  /// their cause: the view is the membership layer's reaction to that
  /// connectivity change.
  [[nodiscard]] std::uint64_t last_topology_eid(ProcessId p) const;

  /// The pending FIFO tail for the directional channel from -> to: the
  /// latest delivery time already handed out, which the next send may not
  /// precede. Empty when the channel has no outstanding FIFO constraint
  /// (never used, or cleared by an epoch bump). Exposed for tests.
  [[nodiscard]] std::optional<SimTime> fifo_tail(ProcessId from,
                                                 ProcessId to) const;

 private:
  struct ProcessEntry {
    bool alive = true;
    std::uint32_t component = 0;
    std::function<void(Envelope)> handler;
    std::uint64_t lamport = 0;   // Lamport clock of this process
    std::uint64_t topo_eid = 0;  // last topology event covering this process
  };

  /// Connectivity-only snapshot used to detect disconnections across a
  /// topology change. Deliberately excludes the delivery handler so
  /// snapshotting does not copy std::function objects.
  struct ConnectivityEntry {
    bool alive = false;
    std::uint32_t component = 0;
  };

  // Routing state is indexed by COMPACT slot, not by raw ProcessId value:
  // add_process assigns each process the next dense slot (registration
  // order), entries_[slot] holds per-process state, and flat triangular
  // arrays hold per-pair state. Raw ids resolve to slots through a small
  // direct-lookup vector (raw < kDenseDirectLimit) or a hash map above
  // it, so registering a sparse four-digit-plus id costs one mapping
  // entry instead of max-raw-id-sized arrays (the pair tables would grow
  // quadratically in the largest raw id otherwise).
  //
  // The pair index tri(a,b) = max(a,b)·(max(a,b)−1)/2 + min(a,b) over
  // SLOTS depends only on the pair, never on capacity, and a new process
  // always takes the largest slot, so add_process only ever *appends*
  // pair entries — existing indices (and in-flight epoch captures)
  // survive growth untouched.

  /// Raw ids below this bound resolve through the direct-lookup vector;
  /// larger (sparse) ids go through the hash map.
  static constexpr std::uint32_t kDenseDirectLimit = 4096;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Compact slot of `p`, or kNoSlot if never registered.
  [[nodiscard]] std::uint32_t slot_of(ProcessId p) const {
    const std::uint32_t raw = p.value();
    if (raw < kDenseDirectLimit) {
      return raw < slot_direct_.size() ? slot_direct_[raw] : kNoSlot;
    }
    const auto it = slot_big_.find(raw);
    return it == slot_big_.end() ? kNoSlot : it->second;
  }

  [[nodiscard]] bool known(ProcessId p) const {
    return slot_of(p) != kNoSlot;
  }
  /// Unordered-pair index into link_epochs_. Precondition: a != b.
  [[nodiscard]] static std::size_t tri_index(std::uint32_t slot_a,
                                             std::uint32_t slot_b);
  /// Directed-pair index into fifo_tails_. Precondition: from != to.
  [[nodiscard]] static std::size_t directed_index(std::uint32_t slot_from,
                                                  std::uint32_t slot_to);

  [[nodiscard]] std::vector<ConnectivityEntry> snapshot_connectivity() const;
  void bump_epochs_for_disconnections(
      const std::vector<ConnectivityEntry>& before);
  /// Drops FIFO tails that can no longer constrain a future send (tail
  /// time <= now): every new delivery is scheduled at or after now, so
  /// max(when, tail) == when for such tails. Run on topology changes to
  /// keep the table from carrying dead bookkeeping across reconfigs.
  void prune_stale_fifo_tails();
  /// Records one kTopologyChange event per live component, citing
  /// `cause` (e.g. the crash/recover event that triggered the change).
  void record_topology(std::uint64_t cause);
  void notify_topology_changed();
  std::uint64_t link_epoch(ProcessId a, ProcessId b) const;
  void count_drop(const Envelope& env, obs::DropCause cause);
  void deliver(Envelope env, std::uint64_t epoch_at_send);

  EventQueue& queue_;
  Rng rng_;
  Logger& logger_;
  LatencyModel latency_;
  obs::TraceSink& trace_;
  obs::MetricsRegistry& metrics_;
  ProcessSet processes_;
  std::vector<std::uint32_t> slot_direct_;  // raw id -> slot, raw < limit
  std::unordered_map<std::uint32_t, std::uint32_t> slot_big_;
  std::vector<ProcessEntry> entries_;  // indexed by compact slot
  std::vector<std::uint64_t> link_epochs_;  // indexed by tri_index
  // FIFO tails, indexed by directed_index. Stored as tail+1 so 0 means
  // "no outstanding constraint" without a side table.
  std::vector<SimTime> fifo_tails_;
  std::uint32_t next_component_ = 1;
  DropFilter drop_filter_;
  std::vector<TopologyObserver> observers_;

  // Hot-path instruments, resolved once at construction.
  obs::Counter& sent_;
  obs::Counter& loopback_;
  obs::Counter& delivered_;
  obs::Counter& filtered_;
  obs::Counter& unroutable_;
  obs::Counter& lost_in_flight_;
  obs::Counter& bytes_sent_;
  obs::Counter& bytes_rejected_;
  obs::Counter& topology_changes_;
};

}  // namespace dynvote::sim
