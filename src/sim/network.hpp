// Simulated partitionable network.
//
// Model (paper section 3): processes communicate over reliable FIFO
// channels while connected; failures partition the network into disjoint
// components and components may re-merge; messages in flight across a
// partition boundary are lost (the protocol learns of the loss through a
// membership change, never through corruption).
//
// Connectivity is component-based: each live process belongs to exactly
// one component; two processes are connected iff they are both alive and
// in the same component. A per-pair "link epoch" is bumped whenever a
// pair becomes disconnected, so a message sent before a partition is not
// resurrected by a later merge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote::sim {

/// Uniform message latency in simulated ticks.
struct LatencyModel {
  SimTime min = 40;
  SimTime max = 160;
};

/// Counters for the communication benchmarks.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_loopback = 0;  // self-deliveries (subset of sent)
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // partition loss, crashes, filters
  std::uint64_t bytes_sent = 0;

  void reset() { *this = NetworkStats{}; }
};

class Network {
 public:
  /// Fault-injection hook, consulted for every send. Return true to drop
  /// the message (used by scenarios to make a process "detach before
  /// receiving the last message", paper section 1).
  using DropFilter = std::function<bool(const Envelope&)>;

  /// Observer invoked after every connectivity change (partition, merge,
  /// crash, recovery). The membership oracle subscribes to this.
  using TopologyObserver = std::function<void()>;

  Network(EventQueue& queue, Rng rng, Logger& logger, LatencyModel latency);

  /// Registers a process. All processes start alive, each in its own
  /// singleton component until set_components is called.
  void add_process(ProcessId p);

  /// Installs the delivery callback for a process (the Node layer).
  void set_delivery_handler(ProcessId p,
                            std::function<void(Envelope)> handler);

  // -- connectivity control ------------------------------------------------

  /// Reassigns every listed process to the component given by its group.
  /// Processes not mentioned keep their component. Crashed processes may
  /// be mentioned; their assignment takes effect when they recover.
  void set_components(const std::vector<ProcessSet>& groups);

  /// Puts all live processes into one component.
  void merge_all();

  void set_alive(ProcessId p, bool alive);

  [[nodiscard]] bool alive(ProcessId p) const;
  [[nodiscard]] bool connected(ProcessId a, ProcessId b) const;

  /// Current components over live processes, deterministically ordered.
  [[nodiscard]] std::vector<ProcessSet> live_components() const;

  /// The component of `p` (members alive and connected to p, including p).
  /// Empty if p is crashed.
  [[nodiscard]] ProcessSet component_of(ProcessId p) const;

  [[nodiscard]] const ProcessSet& all_processes() const noexcept {
    return processes_;
  }

  // -- messaging -------------------------------------------------------------

  /// Sends `env`. Self-sends deliver at the current time (after currently
  /// queued events); remote sends sample the latency model and respect
  /// per-pair FIFO order. Messages crossing a partition are dropped.
  void send(Envelope env);

  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }
  void clear_drop_filter() { drop_filter_ = nullptr; }

  void add_topology_observer(TopologyObserver observer);

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  NetworkStats& mutable_stats() noexcept { return stats_; }

 private:
  struct ProcessEntry {
    bool alive = true;
    std::uint32_t component = 0;
    std::function<void(Envelope)> handler;
  };

  using Pair = std::pair<ProcessId, ProcessId>;

  void bump_epochs_for_disconnections(
      const std::map<ProcessId, ProcessEntry>& before);
  void notify_topology_changed();
  std::uint64_t link_epoch(ProcessId a, ProcessId b) const;
  void deliver(Envelope env, std::uint64_t epoch_at_send);

  EventQueue& queue_;
  Rng rng_;
  Logger& logger_;
  LatencyModel latency_;
  ProcessSet processes_;
  std::map<ProcessId, ProcessEntry> entries_;
  std::map<Pair, std::uint64_t> link_epochs_;
  std::map<Pair, SimTime> last_scheduled_delivery_;
  std::uint32_t next_component_ = 1;
  DropFilter drop_filter_;
  std::vector<TopologyObserver> observers_;
  NetworkStats stats_;
};

}  // namespace dynvote::sim
