#include "sim/node.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote::sim {

Node::Node(Transport& transport, ProcessId id)
    : transport_(transport), id_(id) {}

Node::Node(Simulator& sim, ProcessId id) : Node(sim.transport(), id) {}

Node::~Node() = default;

void Node::deliver_view(const View& view) {
  if (!alive_) return;
  ensure(view.members.contains(id_), "view delivered to non-member");
  if (view_ && view.id <= view_->id) return;  // stale view report
  view_ = view;

  // Messages buffered for this view become deliverable; older ones are
  // from views this process skipped and are gone for good.
  std::vector<Envelope> ready;
  std::vector<Envelope> keep;
  for (auto& env : buffered_) {
    if (env.view == view.id) {
      ready.push_back(std::move(env));
    } else if (env.view > view.id) {
      keep.push_back(std::move(env));
    }
  }
  buffered_ = std::move(keep);

  log(LogLevel::kDebug, "installs view " + to_string(view));
  on_view(view);
  for (auto& env : ready) {
    if (!alive_) break;
    if (!view_ || view_->id != env.view) break;  // protocol moved on
    on_message(env.from, env.payload);
  }
}

void Node::deliver_message(Envelope env) {
  if (!alive_) return;
  if (!view_ || env.view > view_->id) {
    buffered_.push_back(std::move(env));
    return;
  }
  if (env.view < view_->id) return;  // stale: sender was in an older view
  on_message(env.from, env.payload);
}

void Node::crash() {
  if (!alive_) return;
  alive_ = false;
  view_.reset();
  buffered_.clear();
  log(LogLevel::kDebug, "crashed");
  on_crash();
}

void Node::recover() {
  if (alive_) return;
  alive_ = true;
  log(LogLevel::kDebug, "recovering");
  on_recover();
}

void Node::send(ProcessId to, PayloadPtr payload) {
  ensure(view_.has_value(), "send outside a view");
  transport_.send(Envelope{id_, to, view_->id, std::move(payload)});
}

void Node::broadcast(PayloadPtr payload) {
  ensure(view_.has_value(), "broadcast outside a view");
  for (ProcessId member : view_->members) {
    transport_.send(Envelope{id_, member, view_->id, payload});
  }
}

StableStorage& Node::storage() { return transport_.storage(id_); }

SimTime Node::now() const { return transport_.now(); }

TimerToken Node::schedule_timer(SimTime delay, TimerAction action) {
  return transport_.schedule_timer(id_, delay, std::move(action));
}

bool Node::cancel_timer(TimerToken token) {
  return transport_.cancel_timer(id_, token);
}

obs::TraceSink& Node::trace() { return transport_.trace(id_); }

obs::MetricsRegistry& Node::metrics() { return transport_.metrics(id_); }

std::uint64_t Node::lamport_tick() { return transport_.lamport_tick(id_); }

std::uint64_t Node::last_topology_eid() const {
  return transport_.last_topology_eid(id_);
}

void Node::log(LogLevel level, const std::string& message) const {
  transport_.log(id_, level, message);
}

}  // namespace dynvote::sim
