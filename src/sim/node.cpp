#include "sim/node.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote::sim {

Node::Node(Simulator& sim, ProcessId id) : sim_(sim), id_(id) {}

Node::~Node() = default;

void Node::deliver_view(const View& view) {
  if (!alive_) return;
  ensure(view.members.contains(id_), "view delivered to non-member");
  if (view_ && view.id <= view_->id) return;  // stale view report
  view_ = view;

  // Messages buffered for this view become deliverable; older ones are
  // from views this process skipped and are gone for good.
  std::vector<Envelope> ready;
  std::vector<Envelope> keep;
  for (auto& env : buffered_) {
    if (env.view == view.id) {
      ready.push_back(std::move(env));
    } else if (env.view > view.id) {
      keep.push_back(std::move(env));
    }
  }
  buffered_ = std::move(keep);

  log(LogLevel::kDebug, "installs view " + to_string(view));
  on_view(view);
  for (auto& env : ready) {
    if (!alive_) break;
    if (!view_ || view_->id != env.view) break;  // protocol moved on
    on_message(env.from, env.payload);
  }
}

void Node::deliver_message(Envelope env) {
  if (!alive_) return;
  if (!view_ || env.view > view_->id) {
    buffered_.push_back(std::move(env));
    return;
  }
  if (env.view < view_->id) return;  // stale: sender was in an older view
  on_message(env.from, env.payload);
}

void Node::crash() {
  if (!alive_) return;
  alive_ = false;
  view_.reset();
  buffered_.clear();
  log(LogLevel::kDebug, "crashed");
  on_crash();
}

void Node::recover() {
  if (alive_) return;
  alive_ = true;
  log(LogLevel::kDebug, "recovering");
  on_recover();
}

void Node::send(ProcessId to, PayloadPtr payload) {
  ensure(view_.has_value(), "send outside a view");
  sim_.network().send(Envelope{id_, to, view_->id, std::move(payload)});
}

void Node::broadcast(PayloadPtr payload) {
  ensure(view_.has_value(), "broadcast outside a view");
  for (ProcessId member : view_->members) {
    sim_.network().send(Envelope{id_, member, view_->id, payload});
  }
}

StableStorage& Node::storage() { return sim_.storage(id_); }

SimTime Node::now() const { return sim_.now(); }

obs::TraceSink& Node::trace() { return sim_.trace(); }

obs::MetricsRegistry& Node::metrics() { return sim_.metrics(); }

std::uint64_t Node::lamport_tick() { return sim_.network().lamport_tick(id_); }

std::uint64_t Node::last_topology_eid() const {
  return sim_.network().last_topology_eid(id_);
}

void Node::log(LogLevel level, const std::string& message) const {
  sim_.logger().log(sim_.now(), level, to_string(id_), message);
}

}  // namespace dynvote::sim
