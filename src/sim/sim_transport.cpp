#include "sim/sim_transport.hpp"

#include <utility>

#include "sim/simulator.hpp"

namespace dynvote::sim {

void SimTransport::send(Envelope env) { sim_.network().send(std::move(env)); }

SimTime SimTransport::now() const { return sim_.now(); }

TimerToken SimTransport::schedule_timer(ProcessId /*p*/, SimTime delay,
                                        TimerAction action) {
  // One shared event queue: process affinity is a no-op under the
  // single-threaded simulator.
  return sim_.queue().schedule_after(delay, std::move(action));
}

bool SimTransport::cancel_timer(ProcessId /*p*/, TimerToken token) {
  return sim_.queue().cancel(token);
}

StableStorage& SimTransport::storage(ProcessId p) { return sim_.storage(p); }

obs::TraceSink& SimTransport::trace(ProcessId /*p*/) { return sim_.trace(); }

obs::MetricsRegistry& SimTransport::metrics(ProcessId /*p*/) {
  return sim_.metrics();
}

std::uint64_t SimTransport::lamport_tick(ProcessId p) {
  return sim_.network().lamport_tick(p);
}

std::uint64_t SimTransport::last_topology_eid(ProcessId p) const {
  return sim_.network().last_topology_eid(p);
}

void SimTransport::log(ProcessId p, LogLevel level,
                       const std::string& message) {
  sim_.logger().log(sim_.now(), level, to_string(p), message);
}

}  // namespace dynvote::sim
