#include "sim/stable_storage.hpp"

#include "util/ensure.hpp"

namespace dynvote::sim {

StableStorage::KeyId StableStorage::intern(std::string_view key) {
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const KeyId id = static_cast<KeyId>(entries_.size());
  entries_.emplace_back();
  ids_.emplace(std::string(key), id);
  return id;
}

StableStorage::Entry& StableStorage::entry(KeyId key) {
  ensure(key < entries_.size(), "stable-storage key id out of range");
  return entries_[key];
}

const StableStorage::Entry& StableStorage::entry(KeyId key) const {
  ensure(key < entries_.size(), "stable-storage key id out of range");
  return entries_[key];
}

void StableStorage::put(KeyId key, const std::uint8_t* data,
                        std::size_t size) {
  ++writes_;
  bytes_written_ += size;
  Entry& e = entry(key);
  e.has_value = true;
  e.value.assign(data, data + size);
}

void StableStorage::append(KeyId key, const std::uint8_t* data,
                           std::size_t size) {
  ++writes_;
  ++appends_;
  bytes_written_ += size;
  Entry& e = entry(key);
  e.log.insert(e.log.end(), data, data + size);
  ++e.log_records;
}

const std::vector<std::uint8_t>* StableStorage::value(KeyId key) const {
  const Entry& e = entry(key);
  return e.has_value ? &e.value : nullptr;
}

const std::vector<std::uint8_t>& StableStorage::log(KeyId key) const {
  return entry(key).log;
}

std::uint64_t StableStorage::log_records(KeyId key) const {
  return entry(key).log_records;
}

std::size_t StableStorage::log_bytes(KeyId key) const {
  return entry(key).log.size();
}

void StableStorage::truncate_log(KeyId key) {
  Entry& e = entry(key);
  e.log.clear();
  e.log_records = 0;
}

void StableStorage::put(const std::string& key,
                        std::vector<std::uint8_t> value) {
  put(intern(key), value.data(), value.size());
}

void StableStorage::put(const std::string& key, const std::uint8_t* data,
                        std::size_t size) {
  put(intern(key), data, size);
}

std::optional<std::vector<std::uint8_t>> StableStorage::get(
    const std::string& key) const {
  auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  const Entry& e = entries_[it->second];
  if (!e.has_value) return std::nullopt;
  return e.value;
}

bool StableStorage::erase(const std::string& key) {
  auto it = ids_.find(key);
  if (it == ids_.end()) return false;
  Entry& e = entries_[it->second];
  const bool existed = e.has_value;
  e.has_value = false;
  e.value.clear();
  return existed;
}

void StableStorage::destroy() {
  for (Entry& e : entries_) {
    e.has_value = false;
    e.value.clear();
    e.log.clear();
    e.log_records = 0;
  }
  destroyed_ = true;
}

std::size_t StableStorage::entry_count() const noexcept {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.has_value || !e.log.empty()) ++n;
  }
  return n;
}

}  // namespace dynvote::sim
