#include "sim/stable_storage.hpp"

namespace dynvote::sim {

void StableStorage::put(const std::string& key,
                        std::vector<std::uint8_t> value) {
  ++writes_;
  bytes_written_ += value.size();
  entries_[key] = std::move(value);
}

void StableStorage::put(const std::string& key, const std::uint8_t* data,
                        std::size_t size) {
  ++writes_;
  bytes_written_ += size;
  entries_[key].assign(data, data + size);
}

std::optional<std::vector<std::uint8_t>> StableStorage::get(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool StableStorage::erase(const std::string& key) {
  return entries_.erase(key) > 0;
}

void StableStorage::destroy() {
  entries_.clear();
  destroyed_ = true;
}

}  // namespace dynvote::sim
