// Node: base class for a simulated process.
//
// A Node reacts to three kinds of stimuli — membership views, protocol
// messages, crash/recovery — and may send messages and write stable
// storage. The base class owns the mechanics the paper's model demands:
//
//  * view-tagged delivery (section 3.1 causality): a message sent in view
//    V is handed to the protocol only while the receiver is in V;
//    messages for views the receiver hasn't installed yet are buffered,
//    messages for superseded views are discarded;
//  * crash semantics: volatile state vanishes, stable storage persists.
//
// Protocol implementations override the on_* hooks.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "membership/view.hpp"
#include "sim/message.hpp"
#include "sim/transport.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"

namespace dynvote::sim {

class Simulator;

class Node {
 public:
  /// A node lives on a Transport (sim/transport.hpp): the simulator's
  /// event queue or the thread-per-process runtime backend.
  Node(Transport& transport, ProcessId id);

  /// Convenience for simulator-driven code and tests: equivalent to
  /// Node(sim.transport(), id).
  Node(Simulator& sim, ProcessId id);

  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] const std::optional<View>& current_view() const noexcept {
    return view_;
  }

  // -- entry points invoked by the simulator / oracle / network ------------

  /// Installs a new membership view: flushes buffered messages belonging
  /// to it, drops messages from older views, then calls on_view.
  void deliver_view(const View& view);

  /// Routes an incoming envelope through the view gate (buffer / drop /
  /// hand to on_message).
  void deliver_message(Envelope env);

  /// Crash: wipe volatile state. The simulator keeps stable storage.
  void crash();

  /// Recovery: the protocol should reload its persistent state in
  /// on_recover; a fresh view will arrive from the membership oracle.
  void recover();

 protected:
  /// A new membership was reported. `view.members` always contains this
  /// process.
  virtual void on_view(const View& view) = 0;

  /// A protocol message arrived, sent by `from` in the current view.
  virtual void on_message(ProcessId from, const PayloadPtr& payload) = 0;

  virtual void on_crash() {}
  virtual void on_recover() {}

  /// Sends `payload` to `to`, tagged with the current view. Requires a
  /// current view. Self-sends are permitted and delivered like any other.
  void send(ProcessId to, PayloadPtr payload);

  /// Sends `payload` to every member of the current view, including this
  /// process itself — the paper's symmetric protocol has each process
  /// receive its own round messages too.
  void broadcast(PayloadPtr payload);

  [[nodiscard]] Transport& transport() noexcept { return transport_; }
  [[nodiscard]] StableStorage& storage();
  [[nodiscard]] SimTime now() const;

  /// Schedules `action` in this process's execution context after
  /// `delay` clock units; cancel_timer revokes a pending one.
  TimerToken schedule_timer(SimTime delay, TimerAction action);
  bool cancel_timer(TimerToken token);

  /// The simulation's structured trace sink / metrics registry, so
  /// protocol layers can record events without including simulator.hpp.
  [[nodiscard]] obs::TraceSink& trace();
  [[nodiscard]] obs::MetricsRegistry& metrics();

  /// Advances and returns this process's Lamport clock — one call per
  /// trace event a protocol layer records for a local step.
  std::uint64_t lamport_tick();

  /// Trace-event id of the topology change that last reshaped this
  /// process's component (0 = none); the causal parent of view installs.
  [[nodiscard]] std::uint64_t last_topology_eid() const;

  void log(LogLevel level, const std::string& message) const;

 private:
  Transport& transport_;
  ProcessId id_;
  bool alive_ = true;
  std::optional<View> view_;
  std::vector<Envelope> buffered_;  // messages for views not yet installed
};

}  // namespace dynvote::sim
