#include "sim/network.hpp"

#include <algorithm>
#include <map>

#include "util/ensure.hpp"

namespace dynvote::sim {

Network::Network(EventQueue& queue, Rng rng, Logger& logger,
                 LatencyModel latency, obs::TraceSink& trace,
                 obs::MetricsRegistry& metrics)
    : queue_(queue),
      rng_(rng),
      logger_(logger),
      latency_(latency),
      trace_(trace),
      metrics_(metrics),
      sent_(metrics.counter("net.messages_sent")),
      loopback_(metrics.counter("net.messages_loopback")),
      delivered_(metrics.counter("net.messages_delivered")),
      filtered_(metrics.counter("net.messages_filtered")),
      unroutable_(metrics.counter("net.messages_unroutable")),
      lost_in_flight_(metrics.counter("net.messages_lost_in_flight")),
      bytes_sent_(metrics.counter("net.bytes_sent")),
      bytes_rejected_(metrics.counter("net.bytes_rejected")),
      topology_changes_(metrics.counter("net.topology_changes")) {
  ensure(latency_.min <= latency_.max, "latency model min > max");
}

std::size_t Network::tri_index(std::uint32_t slot_a, std::uint32_t slot_b) {
  std::uint64_t lo = slot_a;
  std::uint64_t hi = slot_b;
  if (lo > hi) std::swap(lo, hi);
  return static_cast<std::size_t>(hi * (hi - 1) / 2 + lo);
}

std::size_t Network::directed_index(std::uint32_t slot_from,
                                    std::uint32_t slot_to) {
  return tri_index(slot_from, slot_to) * 2 + (slot_from > slot_to ? 1 : 0);
}

void Network::add_process(ProcessId p) {
  ensure(!known(p), "process added twice");
  processes_.insert(p);
  const auto slot = static_cast<std::uint32_t>(entries_.size());
  if (p.value() < kDenseDirectLimit) {
    if (p.value() >= slot_direct_.size()) {
      slot_direct_.resize(p.value() + 1, kNoSlot);
    }
    slot_direct_[p.value()] = slot;
  } else {
    slot_big_.emplace(p.value(), slot);
  }
  entries_.emplace_back();
  // Append pair entries for every pair whose larger slot is the new one.
  // Fresh entries start at epoch 0 / no tail, exactly the state an
  // untouched pair had before the process existed.
  const std::size_t pair_slots =
      static_cast<std::size_t>(std::uint64_t{slot} * (slot + 1) / 2);
  link_epochs_.resize(pair_slots, 0);
  fifo_tails_.resize(pair_slots * 2, 0);
  ProcessEntry& entry = entries_[slot];
  entry.alive = true;
  entry.component = next_component_++;
}

void Network::set_delivery_handler(ProcessId p,
                                   std::function<void(Envelope)> handler) {
  const std::uint32_t slot = slot_of(p);
  ensure(slot != kNoSlot, "unknown process");
  entries_[slot].handler = std::move(handler);
}

std::vector<Network::ConnectivityEntry> Network::snapshot_connectivity()
    const {
  std::vector<ConnectivityEntry> out(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out[i] = ConnectivityEntry{entries_[i].alive, entries_[i].component};
  }
  return out;
}

void Network::set_components(const std::vector<ProcessSet>& groups) {
  // Validate disjointness before mutating anything.
  ProcessSet seen;
  for (const ProcessSet& group : groups) {
    for (ProcessId p : group) {
      ensure(known(p), "set_components: unknown process");
      ensure(seen.insert(p), "set_components: process in two groups");
    }
  }
  const auto before = snapshot_connectivity();
  for (const ProcessSet& group : groups) {
    const std::uint32_t component = next_component_++;
    for (ProcessId p : group) entries_[slot_of(p)].component = component;
  }
  bump_epochs_for_disconnections(before);
  prune_stale_fifo_tails();
  logger_.log(queue_.now(), LogLevel::kDebug, "net", [&] {
    std::string s = "components:";
    for (const auto& c : live_components()) s += " " + c.to_string();
    return s;
  }());
  record_topology(/*cause=*/0);
  notify_topology_changed();
}

void Network::merge_all() {
  std::vector<ProcessSet> one{processes_};
  set_components(one);
}

void Network::set_alive(ProcessId p, bool alive) {
  const std::uint32_t slot = slot_of(p);
  ensure(slot != kNoSlot, "unknown process");
  if (entries_[slot].alive == alive) return;
  const auto before = snapshot_connectivity();
  entries_[slot].alive = alive;
  if (alive) {
    // A recovering process comes back in its own fresh component; a merge
    // (set_components) reconnects it explicitly.
    entries_[slot].component = next_component_++;
  }
  bump_epochs_for_disconnections(before);
  prune_stale_fifo_tails();
  logger_.log(queue_.now(), LogLevel::kDebug, "net",
              to_string(p) + (alive ? " recovered" : " crashed"));
  obs::TraceEvent event;
  event.time = queue_.now();
  event.kind = alive ? obs::TraceEventKind::kProcessRecover
                     : obs::TraceEventKind::kProcessCrash;
  event.a = p;
  event.lamport = lamport_tick(p);
  const std::uint64_t cause = trace_.record(std::move(event));
  // The ensuing topology change is an effect of the crash/recovery.
  record_topology(cause);
  notify_topology_changed();
}

bool Network::alive(ProcessId p) const {
  const std::uint32_t slot = slot_of(p);
  return slot != kNoSlot && entries_[slot].alive;
}

bool Network::connected(ProcessId a, ProcessId b) const {
  if (a == b) return alive(a);
  const std::uint32_t sa = slot_of(a);
  const std::uint32_t sb = slot_of(b);
  if (sa == kNoSlot || sb == kNoSlot) return false;
  const ProcessEntry& ea = entries_[sa];
  const ProcessEntry& eb = entries_[sb];
  return ea.alive && eb.alive && ea.component == eb.component;
}

std::vector<ProcessSet> Network::live_components() const {
  std::map<std::uint32_t, ProcessSet> by_component;
  for (ProcessId p : processes_) {
    const ProcessEntry& entry = entries_[slot_of(p)];
    if (entry.alive) by_component[entry.component].insert(p);
  }
  std::vector<ProcessSet> out;
  out.reserve(by_component.size());
  for (auto& [component, members] : by_component) out.push_back(members);
  // Deterministic order: by smallest member.
  std::sort(out.begin(), out.end());
  return out;
}

ProcessSet Network::component_of(ProcessId p) const {
  ProcessSet out;
  if (!alive(p)) return out;
  const std::uint32_t component = entries_[slot_of(p)].component;
  for (ProcessId q : processes_) {
    const ProcessEntry& entry = entries_[slot_of(q)];
    if (entry.alive && entry.component == component) out.insert(q);
  }
  return out;
}

void Network::bump_epochs_for_disconnections(
    const std::vector<ConnectivityEntry>& before) {
  // Only a pair that was connected before can disconnect, and
  // was-connected means "same old component" — so instead of scanning
  // all n^2 pairs (prohibitive for a sharded fleet at four-digit n with
  // hundreds of small components), walk each old component and check
  // only its internal pairs. Components are grouped in slot order, so
  // the bump order per pair is deterministic.
  std::map<std::uint32_t, std::vector<std::uint32_t>> old_components;
  for (std::uint32_t slot = 0; slot < before.size(); ++slot) {
    if (before[slot].alive) {
      old_components[before[slot].component].push_back(slot);
    }
  }
  for (const auto& [component, slots] : old_components) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const ProcessEntry& ea = entries_[slots[i]];
      for (std::size_t j = i + 1; j < slots.size(); ++j) {
        const ProcessEntry& eb = entries_[slots[j]];
        if (ea.alive && eb.alive && ea.component == eb.component) continue;
        const std::size_t tri = tri_index(slots[i], slots[j]);
        ++link_epochs_[tri];
        // The cut loses everything in flight on this pair, so the FIFO
        // tail must not constrain the healed link: without this clear the
        // first message after a heal is delayed behind ghosts of messages
        // that were dropped by the epoch check.
        fifo_tails_[tri * 2] = 0;
        fifo_tails_[tri * 2 + 1] = 0;
      }
    }
  }
}

void Network::prune_stale_fifo_tails() {
  // A tail at or before the current time cannot clamp anything: every new
  // delivery is scheduled at >= now, so max(when, tail) == when. Dropping
  // such tails is therefore invisible to the schedule.
  const SimTime now = queue_.now();
  for (SimTime& slot : fifo_tails_) {
    if (slot != 0 && slot - 1 <= now) slot = 0;
  }
}

void Network::record_topology(std::uint64_t cause) {
  topology_changes_.increment();
  for (const ProcessSet& component : live_components()) {
    obs::TraceEvent event;
    event.time = queue_.now();
    event.kind = obs::TraceEventKind::kTopologyChange;
    event.members = component;
    event.cause = cause;
    const std::uint64_t eid = trace_.record(std::move(event));
    // Remember, per process, the topology event that last reshaped its
    // component: the membership oracle's next view install cites it.
    for (ProcessId p : component) entries_[slot_of(p)].topo_eid = eid;
  }
}

void Network::notify_topology_changed() {
  for (const auto& observer : observers_) observer();
}

std::uint64_t Network::lamport_tick(ProcessId p) {
  const std::uint32_t slot = slot_of(p);
  ensure(slot != kNoSlot, "unknown process");
  return ++entries_[slot].lamport;
}

std::uint64_t Network::lamport(ProcessId p) const {
  const std::uint32_t slot = slot_of(p);
  return slot != kNoSlot ? entries_[slot].lamport : 0;
}

std::uint64_t Network::last_topology_eid(ProcessId p) const {
  const std::uint32_t slot = slot_of(p);
  return slot != kNoSlot ? entries_[slot].topo_eid : 0;
}

std::uint64_t Network::link_epoch(ProcessId a, ProcessId b) const {
  // Loopback has no link to partition: a broadcast's self-send must not
  // index the pair table (tri_index(s, s) for the largest slot lands one
  // past the end of link_epochs_).
  if (a == b) return 0;
  return link_epochs_[tri_index(slot_of(a), slot_of(b))];
}

void Network::add_topology_observer(TopologyObserver observer) {
  observers_.push_back(std::move(observer));
}

void Network::count_drop(const Envelope& env, obs::DropCause cause) {
  switch (cause) {
    case obs::DropCause::kFilter:
      filtered_.increment();
      break;
    case obs::DropCause::kDisconnected:
      unroutable_.increment();
      break;
    case obs::DropCause::kLinkEpoch:
      lost_in_flight_.increment();
      break;
  }
  obs::TraceEvent event;
  event.time = queue_.now();
  event.kind = obs::TraceEventKind::kMessageDrop;
  event.a = env.from;
  event.b = env.to;
  event.value = static_cast<std::uint64_t>(cause);
  event.detail = env.payload->type_name();
  // In-flight losses cite the send that launched the message; at-send
  // drops are themselves the root record of the doomed send.
  event.lamport = env.lamport;
  event.cause = env.send_eid;
  trace_.record(std::move(event));
}

void Network::send(Envelope env) {
  ensure(known(env.from) && known(env.to), "send between unknown processes");
  ensure(env.payload != nullptr, "null payload");
  sent_.increment();
  if (env.from == env.to) loopback_.increment();
  const std::size_t size = env.payload->encoded_size();
  // A send attempt is a local event of the sender, whatever its fate.
  env.lamport = lamport_tick(env.from);

  if (drop_filter_ && drop_filter_(env)) {
    bytes_rejected_.add(size);
    count_drop(env, obs::DropCause::kFilter);
    logger_.log(queue_.now(), LogLevel::kDebug, "net",
                "filter dropped " + env.payload->type_name() + " " +
                    to_string(env.from) + "->" + to_string(env.to));
    return;
  }
  if (!connected(env.from, env.to)) {
    bytes_rejected_.add(size);
    count_drop(env, obs::DropCause::kDisconnected);
    return;
  }
  // Only traffic actually admitted to a channel counts as sent bytes; the
  // communication benches must not bill filtered or unroutable messages.
  bytes_sent_.add(size);
  obs::TraceEvent send_event;
  send_event.time = queue_.now();
  send_event.kind = obs::TraceEventKind::kMessageSend;
  send_event.a = env.from;
  send_event.b = env.to;
  send_event.detail = env.payload->type_name();
  send_event.lamport = env.lamport;
  env.send_eid = trace_.record(std::move(send_event));

  const std::uint64_t epoch = link_epoch(env.from, env.to);
  SimTime when;
  if (env.from == env.to) {
    when = queue_.now();  // local loopback: same instant, after queued work
  } else {
    const SimTime latency =
        latency_.min + rng_.next_below(latency_.max - latency_.min + 1);
    when = queue_.now() + latency;
    // Reliable FIFO channel: per ordered pair, deliveries never reorder.
    SimTime& tail =
        fifo_tails_[directed_index(slot_of(env.from), slot_of(env.to))];
    if (tail != 0) when = std::max(when, tail - 1);
    tail = when + 1;
  }
  queue_.schedule_at(when, [this, env = std::move(env), epoch]() mutable {
    deliver(std::move(env), epoch);
  });
}

void Network::deliver(Envelope env, std::uint64_t epoch_at_send) {
  // The pair must have stayed connected for the whole flight; a partition
  // (even a healed one) loses the message, per the model in paper
  // section 3.
  if (!connected(env.from, env.to) ||
      link_epoch(env.from, env.to) != epoch_at_send) {
    count_drop(env, obs::DropCause::kLinkEpoch);
    return;
  }
  ProcessEntry& receiver = entries_[slot_of(env.to)];
  ensure(static_cast<bool>(receiver.handler), "no delivery handler installed");
  delivered_.increment();
  // Lamport receive rule: the receiver's clock jumps past everything the
  // sender had seen at send time.
  receiver.lamport = std::max(receiver.lamport, env.lamport) + 1;
  obs::TraceEvent event;
  event.time = queue_.now();
  event.kind = obs::TraceEventKind::kMessageDeliver;
  event.a = env.from;
  event.b = env.to;
  event.detail = env.payload->type_name();
  event.lamport = receiver.lamport;
  event.cause = env.send_eid;
  trace_.record(std::move(event));
  receiver.handler(std::move(env));
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.messages_sent = sent_.value();
  out.messages_loopback = loopback_.value();
  out.messages_delivered = delivered_.value();
  out.messages_filtered = filtered_.value();
  out.messages_unroutable = unroutable_.value();
  out.messages_lost_in_flight = lost_in_flight_.value();
  out.messages_dropped = out.messages_filtered + out.messages_unroutable +
                         out.messages_lost_in_flight;
  out.bytes_sent = bytes_sent_.value();
  out.bytes_rejected = bytes_rejected_.value();
  return out;
}

std::optional<SimTime> Network::fifo_tail(ProcessId from, ProcessId to) const {
  const std::uint32_t sf = slot_of(from);
  const std::uint32_t st = slot_of(to);
  if (sf == kNoSlot || st == kNoSlot || sf == st) return std::nullopt;
  const std::size_t index = directed_index(sf, st);
  if (index >= fifo_tails_.size() || fifo_tails_[index] == 0) {
    return std::nullopt;
  }
  return fifo_tails_[index] - 1;
}

}  // namespace dynvote::sim
