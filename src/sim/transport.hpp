// Transport: the seam between the protocol layer and whatever carries
// its messages.
//
// Every protocol node talks to the world through exactly this surface:
// point-to-point sends, a clock, per-process timers, stable storage, and
// the observability sinks (trace, metrics, logger, Lamport clock). Two
// implementations exist:
//
//  * sim::SimTransport — the discrete-event simulator (sim/network.hpp
//    behind sim/event_queue.hpp): virtual time, deterministic, the
//    correctness oracle;
//  * runtime::ThreadTransport — one OS thread per process connected by
//    bounded lock-free SPSC rings, real monotonic time, a per-process
//    timer wheel (src/runtime/).
//
// The protocol state machines (dv/, baselines/) are written once against
// this interface and run unchanged on both; the cross-check harness
// (runtime/crosscheck.hpp) holds them to identical outcomes.
//
// Threading contract: every method takes the acting ProcessId (or an
// Envelope naming it). A call on behalf of process p may only be made
// from p's execution context — the event-loop thread in the simulator
// (trivially single-threaded) or p's own thread in the runtime backend.
// Implementations rely on this to keep per-process state unsynchronized.
#pragma once

#include <cstdint>
#include <string>

#include "sim/message.hpp"
#include "util/ids.hpp"
#include "util/inline_function.hpp"
#include "util/log.hpp"

namespace dynvote::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace dynvote::obs

namespace dynvote::sim {

class StableStorage;

/// Handle for a scheduled timer (0 is never issued).
using TimerToken = std::uint64_t;

/// Timer callback. Shares the event queue's inline capacity so the
/// simulator backend forwards actions without re-boxing them.
using TimerAction = InlineFunction<void()>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one envelope. Delivery is asynchronous, per-pair FIFO, and
  /// dropped when sender and receiver are not connected (or the link's
  /// epoch changes while the message is in flight — a partition loses
  /// in-flight traffic, paper section 3).
  virtual void send(Envelope env) = 0;

  /// The clock protocols timestamp their trace events with: virtual
  /// ticks in the simulator, microseconds of monotonic time since
  /// transport start in the runtime backend.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules `action` to run in process p's execution context after
  /// `delay` clock units. Returns a token for cancel_timer.
  virtual TimerToken schedule_timer(ProcessId p, SimTime delay,
                                    TimerAction action) = 0;

  /// Cancels a pending timer; false if it already fired or was cancelled.
  virtual bool cancel_timer(ProcessId p, TimerToken token) = 0;

  /// Process p's stable storage: survives crashes, lost only by
  /// crash_and_destroy_disk (paper footnote 4).
  [[nodiscard]] virtual StableStorage& storage(ProcessId p) = 0;

  /// Structured trace sink for p's events. The simulator shares one sink
  /// across processes (globally ordered eids); the runtime backend keeps
  /// one per process (eids are per-process there).
  [[nodiscard]] virtual obs::TraceSink& trace(ProcessId p) = 0;

  /// Counter/gauge/histogram registry for p's instruments.
  [[nodiscard]] virtual obs::MetricsRegistry& metrics(ProcessId p) = 0;

  /// Advances and returns p's Lamport clock — one tick per trace event a
  /// protocol records for a local step.
  virtual std::uint64_t lamport_tick(ProcessId p) = 0;

  /// Trace-event id of the topology change that last reshaped p's
  /// component (0 = none); the causal parent of view installs.
  [[nodiscard]] virtual std::uint64_t last_topology_eid(ProcessId p) const = 0;

  /// Structured log line attributed to p.
  virtual void log(ProcessId p, LogLevel level,
                   const std::string& message) = 0;
};

}  // namespace dynvote::sim
