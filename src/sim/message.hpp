// Message envelope and payload base.
//
// The network transports opaque payloads; protocol layers define concrete
// payload types. Payloads are immutable and shared: a broadcast allocates
// one payload and every envelope references it, which both saves memory
// and mirrors multicast (paper 4.4 notes the symmetric protocol suits
// hardware multicast).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/ids.hpp"

namespace dynvote::sim {

/// Base class for everything sent over the simulated network.
///
/// `encoded_size` must return the serialized size in bytes; the metrics
/// layer uses it for the communication benchmarks (experiment E4), so
/// implementations encode themselves through util/codec rather than
/// guessing.
class MessagePayload {
 public:
  virtual ~MessagePayload() = default;

  /// Human-readable type tag, for traces ("info", "attempt", ...).
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Serialized size in bytes.
  [[nodiscard]] virtual std::size_t encoded_size() const = 0;

 protected:
  MessagePayload() = default;
  MessagePayload(const MessagePayload&) = default;
  MessagePayload& operator=(const MessagePayload&) = default;
};

using PayloadPtr = std::shared_ptr<const MessagePayload>;

/// A routed message. `view` is the membership view the sender was in when
/// it sent the message; receivers process a message only within the same
/// view, which realizes the causal membership/message ordering the paper
/// requires in section 3.1.
///
/// `lamport` and `send_eid` are stamped by the network at send time:
/// the sender's Lamport clock (so the receiver can advance its own past
/// every event the sender had seen) and the trace-event id of the send
/// (so the delivery — or in-flight loss — can cite its cause). Senders
/// leave both zero.
struct Envelope {
  ProcessId from;
  ProcessId to;
  ViewId view;
  PayloadPtr payload;
  std::uint64_t lamport = 0;
  std::uint64_t send_eid = 0;
};

}  // namespace dynvote::sim
