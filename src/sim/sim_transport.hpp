// SimTransport: the discrete-event simulator as a Transport.
//
// A thin adapter over the Simulator's existing parts — Network for
// sends and Lamport clocks, EventQueue for timers, the shared TraceSink
// / MetricsRegistry / Logger / per-process StableStorage map. Owned by
// the Simulator itself (sim.transport()); protocol nodes hold only the
// Transport& and never see the Simulator.
#pragma once

#include "sim/transport.hpp"

namespace dynvote::sim {

class Simulator;

class SimTransport final : public Transport {
 public:
  explicit SimTransport(Simulator& sim) : sim_(sim) {}

  void send(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  TimerToken schedule_timer(ProcessId p, SimTime delay,
                            TimerAction action) override;
  bool cancel_timer(ProcessId p, TimerToken token) override;
  [[nodiscard]] StableStorage& storage(ProcessId p) override;
  [[nodiscard]] obs::TraceSink& trace(ProcessId p) override;
  [[nodiscard]] obs::MetricsRegistry& metrics(ProcessId p) override;
  std::uint64_t lamport_tick(ProcessId p) override;
  [[nodiscard]] std::uint64_t last_topology_eid(ProcessId p) const override;
  void log(ProcessId p, LogLevel level, const std::string& message) override;

 private:
  Simulator& sim_;
};

}  // namespace dynvote::sim
