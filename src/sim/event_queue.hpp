// Discrete-event scheduler.
//
// The whole library runs on virtual time: an event is a closure scheduled
// at a SimTime; ties are broken by insertion sequence so executions are
// fully deterministic (same seed => same trace, byte for byte).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "util/ids.hpp"

namespace dynvote::sim {

/// Token identifying a scheduled event so it can be cancelled.
using EventToken = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current virtual time. Starts at 0 and only advances when events run.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute virtual time `t` (>= now()).
  EventToken schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` ticks from now.
  EventToken schedule_after(SimTime delay, Action action);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled (cancelling twice is harmless).
  bool cancel(EventToken token);

  /// Runs the earliest pending event, advancing the clock to it.
  /// Returns false if the queue is empty.
  bool run_next();

  /// Runs events until none remain at time <= `t`, then advances the
  /// clock to `t`. Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number executed.
  std::size_t run_all(std::size_t max_events = 10'000'000);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

 private:
  using Key = std::pair<SimTime, EventToken>;

  SimTime now_ = 0;
  EventToken next_token_ = 1;
  std::size_t executed_ = 0;
  std::map<Key, Action> events_;
};

}  // namespace dynvote::sim
