// Discrete-event scheduler.
//
// The whole library runs on virtual time: an event is a closure scheduled
// at a SimTime; ties are broken by insertion sequence so executions are
// fully deterministic (same seed => same trace, byte for byte).
//
// Storage is a flat binary min-heap over (time, seq) rather than a
// red-black tree: push/pop touch a contiguous vector (no per-event node
// allocation, cache-friendly sift paths), and the callback type keeps
// captures up to ~100 bytes inline so the common scheduling path —
// including the network's delivery closure with its full Envelope —
// allocates nothing. Cancellation tombstones the entry in place; dead
// entries are discarded lazily when they surface at the heap top.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/ids.hpp"
#include "util/inline_function.hpp"

namespace dynvote::sim {

/// Token identifying a scheduled event so it can be cancelled.
using EventToken = std::uint64_t;

class EventQueue {
 public:
  /// Inline capacity (the 88-byte InlineFunction default) covers the
  /// network's delivery closure (an Envelope plus a pointer and an
  /// epoch, 64 bytes) with headroom while keeping one heap entry at
  /// exactly two cache lines; larger captures fall back to one heap
  /// box, never silently truncate. Same type as sim::TimerAction, so
  /// Transport::schedule_timer forwards into the queue move-only.
  using Action = InlineFunction<void()>;

  /// How a bounded run ended: the queue ran dry, or the event budget was
  /// exhausted with work still pending (a runaway schedule).
  enum class DrainStatus { kDrained, kEventLimit };

  struct DrainResult {
    std::size_t executed = 0;
    DrainStatus status = DrainStatus::kDrained;
  };

  static constexpr std::size_t kDefaultMaxEvents = 10'000'000;

  /// Current virtual time. Starts at 0 and only advances when events run.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute virtual time `t` (>= now()).
  EventToken schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` ticks from now.
  EventToken schedule_after(SimTime delay, Action action);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled (cancelling twice is harmless).
  bool cancel(EventToken token);

  /// Runs the earliest pending event, advancing the clock to it.
  /// Returns false if the queue is empty.
  bool run_next();

  /// Runs events until none remain at time <= `t`, then advances the
  /// clock to `t`. Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number executed. Prefer drain() when the caller must
  /// distinguish a drained queue from a tripped event budget.
  std::size_t run_all(std::size_t max_events = kDefaultMaxEvents);

  /// Like run_all, but reports whether the queue actually drained or the
  /// event budget stopped it with work still pending.
  DrainResult drain(std::size_t max_events = kDefaultMaxEvents);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime time = 0;
    EventToken token = 0;
    Action action;  // empty == cancelled (tombstone)
  };

  /// std::push_heap/pop_heap build a max-heap; order entries so the
  /// earliest (time, token) surfaces at the top.
  struct After {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return b.time < a.time || (b.time == a.time && b.token < a.token);
    }
  };

  /// Discards tombstones sitting at the heap top.
  void skim_tombstones();

  SimTime now_ = 0;
  EventToken next_token_ = 1;
  std::size_t executed_ = 0;
  std::size_t live_ = 0;  // heap entries that are not tombstones
  std::vector<Entry> heap_;
};

}  // namespace dynvote::sim
