// Simulator: the composition root for one simulated execution.
//
// Owns virtual time, the network, per-process stable storage, the random
// stream, the logger, and the registered nodes. Scenario scripts and the
// availability harness drive executions exclusively through this class.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/sim_transport.hpp"
#include "sim/stable_storage.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote::sim {

struct SimulatorOptions {
  std::uint64_t seed = 1;
  LatencyModel latency;
};

class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {});

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] Logger& logger() noexcept { return logger_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] Network& network() noexcept { return network_; }

  /// The Transport face of this simulator (sim/transport.hpp): what
  /// protocol nodes are constructed against.
  [[nodiscard]] SimTransport& transport() noexcept { return transport_; }

  /// Structured event trace for this execution (obs/trace.hpp). Message
  /// events are off by default; enable via trace().set_messages_enabled.
  [[nodiscard]] obs::TraceSink& trace() noexcept { return trace_; }
  [[nodiscard]] const obs::TraceSink& trace() const noexcept { return trace_; }

  /// Counter/gauge/histogram registry shared by the simulator layers.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Per-process stable storage; created on first use and retained for
  /// the lifetime of the simulation (survives node crashes).
  [[nodiscard]] StableStorage& storage(ProcessId p);

  /// Registers a node (a protocol instance). The process must not have
  /// been registered before. Takes ownership.
  void add_node(std::unique_ptr<Node> node);

  [[nodiscard]] Node& node(ProcessId p);
  [[nodiscard]] const ProcessSet& processes() const noexcept {
    return network_.all_processes();
  }

  // -- fault injection -------------------------------------------------------

  /// Partitions the network into the given disjoint groups (plus
  /// unchanged assignments for unmentioned processes).
  void set_components(const std::vector<ProcessSet>& groups);
  void merge_all();

  void crash(ProcessId p);
  void recover(ProcessId p);
  /// Crash with total loss of stable storage (paper footnote 4).
  void crash_and_destroy_disk(ProcessId p);

  // -- execution ---------------------------------------------------------------

  /// Runs every pending event (bounded by max_events as a runaway guard).
  /// Returns number of events executed. A tripped event budget logs a
  /// warning and leaves the queue non-empty — callers that must fail
  /// loudly check queue().empty() afterwards (Cluster::settle does).
  std::size_t run_to_quiescence(
      std::size_t max_events = EventQueue::kDefaultMaxEvents);

  /// Runs events with timestamps <= t and advances the clock to t.
  std::size_t run_until(SimTime t);

  /// Runs events for `delta` ticks of virtual time.
  std::size_t advance(SimTime delta) { return run_until(now() + delta); }

 private:
  Logger logger_;
  Rng rng_;
  EventQueue queue_;
  obs::TraceSink trace_;
  obs::MetricsRegistry metrics_;
  Network network_;  // references trace_/metrics_; keep it declared after
  SimTransport transport_{*this};
  std::map<ProcessId, std::unique_ptr<Node>> nodes_;
  std::map<ProcessId, StableStorage> storages_;
};

}  // namespace dynvote::sim
