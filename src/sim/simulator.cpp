#include "sim/simulator.hpp"

#include "util/ensure.hpp"

namespace dynvote::sim {

Simulator::Simulator(SimulatorOptions options)
    : rng_(options.seed),
      network_(queue_, Rng(options.seed ^ 0x9E3779B97F4A7C15ULL), logger_,
               options.latency, trace_, metrics_) {
  trace_.bind_metrics(metrics_);
}

StableStorage& Simulator::storage(ProcessId p) { return storages_[p]; }

void Simulator::add_node(std::unique_ptr<Node> node) {
  ensure(node != nullptr, "null node");
  const ProcessId p = node->id();
  ensure(!nodes_.contains(p), "node registered twice");
  network_.add_process(p);
  Node* raw = node.get();
  network_.set_delivery_handler(
      p, [raw](Envelope env) { raw->deliver_message(std::move(env)); });
  nodes_.emplace(p, std::move(node));
}

Node& Simulator::node(ProcessId p) {
  auto it = nodes_.find(p);
  ensure(it != nodes_.end(), "unknown node " + to_string(p));
  return *it->second;
}

void Simulator::set_components(const std::vector<ProcessSet>& groups) {
  network_.set_components(groups);
}

void Simulator::merge_all() { network_.merge_all(); }

void Simulator::crash(ProcessId p) {
  if (!network_.alive(p)) return;
  node(p).crash();
  network_.set_alive(p, false);
}

void Simulator::recover(ProcessId p) {
  if (network_.alive(p)) return;
  node(p).recover();
  network_.set_alive(p, true);
}

void Simulator::crash_and_destroy_disk(ProcessId p) {
  crash(p);
  storage(p).destroy();
}

std::size_t Simulator::run_to_quiescence(std::size_t max_events) {
  const EventQueue::DrainResult result = queue_.drain(max_events);
  if (result.status == EventQueue::DrainStatus::kEventLimit) {
    logger_.log(queue_.now(), LogLevel::kWarn, "sim",
                "run_to_quiescence stopped at the " +
                    std::to_string(max_events) + "-event budget with " +
                    std::to_string(queue_.pending()) +
                    " events still pending (runaway schedule?)");
  }
  return result.executed;
}

std::size_t Simulator::run_until(SimTime t) { return queue_.run_until(t); }

}  // namespace dynvote::sim
