#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote::sim {

// The SBO budget is chosen so one heap entry is exactly two cache
// lines; a capacity bump that silently fattens every scheduled event
// must fail here, not in a profile.
static_assert(sizeof(EventQueue::Action) == 112,
              "Action = 88-byte SBO + 3 dispatch pointers");
static_assert(alignof(EventQueue::Action) == alignof(std::max_align_t),
              "SBO storage must hold max-aligned captures");

EventToken EventQueue::schedule_at(SimTime t, Action action) {
  static_assert(sizeof(Entry) == 128, "one event entry = two cache lines");
  ensure(t >= now_, "scheduling into the past");
  ensure(static_cast<bool>(action), "scheduling an empty action");
  EventToken token = next_token_++;
  heap_.push_back(Entry{t, token, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), After{});
  ++live_;
  return token;
}

EventToken EventQueue::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(EventToken token) {
  // Linear scan, as before the heap rewrite: cancellation is a cold path
  // (timers being superseded), and tombstoning in place keeps the heap
  // intact — the entry is discarded when it reaches the top.
  for (Entry& entry : heap_) {
    if (entry.token == token && entry.action) {
      entry.action.reset();
      --live_;
      return true;
    }
  }
  return false;
}

void EventQueue::skim_tombstones() {
  while (!heap_.empty() && !heap_.front().action) {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    heap_.pop_back();
  }
}

bool EventQueue::run_next() {
  skim_tombstones();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), After{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  now_ = entry.time;
  --live_;
  ++executed_;
  entry.action();
  return true;
}

std::size_t EventQueue::run_until(SimTime t) {
  std::size_t count = 0;
  for (;;) {
    skim_tombstones();
    if (heap_.empty() || heap_.front().time > t) break;
    run_next();
    ++count;
  }
  if (now_ < t) now_ = t;
  return count;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  return drain(max_events).executed;
}

EventQueue::DrainResult EventQueue::drain(std::size_t max_events) {
  DrainResult result;
  while (result.executed < max_events && run_next()) ++result.executed;
  result.status = empty() ? DrainStatus::kDrained : DrainStatus::kEventLimit;
  return result;
}

}  // namespace dynvote::sim
