#include "sim/event_queue.hpp"

#include "util/ensure.hpp"

namespace dynvote::sim {

EventToken EventQueue::schedule_at(SimTime t, Action action) {
  ensure(t >= now_, "scheduling into the past");
  EventToken token = next_token_++;
  events_.emplace(Key{t, token}, std::move(action));
  return token;
}

EventToken EventQueue::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(EventToken token) {
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->first.second == token) {
      events_.erase(it);
      return true;
    }
  }
  return false;
}

bool EventQueue::run_next() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.first;
  Action action = std::move(it->second);
  events_.erase(it);
  ++executed_;
  action();
  return true;
}

std::size_t EventQueue::run_until(SimTime t) {
  std::size_t count = 0;
  while (!events_.empty() && events_.begin()->first.first <= t) {
    run_next();
    ++count;
  }
  if (now_ < t) now_ = t;
  return count;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && run_next()) ++count;
  return count;
}

}  // namespace dynvote::sim
