// Simulated per-process stable storage.
//
// The paper (section 4.4) requires each process to "write the change to a
// stable storage before responding to the message that caused the
// change". Storage lives in the Simulator, not in the Node, so it
// survives crashes; `destroy()` models the severe disk error of the
// paper's footnotes 2 and 4 (correctness kept, availability reduced).
//
// Two write surfaces exist per key:
//
//   * a *value* slot (`put`) — the whole-state snapshot / checkpoint;
//   * an append-only *log* (`append`) — the delta WAL the protocols
//     write on every step, truncated when a fresh checkpoint lands.
//
// Keys are interned once into small dense `KeyId`s (cold path); the hot
// persist path indexes a flat vector and never hashes or compares a
// string. The string overloads remain as thin shims for tests and
// legacy callers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote::sim {

class StableStorage {
 public:
  using KeyId = std::uint32_t;

  /// Interns `key`, returning its dense id. Idempotent; ids are stable
  /// for the lifetime of the storage (they survive destroy(), which
  /// wipes data, not the naming). Cold path — call once at wiring time.
  KeyId intern(std::string_view key);

  // -- hot-path API (interned keys, no string traffic) ---------------------

  /// Durably stores the buffer as the key's value, replacing any
  /// previous value. Reuses the capacity of the existing entry, so a hot
  /// persist path rewriting the same key settles into zero allocations.
  void put(KeyId key, const std::uint8_t* data, std::size_t size);

  /// Appends one record to the key's log. The log is a flat byte
  /// sequence — records carry their own framing (the WAL layer
  /// length-delimits via its codec).
  void append(KeyId key, const std::uint8_t* data, std::size_t size);

  /// Borrowed view of the key's value; nullptr when absent.
  [[nodiscard]] const std::vector<std::uint8_t>* value(KeyId key) const;

  /// Borrowed view of the key's log bytes (empty vector when never
  /// appended or truncated).
  [[nodiscard]] const std::vector<std::uint8_t>& log(KeyId key) const;

  /// Records appended since the last truncate, and their total bytes.
  [[nodiscard]] std::uint64_t log_records(KeyId key) const;
  [[nodiscard]] std::size_t log_bytes(KeyId key) const;

  /// Drops the log (checkpoint compaction). Keeps the buffer capacity:
  /// steady-state compaction does not re-grow the log allocation.
  void truncate_log(KeyId key);

  // -- string shims (tests + cold callers) ---------------------------------

  void put(const std::string& key, std::vector<std::uint8_t> value);
  void put(const std::string& key, const std::uint8_t* data,
           std::size_t size);

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const;

  bool erase(const std::string& key);

  /// Wipes everything — values and logs: the "severe disk crash" fault.
  /// A process recovering afterwards comes up with no history, i.e. with
  /// Last_Primary = (infinity, -1). Interned ids stay valid.
  void destroy();

  [[nodiscard]] bool destroyed_once() const noexcept { return destroyed_; }

  /// Keys currently holding data (a value, a non-empty log, or both).
  [[nodiscard]] std::size_t entry_count() const noexcept;

  // -- write metrics (stable-storage traffic is part of the protocol's
  //    cost story) --
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  /// Appends are counted in writes() too; this splits them out.
  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }

 private:
  struct Entry {
    bool has_value = false;
    std::vector<std::uint8_t> value;
    std::vector<std::uint8_t> log;
    std::uint64_t log_records = 0;
  };

  Entry& entry(KeyId key);
  [[nodiscard]] const Entry& entry(KeyId key) const;

  std::vector<Entry> entries_;  // indexed by KeyId
  std::map<std::string, KeyId, std::less<>> ids_;
  bool destroyed_ = false;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t appends_ = 0;
};

}  // namespace dynvote::sim
