// Simulated per-process stable storage.
//
// The paper (section 4.4) requires each process to "write the change to a
// stable storage before responding to the message that caused the
// change". Storage lives in the Simulator, not in the Node, so it
// survives crashes; `destroy()` models the severe disk error of the
// paper's footnotes 2 and 4 (correctness kept, availability reduced).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dynvote::sim {

class StableStorage {
 public:
  /// Durably stores `value` under `key`, replacing any previous value.
  void put(const std::string& key, std::vector<std::uint8_t> value);

  /// Same, copying from a borrowed buffer. Reuses the capacity of the
  /// existing entry, so a hot persist path rewriting the same key settles
  /// into zero allocations per write.
  void put(const std::string& key, const std::uint8_t* data,
           std::size_t size);

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const;

  bool erase(const std::string& key);

  /// Wipes everything: the "severe disk crash" fault. A process
  /// recovering afterwards comes up with no history, i.e. with
  /// Last_Primary = (infinity, -1).
  void destroy();

  [[nodiscard]] bool destroyed_once() const noexcept { return destroyed_; }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }

  // -- write metrics (stable-storage traffic is part of the protocol's
  //    cost story) --
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  std::map<std::string, std::vector<std::uint8_t>> entries_;
  bool destroyed_ = false;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace dynvote::sim
