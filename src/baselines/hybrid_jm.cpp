#include "baselines/hybrid_jm.hpp"

#include "quorum/linear_order.hpp"
#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote {

HybridJmProtocol::HybridJmProtocol(sim::Transport& transport, ProcessId id,
                                   DvConfig config)
    : BasicDvProtocol(transport, id, std::move(config)) {
  ensure(config_.core.size() >= 3,
         "hybrid voting needs a core of at least three processes");
}

HybridJmProtocol::HybridJmProtocol(sim::Simulator& sim, ProcessId id,
                                   DvConfig config)
    : HybridJmProtocol(sim.transport(), id, std::move(config)) {}

bool HybridJmProtocol::hybrid_rule(const ProcessSet& S, const ProcessSet& M) {
  if (S.size() > 3) {
    return M.contains_majority_of(S) ||
           (M.contains_exact_half_of(S) && tie_break_favors(S, M));
  }
  // Static floor: majority of the (<= 3)-member reference; a single
  // process can never satisfy this.
  return M.intersection_size(S) >= 2;
}

Eligibility HybridJmProtocol::decide(const QuorumCalculus& /*calc*/,
                                     const StepAggregates& agg,
                                     const ProcessSet& M) const {
  if (!agg.max_primary) {
    return {false, "Max_Primary = (∞,-1): no member knows a primary"};
  }
  if (!hybrid_rule(agg.max_primary->members, M)) {
    return {false, "hybrid rule rejects succession of " +
                       agg.max_primary->to_string()};
  }
  for (const Session& attempt : agg.max_ambiguous) {
    if (!hybrid_rule(attempt.members, M)) {
      return {false, "hybrid rule rejects ambiguous attempt " +
                         attempt.to_string()};
    }
  }
  return {true, "hybrid rule satisfied"};
}

Session HybridJmProtocol::make_formed_record(const Session& actual) const {
  if (actual.members.size() >= 3) return actual;
  // Keep the session's agreed (>= 3)-member reference set — the static
  // floor. Every member records the same Max_Primary, so the references
  // stay identical across the quorum.
  const auto& reference = pending_aggregates().max_primary;
  ensure(reference.has_value(), "no reference quorum to keep");
  ensure(reference->members.size() >= 3, "reference below the static floor");
  return Session{reference->members, actual.number};
}

}  // namespace dynvote
