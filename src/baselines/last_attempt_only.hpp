// Baseline: record only the most recent attempt (paper section 4.6).
//
// The paper's strawman "trivial approach": keep the attempt step, but
// remember only the latest attempted session instead of the whole
// Ambiguous_Sessions list. Section 4.6 constructs a 5-process execution
// (sessions S1, S2, S3, S3') in which this forms two concurrent primary
// components; experiment E2 replays that execution verbatim.
//
// Implementation: the full basic protocol with the (deliberately
// unsound) ambiguous_record_limit knob set to 1.
#pragma once

#include "dv/basic_protocol.hpp"

namespace dynvote {

class LastAttemptOnlyProtocol : public BasicDvProtocol {
 public:
  LastAttemptOnlyProtocol(sim::Transport& transport, ProcessId id,
                          DvConfig config)
      : BasicDvProtocol(transport, id, with_limit(std::move(config))) {}
  LastAttemptOnlyProtocol(sim::Simulator& sim, ProcessId id, DvConfig config)
      : BasicDvProtocol(sim, id, with_limit(std::move(config))) {}

 private:
  static DvConfig with_limit(DvConfig config) {
    config.ambiguous_record_limit = 1;
    return config;
  }
};

}  // namespace dynvote
