#include "baselines/last_attempt_only.hpp"

// Header-only adapter over BasicDvProtocol; this translation unit anchors
// the target in the build so the library exposes one object per baseline.
namespace dynvote {}
