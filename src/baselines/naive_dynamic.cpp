#include "baselines/naive_dynamic.hpp"

#include "sim/simulator.hpp"
#include "sim/stable_storage.hpp"
#include "util/ensure.hpp"

namespace dynvote {

namespace {
constexpr const char* kStateKey = "naive.state";
}  // namespace

NaiveDynamicProtocol::NaiveDynamicProtocol(sim::Transport& transport,
                                           ProcessId id, DvConfig config)
    : SessionProtocolBase(transport, id, /*max_phases=*/1),
      state_(ProtocolState::initial(config.core, id)),
      config_(std::move(config)) {
  persist();
}

NaiveDynamicProtocol::NaiveDynamicProtocol(sim::Simulator& sim, ProcessId id,
                                           DvConfig config)
    : NaiveDynamicProtocol(sim.transport(), id, std::move(config)) {}

void NaiveDynamicProtocol::persist() {
  Encoder& enc = scratch_encoder();
  state_.encode(enc);
  storage().put(kStateKey, enc.bytes().data(), enc.size());
}

void NaiveDynamicProtocol::handle_recover() {
  const auto bytes = storage().get(kStateKey);
  if (bytes) {
    Decoder dec(*bytes);
    state_ = ProtocolState::decode(dec);
  } else {
    state_ = ProtocolState::after_disk_loss(id());
    persist();
  }
}

void NaiveDynamicProtocol::begin_session(const View& view) {
  (void)view;
  auto info = std::make_shared<InfoPayload>();
  info->session_number = state_.session_number;
  info->has_history = state_.has_history;
  info->last_primary = state_.last_primary;
  // No ambiguous sessions — that is the point of this baseline.
  send_phase(0, std::move(info));
}

void NaiveDynamicProtocol::on_phase_complete(int phase,
                                             const PhaseMessages& messages) {
  ensure(phase == 0, "naive protocol has a single phase");
  const ProcessSet& M = session_view().members;
  const StepAggregates agg = aggregate_step1(as_infos(messages));
  const QuorumCalculus calc(config_.core, config_.min_quorum);
  const Eligibility verdict = evaluate_eligibility(calc, agg, M);
  if (!verdict.eligible) {
    abort_session(verdict.reason);
    return;
  }
  // Install immediately: no attempt round, no durable trace for members
  // that detach before this point.
  state_.session_number = agg.max_session + 1;
  const Session session{M, state_.session_number};
  state_.apply_form(session);
  persist();
  mark_primary(session);
}

}  // namespace dynvote
