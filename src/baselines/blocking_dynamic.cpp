#include "baselines/blocking_dynamic.hpp"

namespace dynvote {

Eligibility BlockingDynamicProtocol::decide(const QuorumCalculus& calc,
                                            const StepAggregates& agg,
                                            const ProcessSet& M) const {
  const Eligibility base = evaluate_eligibility(calc, agg, M);
  if (!base.eligible) return base;
  // 2PC-style recovery: an unresolved attempt blocks until ALL its
  // members are back — not merely a majority of them.
  for (const Session& attempt : agg.max_ambiguous) {
    if (!attempt.members.is_subset_of(M)) {
      return {false, "blocked: attempt " + attempt.to_string() +
                         " unresolved and not all its members reconnected"};
    }
  }
  return base;
}

}  // namespace dynvote
