// Baseline: blocking dynamic voting (the [Jajodia-Mutchler 90] /
// [Amir 95] class, per the paper's introduction).
//
// These protocols avoid the inconsistency of naive dynamic voting with a
// Two-Phase-Commit-style installation: a process whose latest quorum
// attempt is unresolved ("uncertain") must wait until EVERY member of
// that attempt is reconnected before it can take part in a new quorum.
//
// This is consistent but blocking: after a failure during quorum
// formation, a majority of the attempters is not enough — one crashed
// attempter stalls everyone (and one voluntary leaver stalls the whole
// system, as the paper notes). Our protocol in contrast proceeds with
// any Sub_Quorum of the attempt. Experiments E5/E6 quantify the gap.
//
// Implementation: the basic protocol with the attempt constraint
// strengthened from Sub_Quorum(A, M) to A.M ⊆ M.
#pragma once

#include "dv/basic_protocol.hpp"

namespace dynvote {

class BlockingDynamicProtocol : public BasicDvProtocol {
 public:
  using BasicDvProtocol::BasicDvProtocol;

 protected:
  [[nodiscard]] Eligibility decide(const QuorumCalculus& calc,
                                   const StepAggregates& agg,
                                   const ProcessSet& M) const override;
};

}  // namespace dynvote
