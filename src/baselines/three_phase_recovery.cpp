#include "baselines/three_phase_recovery.hpp"

#include "util/ensure.hpp"

namespace dynvote {

void ThreePhaseRecoveryProtocol::on_phase_complete(
    int phase, const PhaseMessages& messages) {
  switch (phase) {
    case 0:
      // Same decision as ours — but even when it succeeds, three explicit
      // resolution rounds run before anyone dares to attempt.
      if (run_decision(messages)) {
        // The decision step may have merged the participant sets; those
        // must be durable before the propose round exposes them (section
        // 4.4). run_decision only persists on rejection.
        persist();
        send_phase(1, std::make_shared<RoundPayload>(1, "3pc.propose"));
      }
      return;
    case 1:
      send_phase(2, std::make_shared<RoundPayload>(2, "3pc.vote"));
      return;
    case 2:
      send_phase(3, std::make_shared<RoundPayload>(3, "3pc.decide"));
      return;
    case 3:
      record_and_send_attempt(4);
      return;
    case 4:
      run_form_step(messages);
      return;
    default:
      ensure(false, "unexpected phase");
  }
}

}  // namespace dynvote
