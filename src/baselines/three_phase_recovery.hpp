// Baseline: explicit three-phase recovery before installation
// (the [Malloth-Schiper 95] approach the paper contrasts with).
//
// [17] resolves the status of past quorums by running Chandra-Toueg
// style three-phase consensus BEFORE installing a new quorum: "when a
// majority of the previous quorum reconnects, at least five
// communication rounds are needed in order to form a new quorum"
// (paper section 1). Our protocol folds resolution into installation
// and needs only two.
//
// Modelled rounds: info, resolve-propose, resolve-vote, resolve-decide,
// attempt — then form on receipt of all attempts. The quorum rules are
// identical to our basic protocol (this baseline is *correct*; the cost
// is latency and messages, which experiment E4 measures).
#pragma once

#include "dv/basic_protocol.hpp"

namespace dynvote {

class ThreePhaseRecoveryProtocol : public BasicDvProtocol {
 public:
  ThreePhaseRecoveryProtocol(sim::Transport& transport, ProcessId id,
                             DvConfig config)
      : BasicDvProtocol(transport, id, std::move(config), /*max_phases=*/5) {}
  ThreePhaseRecoveryProtocol(sim::Simulator& sim, ProcessId id, DvConfig config)
      : BasicDvProtocol(sim, id, std::move(config), /*max_phases=*/5) {}

 protected:
  void on_phase_complete(int phase, const PhaseMessages& messages) override;
};

}  // namespace dynvote
