// Baseline: the Jajodia-Mutchler hybrid algorithm [13].
//
// The paper characterizes it in one line: "combines dynamic voting in
// large quorums with static voting in quorums of size three, ruling out
// quorums consisting of a single process". We model exactly that rule on
// top of our (consistent) session machinery, isolating the quorum-rule
// difference for the availability comparison:
//
//   * previous quorum S with |S| > 3: the usual dynamic-linear rule
//     (majority of S, or exactly half plus the top-ranked member);
//   * previous quorum S with |S| <= 3: static majority of S — at least
//     two members — so no singleton quorum can ever form;
//   * the recorded quorum never shrinks below three members: forming
//     with |M| < 3 keeps the previous (>= 3)-member set as the recorded
//     reference, as in the hybrid algorithm's static floor.
//
// Neither this rule nor ours dominates the other (paper section 1); the
// E5/E8 benches show schedules going each way.
#pragma once

#include "dv/basic_protocol.hpp"

namespace dynvote {

class HybridJmProtocol : public BasicDvProtocol {
 public:
  HybridJmProtocol(sim::Transport& transport, ProcessId id, DvConfig config);
  HybridJmProtocol(sim::Simulator& sim, ProcessId id, DvConfig config);

 protected:
  [[nodiscard]] Eligibility decide(const QuorumCalculus& calc,
                                   const StepAggregates& agg,
                                   const ProcessSet& M) const override;
  [[nodiscard]] Session make_formed_record(const Session& actual) const override;

 private:
  [[nodiscard]] static bool hybrid_rule(const ProcessSet& S,
                                        const ProcessSet& M);
};

}  // namespace dynvote
