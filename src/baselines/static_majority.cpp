#include "baselines/static_majority.hpp"

#include "quorum/linear_order.hpp"
#include "sim/simulator.hpp"

namespace dynvote {

StaticMajorityProtocol::StaticMajorityProtocol(sim::Transport& transport,
                                               ProcessId id,
                                               StaticMajorityConfig config)
    : SessionProtocolBase(transport, id, /*max_phases=*/0),
      config_(std::move(config)) {}

StaticMajorityProtocol::StaticMajorityProtocol(sim::Simulator& sim,
                                               ProcessId id,
                                               StaticMajorityConfig config)
    : StaticMajorityProtocol(sim.transport(), id, std::move(config)) {}

void StaticMajorityProtocol::begin_session(const View& view) {
  const ProcessSet& M = view.members;
  bool primary = M.contains_majority_of(config_.core);
  if (!primary && config_.linear_tie_break &&
      M.contains_exact_half_of(config_.core)) {
    primary = tie_break_favors(config_.core, M);
  }
  if (primary) {
    // Static quorums need no session-number machinery for consistency
    // (all quorums pairwise intersect); the globally increasing view id
    // doubles as a monotone session number for the observers.
    mark_primary(Session{M, static_cast<SessionNumber>(view.id.value())});
  } else {
    abort_session("no static majority of the core group");
  }
}

void StaticMajorityProtocol::on_phase_complete(int /*phase*/,
                                               const PhaseMessages& /*messages*/) {
  // Unreachable: the protocol has no communication phases.
}

}  // namespace dynvote
