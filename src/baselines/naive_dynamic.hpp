// Baseline: naive dynamic voting — NO attempt step.
//
// The protocol class of [Davcev-Burkhard 85], [Paris-Long 88] and
// [El Abbadi-Dani 91] as characterized by the paper's introduction: each
// process keeps only its last formed quorum; on a membership change the
// members exchange that state (one round) and immediately install the
// new quorum if it is a Sub_Quorum of the max known one.
//
// Because nothing records *attempts*, the paper's section-1 scenario
// splits the system into two concurrently live quorums: a member that
// detaches just before installing has no trace of the quorum the others
// formed. Experiment E1 reproduces exactly that inconsistency; the
// consistency checker reports it as a measurement, not a crash.
#pragma once

#include "dv/basic_protocol.hpp"
#include "dv/protocol_base.hpp"
#include "dv/state.hpp"

namespace dynvote {

class NaiveDynamicProtocol : public SessionProtocolBase {
 public:
  NaiveDynamicProtocol(sim::Transport& transport, ProcessId id,
                       DvConfig config);
  NaiveDynamicProtocol(sim::Simulator& sim, ProcessId id, DvConfig config);

  [[nodiscard]] const ProtocolState& state() const noexcept { return state_; }

 protected:
  void begin_session(const View& view) override;
  void on_phase_complete(int phase, const PhaseMessages& messages) override;
  void handle_recover() override;

 private:
  void persist();

  ProtocolState state_;
  DvConfig config_;
};

}  // namespace dynvote
