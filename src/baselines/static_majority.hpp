// Baseline: static majority voting.
//
// The classic quorum rule the dynamic-voting literature compares against
// (paper section 1): a component is the primary iff it contains a strict
// majority of the fixed core group W0 — optionally, with dynamic linear
// voting's tie-break at exactly half. Decides locally from the membership
// view: zero communication rounds, trivially consistent (all majorities
// intersect), and the least available option under repeated partitions.
#pragma once

#include "dv/protocol_base.hpp"
#include "util/process_set.hpp"

namespace dynvote {

struct StaticMajorityConfig {
  ProcessSet core;
  /// If true, a component holding exactly half of W0 including the
  /// top-ranked member also qualifies (weighted static linear voting).
  bool linear_tie_break = false;
};

class StaticMajorityProtocol : public SessionProtocolBase {
 public:
  StaticMajorityProtocol(sim::Transport& transport, ProcessId id,
                         StaticMajorityConfig config);
  StaticMajorityProtocol(sim::Simulator& sim, ProcessId id,
                         StaticMajorityConfig config);

 protected:
  void begin_session(const View& view) override;
  void on_phase_complete(int phase, const PhaseMessages& messages) override;

 private:
  StaticMajorityConfig config_;
};

}  // namespace dynvote
