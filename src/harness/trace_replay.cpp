#include "harness/trace_replay.hpp"

#include <algorithm>
#include <iterator>

namespace dynvote {

namespace {

obs::TraceEventKind kind_from_string(std::string_view s) {
  using K = obs::TraceEventKind;
  for (const K k :
       {K::kMessageSend, K::kMessageDrop, K::kMessageDeliver,
        K::kTopologyChange, K::kProcessCrash, K::kProcessRecover,
        K::kViewInstalled, K::kSessionAttempt, K::kSessionFormed,
        K::kSessionAbort, K::kPrimaryLost, K::kAmbiguityRecord,
        K::kAmbiguityResolved, K::kAmbiguityAdopted}) {
    if (to_string(k) == s) return k;
  }
  throw JsonError("trace: unknown event kind '" + std::string(s) + "'");
}

JsonValue process_set_to_json(const ProcessSet& set) {
  JsonValue arr = JsonValue::array();
  for (const ProcessId p : set) {
    arr.push_back(JsonValue(static_cast<std::uint64_t>(p.value())));
  }
  return arr;
}

ProcessSet process_set_from_json(const JsonValue& value) {
  std::vector<ProcessId> members;
  for (const JsonValue& entry : value.as_array()) {
    members.emplace_back(static_cast<std::uint32_t>(entry.as_uint()));
  }
  return ProcessSet(std::move(members));
}

}  // namespace

TraceCheckResult check_trace(const TraceMetaAndEvents& trace,
                             TruncationPolicy truncation) {
  TraceCheckResult result;
  result.ambiguity_bound = trace.meta.ambiguity_bound;
  if (trace.meta.overwritten > 0) {
    result.truncated = true;
    if (truncation == TruncationPolicy::kFail) {
      result.violations.push_back(Violation{
          "truncated-trace",
          std::to_string(trace.meta.overwritten) +
              " events evicted by the ring bound before export; the "
              "stream is a suffix, so replay verdicts are not evidence "
              "(pass TruncationPolicy::kWarn to accept the suffix)"});
    }
  }

  ConsistencyChecker checker(trace.meta.core, /*seed_initial=*/true);
  for (const obs::TraceEvent& event : trace.events) {
    switch (event.kind) {
      case obs::TraceEventKind::kSessionAttempt:
        ++result.attempts;
        checker.on_attempt(event.time, event.a,
                           Session{event.members, event.number});
        break;
      case obs::TraceEventKind::kSessionFormed:
        checker.on_formed(event.time, event.a,
                          Session{event.members, event.number},
                          static_cast<int>(event.value));
        break;
      case obs::TraceEventKind::kPrimaryLost:
        checker.on_primary_lost(event.time, event.a);
        break;
      case obs::TraceEventKind::kSessionAbort:
        ++result.aborts;
        checker.on_session_rejected(
            event.time, event.a,
            View{ViewId(static_cast<std::uint64_t>(event.number)),
                 event.members},
            event.detail);
        break;
      case obs::TraceEventKind::kAmbiguityRecord:
        result.max_ambiguous = std::max(result.max_ambiguous, event.value);
        break;
      default:
        break;  // message/topology events carry no correctness obligations
    }
  }
  auto checked = checker.check_all();
  result.violations.insert(result.violations.end(),
                           std::make_move_iterator(checked.begin()),
                           std::make_move_iterator(checked.end()));
  result.formed_sessions = checker.formed_session_count();
  if (result.ambiguity_bound != 0) {
    result.ambiguity_ok = result.max_ambiguous <= result.ambiguity_bound;
  }
  return result;
}

JsonValue trace_to_json(const obs::TraceMeta& meta,
                        const obs::TraceSink& sink) {
  JsonValue meta_json = JsonValue::object();
  meta_json.set("schema_version", JsonValue(kTraceSchemaVersion));
  meta_json.set("protocol", JsonValue(meta.protocol));
  meta_json.set("n", JsonValue(static_cast<std::uint64_t>(meta.n)));
  meta_json.set("min_quorum",
                JsonValue(static_cast<std::uint64_t>(meta.min_quorum)));
  meta_json.set("seed", JsonValue(meta.seed));
  meta_json.set("core", process_set_to_json(meta.core));
  meta_json.set("ambiguity_bound",
                JsonValue(static_cast<std::uint64_t>(meta.ambiguity_bound)));
  meta_json.set("overwritten", JsonValue(sink.overwritten()));

  JsonValue events = JsonValue::array();
  for (const obs::TraceEvent& event : sink.events()) {
    JsonValue e = JsonValue::object();
    e.set("t", JsonValue(event.time));
    e.set("k", JsonValue(to_string(event.kind)));
    e.set("a", JsonValue(static_cast<std::uint64_t>(event.a.value())));
    // Zero-valued fields are omitted: they are the defaults the loader
    // restores, and dropping them keeps big traces compact.
    if (event.b != ProcessId{}) {
      e.set("b", JsonValue(static_cast<std::uint64_t>(event.b.value())));
    }
    if (event.number != 0) e.set("n", JsonValue(event.number));
    if (event.value != 0) e.set("v", JsonValue(event.value));
    if (!event.members.empty()) e.set("m", process_set_to_json(event.members));
    if (!event.detail.empty()) e.set("d", JsonValue(event.detail));
    // Causal fields. "e" is always present (every recorded event has an
    // id); the clock and cause keep the zero-omitted convention.
    e.set("e", JsonValue(event.eid));
    if (event.lamport != 0) e.set("l", JsonValue(event.lamport));
    if (event.cause != 0) e.set("c", JsonValue(event.cause));
    events.push_back(std::move(e));
  }

  JsonValue out = JsonValue::object();
  out.set("meta", std::move(meta_json));
  out.set("events", std::move(events));
  return out;
}

TraceMetaAndEvents load_trace_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  TraceMetaAndEvents out;

  const JsonValue& meta = doc.at("meta");
  if (meta.find("schema_version") == nullptr ||
      meta.at("schema_version").as_int() != kTraceSchemaVersion) {
    throw JsonError("trace: unsupported schema version (need " +
                    std::to_string(kTraceSchemaVersion) + ")");
  }
  out.meta.protocol = meta.at("protocol").as_string();
  out.meta.n = static_cast<std::uint32_t>(meta.at("n").as_uint());
  out.meta.min_quorum = static_cast<std::size_t>(meta.at("min_quorum").as_uint());
  out.meta.seed = meta.at("seed").as_uint();
  out.meta.core = process_set_from_json(meta.at("core"));
  out.meta.ambiguity_bound =
      static_cast<std::size_t>(meta.at("ambiguity_bound").as_uint());
  if (const JsonValue* ow = meta.find("overwritten")) {
    out.meta.overwritten = ow->as_uint();
  }

  for (const JsonValue& e : doc.at("events").as_array()) {
    obs::TraceEvent event;
    event.time = e.at("t").as_uint();
    event.kind = kind_from_string(e.at("k").as_string());
    event.a = ProcessId(static_cast<std::uint32_t>(e.at("a").as_uint()));
    if (const JsonValue* b = e.find("b")) {
      event.b = ProcessId(static_cast<std::uint32_t>(b->as_uint()));
    }
    if (const JsonValue* n = e.find("n")) event.number = n->as_int();
    if (const JsonValue* v = e.find("v")) event.value = v->as_uint();
    if (const JsonValue* m = e.find("m")) {
      event.members = process_set_from_json(*m);
    }
    if (const JsonValue* d = e.find("d")) event.detail = d->as_string();
    event.eid = e.at("e").as_uint();
    if (const JsonValue* l = e.find("l")) event.lamport = l->as_uint();
    if (const JsonValue* c = e.find("c")) event.cause = c->as_uint();
    out.events.push_back(std::move(event));
  }
  return out;
}

}  // namespace dynvote
