#include "harness/trace_replay.hpp"

#include <algorithm>
#include <charconv>
#include <iterator>

#include "util/ensure.hpp"

namespace dynvote {

namespace {

JsonValue process_set_to_json(const ProcessSet& set) {
  JsonValue arr = JsonValue::array();
  arr.reserve(set.size());
  for (const ProcessId p : set) {
    arr.push_back(JsonValue(static_cast<std::uint64_t>(p.value())));
  }
  return arr;
}

ProcessSet process_set_from_json(const JsonValue& value) {
  std::vector<ProcessId> members;
  members.reserve(value.as_array().size());
  for (const JsonValue& entry : value.as_array()) {
    members.emplace_back(static_cast<std::uint32_t>(entry.as_uint()));
  }
  return ProcessSet(std::move(members));
}

}  // namespace

TraceCheckResult check_trace(const TraceMetaAndEvents& trace,
                             TruncationPolicy truncation) {
  TraceCheckResult result;
  result.ambiguity_bound = trace.meta.ambiguity_bound;
  if (trace.meta.overwritten > 0) {
    result.truncated = true;
    if (truncation == TruncationPolicy::kFail) {
      result.violations.push_back(Violation{
          "truncated-trace",
          std::to_string(trace.meta.overwritten) +
              " events evicted by the ring bound before export; the "
              "stream is a suffix, so replay verdicts are not evidence "
              "(pass TruncationPolicy::kWarn to accept the suffix)"});
    }
  }

  ConsistencyChecker checker(trace.meta.core, /*seed_initial=*/true);
  for (const obs::TraceEvent& event : trace.events) {
    switch (event.kind) {
      case obs::TraceEventKind::kSessionAttempt:
        ++result.attempts;
        checker.on_attempt(event.time, event.a,
                           Session{event.members, event.number});
        break;
      case obs::TraceEventKind::kSessionFormed:
        checker.on_formed(event.time, event.a,
                          Session{event.members, event.number},
                          static_cast<int>(event.value));
        break;
      case obs::TraceEventKind::kPrimaryLost:
        checker.on_primary_lost(event.time, event.a);
        break;
      case obs::TraceEventKind::kSessionAbort:
        ++result.aborts;
        checker.on_session_rejected(
            event.time, event.a,
            View{ViewId(static_cast<std::uint64_t>(event.number)),
                 event.members},
            event.detail);
        break;
      case obs::TraceEventKind::kAmbiguityRecord:
        result.max_ambiguous = std::max(result.max_ambiguous, event.value);
        break;
      default:
        break;  // message/topology events carry no correctness obligations
    }
  }
  auto checked = checker.check_all();
  result.violations.insert(result.violations.end(),
                           std::make_move_iterator(checked.begin()),
                           std::make_move_iterator(checked.end()));
  result.formed_sessions = checker.formed_session_count();
  if (result.ambiguity_bound != 0) {
    result.ambiguity_ok = result.max_ambiguous <= result.ambiguity_bound;
  }
  return result;
}

JsonValue trace_to_json(const obs::TraceMeta& meta,
                        const obs::TraceSink& sink) {
  JsonValue meta_json = JsonValue::object();
  meta_json.reserve(8);
  meta_json.set("schema_version", JsonValue(kTraceSchemaVersion));
  meta_json.set("protocol", JsonValue(meta.protocol));
  meta_json.set("n", JsonValue(static_cast<std::uint64_t>(meta.n)));
  meta_json.set("min_quorum",
                JsonValue(static_cast<std::uint64_t>(meta.min_quorum)));
  meta_json.set("seed", JsonValue(meta.seed));
  meta_json.set("core", process_set_to_json(meta.core));
  meta_json.set("ambiguity_bound",
                JsonValue(static_cast<std::uint64_t>(meta.ambiguity_bound)));
  // Sharded-fleet shape; omitted when zero so single-group traces (the
  // overwhelmingly common case) serialize byte-identically to before.
  if (meta.num_groups != 0) {
    meta_json.set("num_groups",
                  JsonValue(static_cast<std::uint64_t>(meta.num_groups)));
    meta_json.set("group_size",
                  JsonValue(static_cast<std::uint64_t>(meta.group_size)));
  }
  meta_json.set("overwritten", JsonValue(sink.overwritten()));

  JsonValue events = JsonValue::array();
  events.reserve(sink.events().size());
  for (const obs::TraceEvent& event : sink.events()) {
    events.push_back(obs::to_json(event));
  }

  JsonValue out = JsonValue::object();
  out.set("meta", std::move(meta_json));
  out.set("events", std::move(events));
  return out;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[21];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

void append_set(std::string& out, const ProcessSet& set) {
  out.push_back('[');
  bool first = true;
  for (const ProcessId p : set) {
    if (!first) out.push_back(',');
    first = false;
    append_u64(out, p.value());
  }
  out.push_back(']');
}

}  // namespace

std::string trace_json_string(const obs::TraceMeta& meta,
                              const obs::TraceSink& sink) {
  // Field-for-field the schema of trace_to_json — a unit test holds the
  // two outputs byte-identical. Kind names are plain identifiers, so only
  // "protocol" and "d" go through json_escape.
  std::string out;
  out.reserve(128 + sink.events().size() * 72);
  out += "{\"meta\":{\"schema_version\":";
  append_i64(out, kTraceSchemaVersion);
  out += ",\"protocol\":";
  json_escape(out, meta.protocol);
  out += ",\"n\":";
  append_u64(out, meta.n);
  out += ",\"min_quorum\":";
  append_u64(out, meta.min_quorum);
  out += ",\"seed\":";
  append_u64(out, meta.seed);
  out += ",\"core\":";
  append_set(out, meta.core);
  out += ",\"ambiguity_bound\":";
  append_u64(out, meta.ambiguity_bound);
  if (meta.num_groups != 0) {
    out += ",\"num_groups\":";
    append_u64(out, meta.num_groups);
    out += ",\"group_size\":";
    append_u64(out, meta.group_size);
  }
  out += ",\"overwritten\":";
  append_u64(out, sink.overwritten());
  out += "},\"events\":[";
  bool first = true;
  for (const obs::TraceEvent& event : sink.events()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"t\":";
    append_u64(out, event.time);
    out += ",\"k\":\"";
    out += to_string(event.kind);
    out += "\",\"a\":";
    append_u64(out, event.a.value());
    if (event.b != ProcessId{}) {
      out += ",\"b\":";
      append_u64(out, event.b.value());
    }
    if (event.number != 0) {
      out += ",\"n\":";
      append_i64(out, event.number);
    }
    if (event.value != 0) {
      out += ",\"v\":";
      append_u64(out, event.value);
    }
    if (!event.members.empty()) {
      out += ",\"m\":";
      append_set(out, event.members);
    }
    if (!event.detail.empty()) {
      out += ",\"d\":";
      json_escape(out, event.detail);
    }
    out += ",\"e\":";
    append_u64(out, event.eid);
    if (event.lamport != 0) {
      out += ",\"l\":";
      append_u64(out, event.lamport);
    }
    if (event.cause != 0) {
      out += ",\"c\":";
      append_u64(out, event.cause);
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

TraceMetaAndEvents load_trace_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  TraceMetaAndEvents out;

  const JsonValue& meta = doc.at("meta");
  if (meta.find("schema_version") == nullptr ||
      meta.at("schema_version").as_int() != kTraceSchemaVersion) {
    throw JsonError("trace: unsupported schema version (need " +
                    std::to_string(kTraceSchemaVersion) + ")");
  }
  out.meta.protocol = meta.at("protocol").as_string();
  out.meta.n = static_cast<std::uint32_t>(meta.at("n").as_uint());
  out.meta.min_quorum = static_cast<std::size_t>(meta.at("min_quorum").as_uint());
  out.meta.seed = meta.at("seed").as_uint();
  out.meta.core = process_set_from_json(meta.at("core"));
  out.meta.ambiguity_bound =
      static_cast<std::size_t>(meta.at("ambiguity_bound").as_uint());
  if (const JsonValue* ow = meta.find("overwritten")) {
    out.meta.overwritten = ow->as_uint();
  }
  if (const JsonValue* groups = meta.find("num_groups")) {
    out.meta.num_groups = static_cast<std::uint32_t>(groups->as_uint());
    out.meta.group_size =
        static_cast<std::uint32_t>(meta.at("group_size").as_uint());
  }

  const JsonValue::Array& events = doc.at("events").as_array();
  out.events.reserve(events.size());
  for (const JsonValue& e : events) {
    out.events.push_back(obs::trace_event_from_json(e));
  }
  return out;
}

TraceMetaAndEvents filter_trace_group(const TraceMetaAndEvents& trace,
                                      std::uint32_t group) {
  ensure(trace.meta.group_size != 0,
         "filter_trace_group: trace has no fleet shape "
         "(meta.num_groups/group_size)");
  ensure(group < trace.meta.num_groups,
         "filter_trace_group: group out of range");
  const std::uint32_t first = group * trace.meta.group_size;
  const std::uint32_t last = first + trace.meta.group_size;  // exclusive
  const auto in_group = [&](std::uint32_t pid) {
    return pid >= first && pid < last;
  };

  TraceMetaAndEvents out;
  out.meta = trace.meta;
  out.meta.n = trace.meta.group_size;
  ProcessSet core;
  for (const ProcessId p : trace.meta.core) {
    if (in_group(p.value())) core.insert(p);
  }
  out.meta.core = std::move(core);

  for (const obs::TraceEvent& event : trace.events) {
    if (event.kind == obs::TraceEventKind::kTopologyChange) {
      // Global events carry no acting process; the component's first
      // member identifies the group (components never span groups).
      if (event.members.empty() || !in_group(event.members.begin()->value())) {
        continue;
      }
    } else if (!in_group(event.a.value())) {
      continue;
    }
    out.events.push_back(event);
  }
  return out;
}

}  // namespace dynvote
