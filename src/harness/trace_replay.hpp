// Trace replay: re-verifying correctness claims from an exported trace.
//
// The structured trace (obs/trace.hpp) records every session attempt,
// formation, abort, and ambiguous-record level. Replaying those events
// through a fresh ConsistencyChecker re-establishes C1 — the transitive
// participation order over formed primary components is total (paper
// section 2) — and checks the Theorem-1 ambiguity bound
// (n − Min_Quorum + 1) without access to the live run: a trace.json file
// is sufficient evidence. This is the "checker trace-replay mode": the
// same verdicts the in-process checker reaches, reproduced offline.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "harness/checker.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dynvote {

/// Verdict of a trace replay.
struct TraceCheckResult {
  /// V1..V4 violations found by the replayed ConsistencyChecker.
  std::vector<Violation> violations;
  std::size_t formed_sessions = 0;
  std::uint64_t attempts = 0;
  std::uint64_t aborts = 0;
  /// Highest ambiguous-record level any process reported.
  std::uint64_t max_ambiguous = 0;
  /// The bound from the trace meta (0 = not applicable / not checked).
  std::size_t ambiguity_bound = 0;
  /// True iff no bound applies or max_ambiguous stayed within it.
  bool ambiguity_ok = true;

  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty() && ambiguity_ok;
  }
};

/// A parsed (or about-to-be-exported) trace: the run description plus the
/// event sequence.
struct TraceMetaAndEvents {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
};

/// Feeds the protocol-level events of `trace` through a fresh
/// ConsistencyChecker (seeded from meta.core) and evaluates the ambiguity
/// bound in meta.ambiguity_bound.
[[nodiscard]] TraceCheckResult check_trace(const TraceMetaAndEvents& trace);

/// Serializes meta + the sink's events to the deterministic trace.json
/// schema (see docs/PROTOCOL.md "Tracing & metrics").
[[nodiscard]] JsonValue trace_to_json(const obs::TraceMeta& meta,
                                      const obs::TraceSink& sink);

/// Parses a trace.json document produced by trace_to_json. Throws
/// JsonError on schema violations.
[[nodiscard]] TraceMetaAndEvents load_trace_json(std::string_view text);

}  // namespace dynvote
