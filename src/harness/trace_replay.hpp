// Trace replay: re-verifying correctness claims from an exported trace.
//
// The structured trace (obs/trace.hpp) records every session attempt,
// formation, abort, and ambiguous-record level. Replaying those events
// through a fresh ConsistencyChecker re-establishes C1 — the transitive
// participation order over formed primary components is total (paper
// section 2) — and checks the Theorem-1 ambiguity bound
// (n − Min_Quorum + 1) without access to the live run: a trace.json file
// is sufficient evidence. This is the "checker trace-replay mode": the
// same verdicts the in-process checker reaches, reproduced offline.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "harness/checker.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dynvote {

/// Version of the trace.json schema written by trace_to_json and
/// required by load_trace_json. Version 2 added the causal fields
/// (eid "e", Lamport clock "l", cause "c"), the ambiguity-resolution
/// event kinds, meta.overwritten, and renamed the meta key from
/// "version" to "schema_version".
inline constexpr int kTraceSchemaVersion = 2;

/// What check_trace does about a truncated event stream
/// (meta.overwritten > 0): a ring-bounded sink only kept a suffix of the
/// execution, so "no violation found" is not evidence of correctness.
enum class TruncationPolicy {
  /// Report a "truncated-trace" violation (the default: replay verdicts
  /// on partial evidence must not pass silently).
  kFail,
  /// Downgrade to a warning: result.truncated is set, but the verdict
  /// reflects only the surviving events.
  kWarn,
};

/// Verdict of a trace replay.
struct TraceCheckResult {
  /// V1..V4 violations found by the replayed ConsistencyChecker.
  std::vector<Violation> violations;
  std::size_t formed_sessions = 0;
  std::uint64_t attempts = 0;
  std::uint64_t aborts = 0;
  /// Highest ambiguous-record level any process reported.
  std::uint64_t max_ambiguous = 0;
  /// The bound from the trace meta (0 = not applicable / not checked).
  std::size_t ambiguity_bound = 0;
  /// True iff no bound applies or max_ambiguous stayed within it.
  bool ambiguity_ok = true;
  /// True iff the sink evicted events before export (meta.overwritten > 0).
  /// Under TruncationPolicy::kFail this also appears in `violations`.
  bool truncated = false;

  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty() && ambiguity_ok;
  }
};

/// A parsed (or about-to-be-exported) trace: the run description plus the
/// event sequence.
struct TraceMetaAndEvents {
  obs::TraceMeta meta;
  std::vector<obs::TraceEvent> events;
};

/// Feeds the protocol-level events of `trace` through a fresh
/// ConsistencyChecker (seeded from meta.core) and evaluates the ambiguity
/// bound in meta.ambiguity_bound. A truncated trace (meta.overwritten
/// > 0) fails by default; pass TruncationPolicy::kWarn to accept the
/// surviving suffix with result.truncated set.
[[nodiscard]] TraceCheckResult check_trace(
    const TraceMetaAndEvents& trace,
    TruncationPolicy truncation = TruncationPolicy::kFail);

/// Serializes meta + the sink's events to the deterministic trace.json
/// schema (see docs/PROTOCOL.md "Tracing & metrics").
[[nodiscard]] JsonValue trace_to_json(const obs::TraceMeta& meta,
                                      const obs::TraceSink& sink);

/// The compact trace.json document, byte-identical to
/// trace_to_json(meta, sink).dump() but written straight into the output
/// string — no intermediate JSON tree. The export side of every
/// simulate-export-replay loop runs through here.
[[nodiscard]] std::string trace_json_string(const obs::TraceMeta& meta,
                                            const obs::TraceSink& sink);

/// Parses a trace.json document produced by trace_to_json. Throws
/// JsonError on schema violations.
[[nodiscard]] TraceMetaAndEvents load_trace_json(std::string_view text);

/// Restricts a sharded trace (meta.group_size != 0) to one group's
/// events: process-scoped events whose actor lies in the group's dense
/// id range [group*group_size, (group+1)*group_size), plus topology
/// events whose component belongs to the group (components never span
/// groups). Causal chains survive intact — messages and sessions never
/// cross groups, so no kept event can cite a dropped one. The returned
/// meta narrows core/n to the group, which is what makes span folding
/// and checker replay meaningful on sharded traces (dvtrace --group).
[[nodiscard]] TraceMetaAndEvents filter_trace_group(
    const TraceMetaAndEvents& trace, std::uint32_t group);

}  // namespace dynvote
