#include "harness/events.hpp"

#include <sstream>

namespace dynvote {

void MultiObserver::add(ProtocolObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void MultiObserver::on_view_installed(SimTime time, ProcessId p,
                                      const View& view) {
  for (auto* o : observers_) o->on_view_installed(time, p, view);
}

void MultiObserver::on_attempt(SimTime time, ProcessId p,
                               const Session& session) {
  for (auto* o : observers_) o->on_attempt(time, p, session);
}

void MultiObserver::on_formed(SimTime time, ProcessId p, const Session& session,
                              int rounds) {
  for (auto* o : observers_) o->on_formed(time, p, session, rounds);
}

void MultiObserver::on_primary_lost(SimTime time, ProcessId p) {
  for (auto* o : observers_) o->on_primary_lost(time, p);
}

void MultiObserver::on_session_rejected(SimTime time, ProcessId p,
                                        const View& view,
                                        const std::string& reason) {
  for (auto* o : observers_) o->on_session_rejected(time, p, view, reason);
}

void TraceRecorder::add(SimTime time, ProcessId p, std::string text) {
  entries_.push_back(Entry{time, p, std::move(text)});
}

void TraceRecorder::on_view_installed(SimTime time, ProcessId p,
                                      const View& view) {
  add(time, p, "installs view " + dynvote::to_string(view));
}

void TraceRecorder::on_attempt(SimTime time, ProcessId p,
                               const Session& session) {
  add(time, p, "ATTEMPTS " + session.to_string());
}

void TraceRecorder::on_formed(SimTime time, ProcessId p, const Session& session,
                              int rounds) {
  add(time, p,
      "FORMS " + session.to_string() + " after " + std::to_string(rounds) +
          " rounds");
}

void TraceRecorder::on_primary_lost(SimTime time, ProcessId p) {
  add(time, p, "leaves the primary component");
}

void TraceRecorder::on_session_rejected(SimTime time, ProcessId p,
                                        const View& view,
                                        const std::string& reason) {
  add(time, p, "rejects view " + dynvote::to_string(view) + ": " + reason);
}

std::string TraceRecorder::to_string() const {
  std::ostringstream out;
  for (const Entry& entry : entries_) {
    out << "[" << entry.time << "us] " << dynvote::to_string(entry.process)
        << " " << entry.text << "\n";
  }
  return out.str();
}

MetricsObserver::MetricsObserver(obs::MetricsRegistry& registry)
    : views_(registry.counter("dv.views_installed")),
      attempts_(registry.counter("dv.attempts")),
      formed_(registry.counter("dv.formed")),
      primary_lost_(registry.counter("dv.primary_lost")),
      rejected_(registry.counter("dv.rejected")),
      rounds_(registry.histogram("dv.rounds_per_form")),
      uptime_(registry.counter("dv.primary_uptime_ticks")) {}

void MetricsObserver::on_view_installed(SimTime /*time*/, ProcessId /*p*/,
                                        const View& /*view*/) {
  views_.increment();
}

void MetricsObserver::on_attempt(SimTime /*time*/, ProcessId /*p*/,
                                 const Session& /*session*/) {
  attempts_.increment();
}

void MetricsObserver::on_formed(SimTime time, ProcessId p,
                                const Session& /*session*/, int rounds) {
  formed_.increment();
  rounds_.observe(static_cast<std::uint64_t>(rounds < 0 ? 0 : rounds));
  if (primary_procs_.empty()) uptime_open_ = time;
  primary_procs_.insert(p);
}

void MetricsObserver::on_primary_lost(SimTime time, ProcessId p) {
  primary_lost_.increment();
  if (primary_procs_.erase(p) != 0 && primary_procs_.empty()) {
    uptime_.add(time - uptime_open_);
  }
}

void MetricsObserver::on_session_rejected(SimTime /*time*/, ProcessId /*p*/,
                                          const View& /*view*/,
                                          const std::string& /*reason*/) {
  rejected_.increment();
}

}  // namespace dynvote
