// Targeted fault injection for scripted scenarios.
//
// The paper's worked examples hinge on precisely-timed detachments:
// "c detaches before receiving the last message" (section 1), "b
// detaches before performing the attempt step" (section 4.6). The
// FaultInjector expresses these as message-level rules — drop the next k
// messages of a given payload type addressed to a given process — which
// compose with partitions to reproduce each execution exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/ids.hpp"

namespace dynvote {

class FaultInjector {
 public:
  /// Installs itself as the network's drop filter (replacing any other).
  explicit FaultInjector(sim::Network& network);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Drops messages whose payload type contains `type_substr` and whose
  /// destination is `to`. `count` < 0 means unlimited; self-deliveries
  /// are never dropped (a process cannot lose a message to itself).
  /// Returns a rule id.
  int drop_to(ProcessId to, std::string type_substr, int count = -1);

  /// Same, additionally matching the sender.
  int drop_link(ProcessId from, ProcessId to, std::string type_substr,
                int count = -1);

  /// Removes one rule / all rules.
  void remove(int rule_id);
  void clear();

  /// Messages dropped by rule so far.
  [[nodiscard]] std::uint64_t dropped(int rule_id) const;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    return total_dropped_;
  }

 private:
  struct Rule {
    int id;
    std::optional<ProcessId> from;
    ProcessId to;
    std::string type_substr;
    int remaining;  // < 0 = unlimited
    std::uint64_t hits = 0;
  };

  bool should_drop(const sim::Envelope& env);

  sim::Network& network_;
  std::vector<Rule> rules_;
  int next_id_ = 1;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace dynvote
