#include "harness/checker.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

ConsistencyChecker::ConsistencyChecker(const ProcessSet& core,
                                       bool seed_initial)
    : core_(core), seed_initial_(seed_initial) {
  if (seed_initial_ && !core_.empty()) {
    const Session f0{core_, 0};
    formers_[f0] = core_;
    formed_order_.push_back(f0);
    attempters_[f0] = core_;
    for (ProcessId p : core_) participation_[p].push_back(f0);
  }
}

void ConsistencyChecker::note_participation(ProcessId p,
                                            const Session& session) {
  auto& list = participation_[p];
  if (list.empty() || !(list.back() == session)) list.push_back(session);
}

void ConsistencyChecker::on_attempt(SimTime /*time*/, ProcessId p,
                                    const Session& session) {
  ++attempt_events_;
  attempters_[session].insert(p);
  note_participation(p, session);
}

void ConsistencyChecker::on_formed(SimTime time, ProcessId p,
                                   const Session& session, int rounds) {
  ++form_events_;
  rounds_.add(rounds);
  auto [it, inserted] = formers_.try_emplace(session);
  it->second.insert(p);
  if (inserted) formed_order_.push_back(session);
  note_participation(p, session);
  // The process enters a live primary; close a dangling interval first
  // (defensive — protocols report loss before re-forming).
  auto open = open_interval_.find(p);
  if (open != open_interval_.end()) {
    intervals_[open->second].end = time;
    open_interval_.erase(open);
  }
  open_interval_[p] = intervals_.size();
  intervals_.push_back(Interval{p, session, time, std::nullopt});
}

void ConsistencyChecker::on_primary_lost(SimTime time, ProcessId p) {
  auto open = open_interval_.find(p);
  if (open == open_interval_.end()) return;
  intervals_[open->second].end = time;
  open_interval_.erase(open);
}

void ConsistencyChecker::on_session_rejected(SimTime /*time*/, ProcessId /*p*/,
                                             const View& /*view*/,
                                             const std::string& reason) {
  ++rejected_;
  if (reason.rfind("blocked", 0) == 0) ++blocked_;
}

std::vector<Violation> ConsistencyChecker::check_basic() const {
  std::vector<Violation> out;

  // V2: duplicate session numbers among distinct formed sessions.
  std::map<SessionNumber, const Session*> by_number;
  for (const Session& s : formed_order_) {
    auto [it, inserted] = by_number.try_emplace(s.number, &s);
    if (!inserted) {
      out.push_back({"dup-number", "formed sessions " + it->second->to_string() +
                                       " and " + s.to_string() +
                                       " share a session number"});
    }
  }

  // V1: concurrent live primaries with disjoint memberships — a sweep
  // over intervals ordered by start time.
  std::vector<const Interval*> sorted;
  sorted.reserve(intervals_.size());
  for (const Interval& iv : intervals_) sorted.push_back(&iv);
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval* a, const Interval* b) {
              return a->start < b->start;
            });
  std::vector<const Interval*> active;
  for (const Interval* iv : sorted) {
    std::erase_if(active, [&](const Interval* other) {
      return other->end && *other->end <= iv->start;
    });
    for (const Interval* other : active) {
      if (other->session == iv->session) continue;
      if (!other->session.members.intersects(iv->session.members)) {
        out.push_back(
            {"split-brain",
             dynvote::to_string(iv->process) + " live in " +
                 iv->session.to_string() + " while " +
                 dynvote::to_string(other->process) + " live in disjoint " +
                 other->session.to_string()});
      }
    }
    active.push_back(iv);
  }
  return out;
}

std::vector<Violation> ConsistencyChecker::check_order() const {
  std::vector<Violation> out;
  const std::size_t k = formed_order_.size();
  if (k < 2) return out;

  // reaches[i][j] == true  <=>  F_i ≺ F_j (via participation chains).
  std::vector<std::vector<bool>> reaches(k, std::vector<bool>(k, false));
  std::map<Session, std::size_t> index;
  for (std::size_t i = 0; i < k; ++i) index[formed_order_[i]] = i;

  // Direct edges: some process participates in both, one before the
  // other in its local sequence. Participation = attempted or formed
  // (paper section 2: "participates ... i.e. attempts to form").
  for (const auto& [p, sessions] : participation_) {
    for (std::size_t a = 0; a < sessions.size(); ++a) {
      auto ia = index.find(sessions[a]);
      if (ia == index.end()) continue;  // attempted but never formed
      for (std::size_t b = a + 1; b < sessions.size(); ++b) {
        auto ib = index.find(sessions[b]);
        if (ib == index.end()) continue;
        reaches[ia->second][ib->second] = true;
      }
    }
  }

  // Transitive closure (Floyd-Warshall on booleans).
  for (std::size_t m = 0; m < k; ++m) {
    for (std::size_t i = 0; i < k; ++i) {
      if (!reaches[i][m]) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (reaches[m][j]) reaches[i][j] = true;
      }
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const bool fwd = reaches[i][j];
      const bool bwd = reaches[j][i];
      if (fwd && bwd) {
        out.push_back({"order-cycle", formed_order_[i].to_string() + " and " +
                                          formed_order_[j].to_string() +
                                          " precede each other"});
      } else if (!fwd && !bwd) {
        out.push_back({"order-partial", formed_order_[i].to_string() + " and " +
                                            formed_order_[j].to_string() +
                                            " are ≺-incomparable"});
      }
    }
  }
  return out;
}

std::vector<Violation> ConsistencyChecker::check_all(
    std::size_t order_check_limit) const {
  std::vector<Violation> out = check_basic();
  if (formed_order_.size() <= order_check_limit) {
    const auto order = check_order();
    out.insert(out.end(), order.begin(), order.end());
  }
  return out;
}

SimTime ConsistencyChecker::primary_uptime(SimTime horizon) const {
  // Merge the [start, end) spans of all live-primary intervals.
  std::vector<std::pair<SimTime, SimTime>> spans;
  spans.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    const SimTime end = iv.end.value_or(horizon);
    if (iv.start >= end) continue;
    spans.emplace_back(iv.start, std::min(end, horizon));
  }
  std::sort(spans.begin(), spans.end());
  SimTime total = 0;
  SimTime cursor = 0;
  for (const auto& [start, end] : spans) {
    const SimTime from = std::max(cursor, start);
    if (end > from) {
      total += end - from;
      cursor = end;
    }
  }
  return total;
}

std::vector<std::pair<ProcessId, Session>> ConsistencyChecker::live_primaries()
    const {
  std::vector<std::pair<ProcessId, Session>> out;
  for (const auto& [p, idx] : open_interval_) {
    out.emplace_back(p, intervals_[idx].session);
  }
  return out;
}

bool ConsistencyChecker::session_live_at(const Session& session,
                                         SimTime t) const {
  for (const Interval& iv : intervals_) {
    if (!(iv.session == session)) continue;
    if (iv.start <= t && (!iv.end || *iv.end > t)) return true;
  }
  return false;
}

std::string to_string(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.kind + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace dynvote
