// Consistency checker: an external witness of protocol executions.
//
// The paper's correctness requirement (section 2): the transitive
// closure of the participation order between intersecting formed primary
// components must be a total order. The checker observes every protocol
// event and verifies, post-hoc:
//
//   V1 "split-brain"    — two different primary components, with disjoint
//                         memberships, live at overlapping times;
//   V2 "dup-number"     — two distinct formed sessions share a session
//                         number (impossible for the paper's protocols,
//                         Lemma 10);
//   V3 "order-cycle"    — the participation relation on formed sessions
//                         has a cycle (so ≺ is not an order);
//   V4 "order-partial"  — two formed sessions are ≺-incomparable (so ≺ is
//                         not total).
//
// Deliberately broken baselines run to completion; their violations are
// *results* the experiments report, not errors.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dv/observer.hpp"
#include "util/process_set.hpp"
#include "util/stats.hpp"

namespace dynvote {

struct Violation {
  std::string kind;    // "split-brain", "dup-number", "order-cycle", ...
  std::string detail;
};

class ConsistencyChecker final : public ProtocolObserver {
 public:
  /// `core` seeds the initial primary component F0 = (W0, 0), which the
  /// dv-family protocols treat as formed by every core member. Pass
  /// seed_initial=false for protocols without that convention (static).
  explicit ConsistencyChecker(const ProcessSet& core, bool seed_initial = true);

  // -- ProtocolObserver --------------------------------------------------------
  void on_attempt(SimTime time, ProcessId p, const Session& session) override;
  void on_formed(SimTime time, ProcessId p, const Session& session,
                 int rounds) override;
  void on_primary_lost(SimTime time, ProcessId p) override;
  void on_session_rejected(SimTime time, ProcessId p, const View& view,
                           const std::string& reason) override;

  // -- verdicts -----------------------------------------------------------------

  /// Runs V1 + V2 (cheap, any execution size).
  [[nodiscard]] std::vector<Violation> check_basic() const;

  /// Runs V3 + V4 via transitive closure — O(k^3) in the number of
  /// formed sessions; meant for scenario-scale executions.
  [[nodiscard]] std::vector<Violation> check_order() const;

  /// check_basic plus, when affordable, check_order.
  [[nodiscard]] std::vector<Violation> check_all(
      std::size_t order_check_limit = 400) const;

  // -- accounting ---------------------------------------------------------------

  [[nodiscard]] std::size_t formed_session_count() const noexcept {
    return formed_order_.size();
  }
  [[nodiscard]] const std::vector<Session>& formed_sessions() const noexcept {
    return formed_order_;
  }
  [[nodiscard]] std::uint64_t form_events() const noexcept { return form_events_; }
  [[nodiscard]] std::uint64_t attempt_events() const noexcept {
    return attempt_events_;
  }
  [[nodiscard]] std::uint64_t rejected_sessions() const noexcept {
    return rejected_;
  }
  /// Rejections whose reason marks a blocking wait (the blocking
  /// baseline's signature failure mode).
  [[nodiscard]] std::uint64_t blocked_sessions() const noexcept {
    return blocked_;
  }
  [[nodiscard]] const Summary& rounds_per_form() const noexcept {
    return rounds_;
  }

  /// Total virtual time during which at least one process was in a live
  /// primary component, up to `horizon`.
  [[nodiscard]] SimTime primary_uptime(SimTime horizon) const;

  /// Processes currently (i.e., at the latest observed moment) inside a
  /// live primary, with their sessions.
  [[nodiscard]] std::vector<std::pair<ProcessId, Session>> live_primaries()
      const;

  /// True iff some process was live inside `session` at time `t` (an
  /// interval still open counts as live through any t >= its start).
  [[nodiscard]] bool session_live_at(const Session& session, SimTime t) const;

 private:
  struct Interval {
    ProcessId process;
    Session session;
    SimTime start = 0;
    std::optional<SimTime> end;  // nullopt = still live
  };

  ProcessSet core_;
  bool seed_initial_;

  std::map<Session, ProcessSet> formers_;     // formed session -> who formed it
  std::vector<Session> formed_order_;         // insertion order, deduped
  std::map<Session, ProcessSet> attempters_;  // attempted session -> who
  std::map<ProcessId, std::vector<Session>> participation_;  // per process

  std::vector<Interval> intervals_;
  std::map<ProcessId, std::size_t> open_interval_;

  std::uint64_t form_events_ = 0;
  std::uint64_t attempt_events_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t blocked_ = 0;
  Summary rounds_;

  void note_participation(ProcessId p, const Session& session);
};

/// Renders violations one per line (empty string if none).
[[nodiscard]] std::string to_string(const std::vector<Violation>& violations);

}  // namespace dynvote
