// Deterministic parallel seed-sweep runner.
//
// Monte-Carlo experiments (bench_availability, bench_scale, the random
// schedules of bench_ambiguous_growth) run many fully independent
// simulations — one per (seed, config) cell — and then aggregate. Each
// Simulator is self-contained (own EventQueue, Network, Logger, RNG,
// trace sink), so the cells can run on a thread pool without sharing
// anything.
//
// The determinism contract survives parallelism by construction:
//   1. each job computes exactly what the serial loop computed for the
//      same index — threads never share mutable state;
//   2. results land in index-addressed slots, never in completion order;
//   3. callers reduce the slots sequentially, in index order.
// Hence the aggregate is byte-identical for 1 thread and N threads (a
// test drives both and compares). Floating-point sums keep their serial
// association because only the reduction order matters, and it is fixed.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dynvote {

/// Worker count for a sweep: `requested` if nonzero, else the
/// DYNVOTE_THREADS environment variable, else hardware_concurrency
/// (never 0). A value of 1 runs jobs inline on the calling thread.
[[nodiscard]] std::size_t sweep_thread_count(std::size_t requested = 0);

/// Runs job(i) for every i in [0, count), distributing indices across
/// sweep_thread_count(threads) workers via an atomic cursor. Blocks
/// until all jobs finish. If any job throws, the sweep stops handing
/// out new indices and the first exception (by completion order) is
/// rethrown after the pool joins. job must not touch shared mutable
/// state except its own index-addressed result slot.
void sweep_run(std::size_t count, std::size_t threads,
               const std::function<void(std::size_t)>& job);

/// Maps [0, count) through `fn` in parallel and returns the results in
/// index order. T must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> sweep_map(std::size_t count, std::size_t threads,
                                       Fn&& fn) {
  std::vector<T> results(count);
  sweep_run(count, threads, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace dynvote
