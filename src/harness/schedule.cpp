#include "harness/schedule.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

std::string ScheduleEvent::to_string() const {
  switch (kind) {
    case Kind::kPartition: {
      std::string out = "t=" + std::to_string(time) + " partition";
      for (const auto& g : groups) out += " " + g.to_string();
      return out;
    }
    case Kind::kMerge: {
      std::string out = "t=" + std::to_string(time) + " merge";
      for (const auto& g : groups) out += " " + g.to_string();
      return out;
    }
    case Kind::kCrash:
      return "t=" + std::to_string(time) + " crash " + dynvote::to_string(process);
    case Kind::kRecover:
      return "t=" + std::to_string(time) + " recover " +
             dynvote::to_string(process);
  }
  return "?";
}

namespace {

/// The generator's model of the network it is scripting.
struct TopologyModel {
  std::vector<ProcessSet> components;  // live processes only
  ProcessSet crashed;

  [[nodiscard]] bool can_partition() const {
    return std::any_of(components.begin(), components.end(),
                       [](const ProcessSet& c) { return c.size() >= 2; });
  }
  [[nodiscard]] bool can_merge() const { return components.size() >= 2; }
  [[nodiscard]] bool can_crash() const {
    return std::any_of(components.begin(), components.end(),
                       [](const ProcessSet& c) { return !c.empty(); });
  }
  [[nodiscard]] bool can_recover() const { return !crashed.empty(); }
};

ProcessSet random_split(const ProcessSet& component, Rng& rng) {
  // A uniformly random non-empty strict subset to break off.
  std::vector<ProcessId> members = component.members();
  rng.shuffle(members);
  const std::size_t cut =
      1 + static_cast<std::size_t>(rng.next_below(members.size() - 1));
  return ProcessSet(
      std::vector<ProcessId>(members.begin(), members.begin() + cut));
}

}  // namespace

std::vector<ScheduleEvent> generate_schedule(const ProcessSet& processes,
                                             const ScheduleOptions& options) {
  ensure(processes.size() >= 2, "schedules need at least two processes");
  Rng rng(options.seed);
  TopologyModel model;
  model.components.push_back(processes);

  std::vector<ScheduleEvent> schedule;
  SimTime t = 0;
  for (;;) {
    t += std::max<SimTime>(
        1, static_cast<SimTime>(
               rng.next_exponential(static_cast<double>(options.mean_event_gap))));
    if (t >= options.duration) break;

    // Draw an applicable event kind by weight.
    struct Choice {
      ScheduleEvent::Kind kind;
      double weight;
      bool possible;
    };
    const Choice choices[] = {
        {ScheduleEvent::Kind::kPartition, options.weight_partition,
         model.can_partition()},
        {ScheduleEvent::Kind::kMerge, options.weight_merge, model.can_merge()},
        {ScheduleEvent::Kind::kCrash, options.weight_crash, model.can_crash()},
        {ScheduleEvent::Kind::kRecover, options.weight_recover,
         model.can_recover()},
    };
    double total = 0;
    for (const Choice& c : choices) {
      if (c.possible) total += c.weight;
    }
    if (total <= 0) continue;  // fully crashed or single component of one
    double pick = rng.next_double() * total;
    ScheduleEvent::Kind kind = ScheduleEvent::Kind::kPartition;
    for (const Choice& c : choices) {
      if (!c.possible) continue;
      if (pick < c.weight) {
        kind = c.kind;
        break;
      }
      pick -= c.weight;
    }

    ScheduleEvent event;
    event.time = t;
    event.kind = kind;
    switch (kind) {
      case ScheduleEvent::Kind::kPartition: {
        std::vector<std::size_t> splittable;
        for (std::size_t i = 0; i < model.components.size(); ++i) {
          if (model.components[i].size() >= 2) splittable.push_back(i);
        }
        const std::size_t target = splittable[static_cast<std::size_t>(
            rng.next_below(splittable.size()))];
        const ProcessSet half = random_split(model.components[target], rng);
        const ProcessSet rest = model.components[target].set_difference(half);
        model.components[target] = half;
        model.components.push_back(rest);
        event.groups = {half, rest};
        break;
      }
      case ScheduleEvent::Kind::kMerge: {
        const std::size_t a =
            static_cast<std::size_t>(rng.next_below(model.components.size()));
        std::size_t b = a;
        while (b == a) {
          b = static_cast<std::size_t>(rng.next_below(model.components.size()));
        }
        event.groups = {model.components[a], model.components[b]};
        const ProcessSet merged =
            model.components[a].set_union(model.components[b]);
        model.components.erase(model.components.begin() +
                               static_cast<std::ptrdiff_t>(std::max(a, b)));
        model.components.erase(model.components.begin() +
                               static_cast<std::ptrdiff_t>(std::min(a, b)));
        model.components.push_back(merged);
        break;
      }
      case ScheduleEvent::Kind::kCrash: {
        // Pick a uniformly random live process.
        std::vector<ProcessId> live;
        for (const ProcessSet& c : model.components) {
          live.insert(live.end(), c.begin(), c.end());
        }
        event.process = live[static_cast<std::size_t>(rng.next_below(live.size()))];
        model.crashed.insert(event.process);
        for (ProcessSet& c : model.components) c.erase(event.process);
        std::erase_if(model.components,
                      [](const ProcessSet& c) { return c.empty(); });
        break;
      }
      case ScheduleEvent::Kind::kRecover: {
        const auto& members = model.crashed.members();
        event.process =
            members[static_cast<std::size_t>(rng.next_below(members.size()))];
        model.crashed.erase(event.process);
        // Recovers into its own singleton component (matching Simulator
        // semantics); a later merge may reconnect it.
        model.components.push_back(ProcessSet{event.process});
        break;
      }
    }
    schedule.push_back(std::move(event));
  }
  return schedule;
}

}  // namespace dynvote
