#include "harness/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace dynvote {

std::size_t sweep_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DYNVOTE_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void sweep_run(std::size_t count, std::size_t threads,
               const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  threads = sweep_thread_count(threads);
  if (threads > count) threads = count;
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dynvote
