#include "harness/availability.hpp"

#include <algorithm>

#include "dv/basic_protocol.hpp"
#include "harness/sweep.hpp"
#include "util/ensure.hpp"

namespace dynvote {

AvailabilityResult run_schedule(ProtocolKind kind,
                                const std::vector<ScheduleEvent>& schedule,
                                ClusterOptions base) {
  base.kind = kind;
  Cluster cluster(std::move(base));
  sim::Simulator& sim = cluster.sim();

  for (const ScheduleEvent& event : schedule) {
    sim.queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const ProcessSet& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }

  cluster.merge();  // initial connectivity at t=0
  cluster.settle();

  const SimTime horizon = sim.now();
  const ConsistencyChecker& checker = cluster.checker();

  AvailabilityResult result;
  result.kind = kind;
  result.availability =
      horizon == 0 ? 0.0
                   : static_cast<double>(checker.primary_uptime(horizon)) /
                         static_cast<double>(horizon);
  result.formed_sessions = checker.formed_session_count();
  result.rejected_sessions = checker.rejected_sessions();
  result.blocked_sessions = checker.blocked_sessions();
  result.violations = checker.check_basic().size();
  result.mean_rounds =
      checker.rounds_per_form().empty() ? 0 : checker.rounds_per_form().mean();
  result.messages_sent = sim.network().stats().messages_sent;
  result.bytes_sent = sim.network().stats().bytes_sent;
  for (ProcessId p : cluster.all_processes()) {
    if (const auto* dv =
            dynamic_cast<const BasicDvProtocol*>(&cluster.protocol(p))) {
      result.max_ambiguous =
          std::max(result.max_ambiguous, dv->max_ambiguous_recorded());
    }
  }
  return result;
}

std::vector<AvailabilityResult> compare_protocols(
    const std::vector<ProtocolKind>& kinds, const ClusterOptions& base,
    ScheduleOptions schedule_options, int count, std::size_t threads) {
  ensure(count >= 1, "need at least one schedule");
  const ProcessSet processes =
      base.config.core.empty() ? ProcessSet::range(base.n) : base.config.core;

  // Every (kind, seed) cell is an independent simulation; fan the grid
  // out over the sweep pool and reduce the index-ordered slots below.
  // The reduction runs kind-major in ascending seed order — the exact
  // association of the old serial loop — so the averages are
  // bit-identical at any thread count.
  const std::size_t runs =
      kinds.size() * static_cast<std::size_t>(count);
  const std::vector<AvailabilityResult> cells =
      sweep_map<AvailabilityResult>(runs, threads, [&](std::size_t idx) {
        const ProtocolKind kind = kinds[idx / static_cast<std::size_t>(count)];
        ScheduleOptions opts = schedule_options;
        opts.seed = schedule_options.seed +
                    static_cast<std::uint64_t>(idx % static_cast<std::size_t>(count));
        const auto schedule = generate_schedule(processes, opts);
        return run_schedule(kind, schedule, base);
      });

  std::vector<AvailabilityResult> totals;
  totals.reserve(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    AvailabilityResult sum;
    sum.kind = kinds[k];
    for (int i = 0; i < count; ++i) {
      const AvailabilityResult& one =
          cells[k * static_cast<std::size_t>(count) + static_cast<std::size_t>(i)];
      sum.availability += one.availability;
      sum.formed_sessions += one.formed_sessions;
      sum.rejected_sessions += one.rejected_sessions;
      sum.blocked_sessions += one.blocked_sessions;
      sum.violations += one.violations;
      sum.mean_rounds += one.mean_rounds;
      sum.messages_sent += one.messages_sent;
      sum.bytes_sent += one.bytes_sent;
      sum.max_ambiguous = std::max(sum.max_ambiguous, one.max_ambiguous);
    }
    sum.availability /= count;
    sum.mean_rounds /= count;
    totals.push_back(sum);
  }
  return totals;
}

}  // namespace dynvote
