// Run-level cost metrics (experiment E4 and the micro benches).
//
// Aggregates network traffic, stable-storage traffic, and per-session
// round counts for one cluster execution. "Rounds" are reported by the
// protocols themselves (number of broadcast phases a formed session
// used); messages/bytes come from the network, storage writes from the
// simulated disks.
#pragma once

#include <cstdint>
#include <string>

#include "harness/cluster.hpp"
#include "util/json.hpp"

namespace dynvote {

struct RunMetrics {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_loopback = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t storage_writes = 0;
  std::uint64_t storage_bytes = 0;
  std::uint64_t form_events = 0;       // per-process form events
  std::uint64_t formed_sessions = 0;   // distinct formed sessions
  double mean_rounds = 0;
  double max_rounds = 0;

  [[nodiscard]] static RunMetrics collect(Cluster& cluster);

  /// Network messages per distinct formed session (the symmetric
  /// protocol's cost; paper section 4.4 discusses the centralized
  /// alternative, which the E4 bench derives analytically).
  [[nodiscard]] double messages_per_formed() const;
  [[nodiscard]] double bytes_per_formed() const;

  [[nodiscard]] std::string to_string() const;

  /// Flat object with every field — the per-run block of the bench JSON
  /// exports.
  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace dynvote
