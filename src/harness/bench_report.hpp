// Machine-readable bench results.
//
// Every bench (bench/bench_*.cpp) keeps printing its human-readable
// tables, and additionally emits one JSON result block through this
// helper so tools/run_experiments.sh can record the perf trajectory:
//
//   --- BENCH_RESULT_JSON <name> ---
//   { ... }
//   --- END_BENCH_RESULT_JSON ---
//
// The block is written to stdout (between unambiguous markers, so text
// output stays greppable) and, when the DYNVOTE_JSON_DIR environment
// variable names a directory, to <dir>/BENCH_<name>.json as well.
// Payloads are built from deterministic inputs (seeded simulations), so
// reruns produce byte-identical blocks.
#pragma once

#include <string>

#include "util/json.hpp"

namespace dynvote {

/// Marker line prefix that opens a result block on stdout.
inline constexpr const char* kBenchResultBegin = "--- BENCH_RESULT_JSON ";
/// Marker line that closes a result block on stdout.
inline constexpr const char* kBenchResultEnd = "--- END_BENCH_RESULT_JSON ---";

/// Version stamped into every BENCH_RESULT_JSON block (the
/// "schema_version" key emit_bench_result prepends). Bump on any
/// incompatible change to a bench's payload shape so trajectory tooling
/// can refuse mixed files instead of misreading them.
inline constexpr int kBenchResultSchemaVersion = 1;

/// Emits the block for `name` (e.g. "bench_availability") with `result`
/// as payload, prepending "schema_version". Returns the path written, or
/// an empty string when DYNVOTE_JSON_DIR is unset or the file could not
/// be written.
std::string emit_bench_result(const std::string& name,
                              const JsonValue& result);

/// Writes `value` to <DYNVOTE_JSON_DIR>/<filename> (e.g. "trace.json").
/// Returns the path written, or an empty string when DYNVOTE_JSON_DIR is
/// unset or the file could not be written.
std::string write_json_file(const std::string& filename,
                            const JsonValue& value);

}  // namespace dynvote
