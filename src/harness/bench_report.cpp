#include "harness/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace dynvote {

std::string emit_bench_result(const std::string& name,
                              const JsonValue& result) {
  JsonValue stamped = JsonValue::object();
  stamped.set("schema_version", JsonValue(kBenchResultSchemaVersion));
  if (result.is_object()) {
    for (const auto& [key, value] : result.as_object()) {
      stamped.set(key, value);
    }
  } else {
    stamped.set("result", result);
  }
  const std::string text = stamped.dump_pretty();
  std::printf("%s%s ---\n%s%s\n", kBenchResultBegin, name.c_str(),
              text.c_str(), kBenchResultEnd);
  std::fflush(stdout);

  const char* dir = std::getenv("DYNVOTE_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return {};
  }
  out << text;
  return path;
}

std::string write_json_file(const std::string& filename,
                            const JsonValue& value) {
  const char* dir = std::getenv("DYNVOTE_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + filename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return {};
  }
  out << value.dump_pretty();
  return path;
}

}  // namespace dynvote
