// Random failure schedules for the availability experiments.
//
// A schedule is a concrete, fully materialized sequence of network events
// (partitions, merges, crashes, recoveries) at virtual times. Schedules
// are generated once from a seed and then replayed bit-identically
// against every protocol, making the availability comparison paired:
// every protocol faces exactly the same failures at exactly the same
// moments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote {

struct ScheduleEvent {
  enum class Kind { kPartition, kMerge, kCrash, kRecover };

  SimTime time = 0;
  Kind kind = Kind::kPartition;
  /// kPartition: the full component assignment of live processes.
  /// kMerge: the components being merged into one.
  std::vector<ProcessSet> groups;
  /// kCrash / kRecover: the process.
  ProcessId process;

  [[nodiscard]] std::string to_string() const;
};

struct ScheduleOptions {
  SimTime duration = 3'000'000;
  /// Mean gap between network events (exponential inter-arrival).
  SimTime mean_event_gap = 60'000;
  // Relative weights of event kinds (normalized internally; events that
  // are impossible in the current topology are re-drawn).
  double weight_partition = 4;
  double weight_merge = 4;
  double weight_crash = 1;
  double weight_recover = 2;
  std::uint64_t seed = 42;
};

/// Generates a legal schedule over `processes`: partitions only split
/// existing components, merges only join existing ones, crashes hit live
/// processes, recoveries revive crashed ones. The generator tracks the
/// topology it implies, so replaying the schedule through the Simulator
/// is always valid.
[[nodiscard]] std::vector<ScheduleEvent> generate_schedule(
    const ProcessSet& processes, const ScheduleOptions& options);

}  // namespace dynvote
