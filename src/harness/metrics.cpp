#include "harness/metrics.hpp"

#include <sstream>

namespace dynvote {

RunMetrics RunMetrics::collect(Cluster& cluster) {
  RunMetrics m;
  const sim::NetworkStats& net = cluster.sim().network().stats();
  m.messages_sent = net.messages_sent;
  m.messages_loopback = net.messages_loopback;
  m.messages_delivered = net.messages_delivered;
  m.messages_dropped = net.messages_dropped;
  m.bytes_sent = net.bytes_sent;
  for (ProcessId p : cluster.all_processes()) {
    const sim::StableStorage& storage = cluster.sim().storage(p);
    m.storage_writes += storage.writes();
    m.storage_bytes += storage.bytes_written();
  }
  const ConsistencyChecker& checker = cluster.checker();
  m.form_events = checker.form_events();
  m.formed_sessions = checker.formed_session_count();
  if (!checker.rounds_per_form().empty()) {
    m.mean_rounds = checker.rounds_per_form().mean();
    m.max_rounds = checker.rounds_per_form().max();
  }
  return m;
}

double RunMetrics::messages_per_formed() const {
  return formed_sessions == 0
             ? 0.0
             : static_cast<double>(messages_sent) /
                   static_cast<double>(formed_sessions);
}

double RunMetrics::bytes_per_formed() const {
  return formed_sessions == 0
             ? 0.0
             : static_cast<double>(bytes_sent) /
                   static_cast<double>(formed_sessions);
}

JsonValue RunMetrics::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("messages_sent", JsonValue(messages_sent));
  out.set("messages_loopback", JsonValue(messages_loopback));
  out.set("messages_delivered", JsonValue(messages_delivered));
  out.set("messages_dropped", JsonValue(messages_dropped));
  out.set("bytes_sent", JsonValue(bytes_sent));
  out.set("storage_writes", JsonValue(storage_writes));
  out.set("storage_bytes", JsonValue(storage_bytes));
  out.set("form_events", JsonValue(form_events));
  out.set("formed_sessions", JsonValue(formed_sessions));
  out.set("mean_rounds", JsonValue(mean_rounds));
  out.set("max_rounds", JsonValue(max_rounds));
  out.set("messages_per_formed", JsonValue(messages_per_formed()));
  out.set("bytes_per_formed", JsonValue(bytes_per_formed()));
  return out;
}

std::string RunMetrics::to_string() const {
  std::ostringstream out;
  out << "msgs=" << messages_sent << " (delivered " << messages_delivered
      << ", dropped " << messages_dropped << ") bytes=" << bytes_sent
      << " storage-writes=" << storage_writes << " formed=" << formed_sessions
      << " mean-rounds=" << mean_rounds;
  return out.str();
}

}  // namespace dynvote
