#include "harness/scenario.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

FaultInjector::FaultInjector(sim::Network& network) : network_(network) {
  network_.set_drop_filter(
      [this](const sim::Envelope& env) { return should_drop(env); });
}

FaultInjector::~FaultInjector() { network_.clear_drop_filter(); }

int FaultInjector::drop_to(ProcessId to, std::string type_substr, int count) {
  const int id = next_id_++;
  rules_.push_back(Rule{id, std::nullopt, to, std::move(type_substr), count});
  return id;
}

int FaultInjector::drop_link(ProcessId from, ProcessId to,
                             std::string type_substr, int count) {
  const int id = next_id_++;
  rules_.push_back(Rule{id, from, to, std::move(type_substr), count});
  return id;
}

void FaultInjector::remove(int rule_id) {
  std::erase_if(rules_, [&](const Rule& r) { return r.id == rule_id; });
}

void FaultInjector::clear() { rules_.clear(); }

std::uint64_t FaultInjector::dropped(int rule_id) const {
  for (const Rule& rule : rules_) {
    if (rule.id == rule_id) return rule.hits;
  }
  return 0;
}

bool FaultInjector::should_drop(const sim::Envelope& env) {
  if (env.from == env.to) return false;  // loopback is process-internal
  for (Rule& rule : rules_) {
    if (rule.to != env.to) continue;
    if (rule.from && *rule.from != env.from) continue;
    if (rule.remaining == 0) continue;
    if (env.payload->type_name().find(rule.type_substr) == std::string::npos) {
      continue;
    }
    if (rule.remaining > 0) --rule.remaining;
    ++rule.hits;
    ++total_dropped_;
    return true;
  }
  return false;
}

}  // namespace dynvote
