// Cluster: one simulated system running one protocol variant.
//
// Wires together the simulator, the membership oracle, one protocol node
// per process, and the consistency checker. Scenario tests, property
// tests, examples and benches all drive executions through this class.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dv/service.hpp"
#include "harness/checker.hpp"
#include "harness/events.hpp"
#include "membership/membership_oracle.hpp"
#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote {

struct ClusterOptions {
  ProtocolKind kind = ProtocolKind::kOptimized;
  /// Number of core processes (ids 0..n-1). Ignored if config.core set.
  std::uint32_t n = 5;
  DvConfig config;
  sim::SimulatorOptions sim;
  MembershipOptions membership;
  /// Uniform probability of losing any remote protocol message. NOTE:
  /// this deliberately stresses the model beyond the paper's
  /// reliable-while-connected channels; with n^2 messages per round even
  /// small rates starve every messaging protocol (see EXPERIMENTS.md).
  /// Installs the network's drop filter — mutually exclusive with using
  /// a FaultInjector on the same cluster.
  double message_loss = 0.0;

  /// Probability, per topology change and per component, that one random
  /// member "detaches before receiving the last message" of the ensuing
  /// session (paper section 1's failure mode): its copy of the closing
  /// round is lost, the session stays ambiguous at it. This is the
  /// paper-faithful way to make failures hit quorum formation itself.
  /// Also claims the network's drop-filter slot.
  double formation_miss = 0.0;

  /// Record per-message events (send/drop/deliver) in the structured
  /// trace. Off by default: availability sweeps exchange millions of
  /// messages. Protocol and topology events are always recorded.
  bool trace_messages = false;

  /// Ring-buffer capacity of the structured trace (0 = unbounded).
  std::size_t trace_capacity = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] MembershipOracle& oracle() noexcept { return *oracle_; }
  [[nodiscard]] ConsistencyChecker& checker() noexcept { return *checker_; }
  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const DvConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ProcessSet& core() const noexcept { return config_.core; }

  /// Run description for exporting the structured trace
  /// (sim().trace()) via trace_to_json. ambiguity_bound is the Theorem-1
  /// limit n − Min_Quorum + 1 for the protocols that enforce it (the
  /// optimized protocol with a static participant set), 0 otherwise.
  [[nodiscard]] obs::TraceMeta trace_meta() const;

  [[nodiscard]] ProtocolNode& protocol(ProcessId p);
  [[nodiscard]] PrimaryComponentService service(ProcessId p) {
    return PrimaryComponentService(protocol(p));
  }

  /// Adds a non-core process on the fly (paper section 6: joins). The
  /// new process starts in its own component; merge it to connect.
  void add_process(ProcessId p);

  /// Connects all live processes and settles: the usual way to start.
  void start() {
    sim_.merge_all();
    settle();
  }

  // -- fault injection (thin wrappers that keep call sites readable) -----
  void partition(const std::vector<ProcessSet>& groups) {
    sim_.set_components(groups);
  }
  void merge() { sim_.merge_all(); }
  void crash(ProcessId p) { sim_.crash(p); }
  void recover(ProcessId p) { sim_.recover(p); }

  /// Runs until no events remain (all sessions settled). Throws
  /// InvariantViolation if the event budget trips with work still
  /// pending: a runaway schedule must fail loudly, not produce a
  /// silently truncated bench row.
  void settle(std::size_t max_events = sim::EventQueue::kDefaultMaxEvents) {
    sim_.run_to_quiescence(max_events);
    ensure(sim_.queue().empty(),
           "settle: event budget exhausted with events still pending "
           "(runaway schedule)");
  }

  // -- queries -----------------------------------------------------------------

  /// Processes whose Is_Primary is currently true.
  [[nodiscard]] ProcessSet primary_members();

  /// The session of the unique live primary component, if exactly one
  /// distinct session is live; nullopt when none. Multiple distinct live
  /// sessions (split brain) also return nullopt — use checker() to
  /// detect that case explicitly.
  [[nodiscard]] std::optional<Session> live_primary();

  /// All process ids ever added.
  [[nodiscard]] const std::vector<ProcessId>& all_processes() const noexcept {
    return process_ids_;
  }

 private:
  DvConfig config_;
  ClusterOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<ConsistencyChecker> checker_;
  TraceRecorder trace_;
  std::unique_ptr<MetricsObserver> metrics_observer_;
  MultiObserver observers_;
  std::unique_ptr<MembershipOracle> oracle_;
  std::unique_ptr<Rng> loss_rng_;
  std::vector<ProcessId> process_ids_;

  struct MissRule {
    ProcessId victim;
    std::string type_substr;
    int remaining;
  };
  std::vector<MissRule> miss_rules_;

  void install_fault_modes();
  void on_topology_for_misses();
};

}  // namespace dynvote
