#include "harness/cluster.hpp"

#include "util/ensure.hpp"

namespace dynvote {

namespace {

DvConfig resolve_config(const ClusterOptions& options) {
  DvConfig config = options.config;
  if (config.core.empty()) config.core = ProcessSet::range(options.n);
  return config;
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : config_(resolve_config(options)),
      options_(std::move(options)),
      sim_(options_.sim),
      checker_(std::make_unique<ConsistencyChecker>(
          config_.core,
          /*seed_initial=*/options_.kind != ProtocolKind::kStaticMajority)),
      metrics_observer_(std::make_unique<MetricsObserver>(sim_.metrics())) {
  sim_.trace().set_capacity(options_.trace_capacity);
  sim_.trace().set_messages_enabled(options_.trace_messages);
  observers_.add(checker_.get());
  observers_.add(&trace_);
  observers_.add(metrics_observer_.get());
  for (ProcessId p : config_.core) add_process(p);
  // The oracle must subscribe after nodes exist but before any topology
  // change, so every view reaches a registered node.
  oracle_ = std::make_unique<MembershipOracle>(sim_, options_.membership);
  install_fault_modes();
}

void Cluster::install_fault_modes() {
  if (options_.message_loss <= 0.0 && options_.formation_miss <= 0.0) return;
  ensure(!(options_.message_loss > 0.0 && options_.formation_miss > 0.0),
         "choose one built-in fault mode");
  loss_rng_ = std::make_unique<Rng>(sim_.rng().split());

  if (options_.message_loss > 0.0) {
    const double p_loss = options_.message_loss;
    Rng* rng = loss_rng_.get();
    sim_.network().set_drop_filter([rng, p_loss](const sim::Envelope& env) {
      if (env.from == env.to) return false;  // loopback is process-internal
      return rng->next_bool(p_loss);
    });
    return;
  }

  // formation_miss: on every topology change, each new component may get
  // one member that will miss the session's closing round.
  sim_.network().add_topology_observer([this] { on_topology_for_misses(); });
  sim_.network().set_drop_filter([this](const sim::Envelope& env) {
    if (env.from == env.to) return false;
    for (MissRule& rule : miss_rules_) {
      if (rule.remaining == 0) continue;
      if (rule.victim != env.to) continue;
      if (env.payload->type_name().find(rule.type_substr) ==
          std::string::npos) {
        continue;
      }
      --rule.remaining;
      return true;
    }
    return false;
  });
}

void Cluster::on_topology_for_misses() {
  // Keep the rule list from growing without bound.
  std::erase_if(miss_rules_, [](const MissRule& r) { return r.remaining == 0; });
  // The closing round of a session: the attempt broadcast for the
  // two-or-more-round protocols, the info exchange for the one-round
  // naive baseline.
  std::string closing = "dv.attempt";
  if (options_.kind == ProtocolKind::kNaiveDynamic) closing = "dv.info";
  if (options_.kind == ProtocolKind::kCentralized) closing = "dvc.commit";
  for (const ProcessSet& component : sim_.network().live_components()) {
    if (component.size() < 2) continue;
    if (!loss_rng_->next_bool(options_.formation_miss)) continue;
    const auto& members = component.members();
    const ProcessId victim =
        members[static_cast<std::size_t>(loss_rng_->next_below(members.size()))];
    const int copies = options_.kind == ProtocolKind::kCentralized
                           ? 1
                           : static_cast<int>(component.size() - 1);
    miss_rules_.push_back(MissRule{victim, closing, copies});
  }
}

void Cluster::add_process(ProcessId p) {
  auto node = make_protocol(options_.kind, sim_.transport(), p, config_);
  node->set_observer(&observers_);
  sim_.add_node(std::move(node));
  process_ids_.push_back(p);
}

obs::TraceMeta Cluster::trace_meta() const {
  obs::TraceMeta meta;
  meta.protocol = to_string(options_.kind);
  meta.n = static_cast<std::uint32_t>(config_.core.size());
  meta.min_quorum = config_.min_quorum;
  meta.seed = options_.sim.seed;
  meta.core = config_.core;
  // Theorem 1 bounds the simultaneously recorded ambiguous sessions of
  // the garbage-collecting protocol at n − Min_Quorum + 1; the basic
  // protocol keeps everything (section 4.7) and the section-6 dynamic
  // membership changes n itself, so no bound is claimed there.
  if (options_.kind == ProtocolKind::kOptimized &&
      !config_.dynamic_participants && config_.min_quorum <= meta.n) {
    meta.ambiguity_bound = meta.n - config_.min_quorum + 1;
  }
  return meta;
}

ProtocolNode& Cluster::protocol(ProcessId p) {
  auto* protocol = dynamic_cast<ProtocolNode*>(&sim_.node(p));
  ensure(protocol != nullptr, "node is not a protocol instance");
  return *protocol;
}

ProcessSet Cluster::primary_members() {
  ProcessSet out;
  for (ProcessId p : process_ids_) {
    if (sim_.network().alive(p) && protocol(p).is_primary()) out.insert(p);
  }
  return out;
}

std::optional<Session> Cluster::live_primary() {
  std::optional<Session> found;
  for (ProcessId p : process_ids_) {
    if (!sim_.network().alive(p)) continue;
    auto& proto = protocol(p);
    if (!proto.is_primary()) continue;
    const Session& session = *proto.primary_session();
    if (found && !(*found == session)) return std::nullopt;  // ambiguous
    found = session;
  }
  return found;
}

}  // namespace dynvote
