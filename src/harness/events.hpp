// Observer plumbing: fan-out, human-readable traces, metrics bridge.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "dv/observer.hpp"
#include "obs/metrics.hpp"

namespace dynvote {

/// Forwards protocol events to any number of observers (the cluster
/// always installs the consistency checker; benches add trace recorders
/// or metric collectors alongside).
class MultiObserver final : public ProtocolObserver {
 public:
  /// Borrowed; callers keep the observers alive for the run.
  void add(ProtocolObserver* observer);

  void on_view_installed(SimTime time, ProcessId p, const View& view) override;
  void on_attempt(SimTime time, ProcessId p, const Session& session) override;
  void on_formed(SimTime time, ProcessId p, const Session& session,
                 int rounds) override;
  void on_primary_lost(SimTime time, ProcessId p) override;
  void on_session_rejected(SimTime time, ProcessId p, const View& view,
                           const std::string& reason) override;

 private:
  std::vector<ProtocolObserver*> observers_;
};

/// Records every protocol event as a timestamped line — the narrative
/// output of the scenario benches (experiments E1/E2) and a debugging
/// aid everywhere else.
class TraceRecorder final : public ProtocolObserver {
 public:
  struct Entry {
    SimTime time;
    ProcessId process;
    std::string text;
  };

  void on_view_installed(SimTime time, ProcessId p, const View& view) override;
  void on_attempt(SimTime time, ProcessId p, const Session& session) override;
  void on_formed(SimTime time, ProcessId p, const Session& session,
                 int rounds) override;
  void on_primary_lost(SimTime time, ProcessId p) override;
  void on_session_rejected(SimTime time, ProcessId p, const View& view,
                           const std::string& reason) override;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  void clear() { entries_.clear(); }

  /// Renders all entries, one per line.
  [[nodiscard]] std::string to_string() const;

 private:
  void add(SimTime time, ProcessId p, std::string text);

  std::vector<Entry> entries_;
};

/// Bridges protocol events into a MetricsRegistry: session counters plus
/// a rounds-per-formation histogram. The cluster installs one against
/// the simulation's registry, so protocol-level counts ship in the same
/// JSON export as the network counters.
///
/// Also accumulates "dv.primary_uptime_ticks": virtual time during which
/// at least one process was primary. An interval opens when the primary
/// count goes 0 -> 1 and closes (and is added) when it returns to 0; an
/// interval still open when the run ends is not counted. The span layer
/// (obs/spans.hpp) derives the same quantity from the trace alone with
/// the same convention, so the two can be cross-checked exactly.
class MetricsObserver final : public ProtocolObserver {
 public:
  explicit MetricsObserver(obs::MetricsRegistry& registry);

  void on_view_installed(SimTime time, ProcessId p, const View& view) override;
  void on_attempt(SimTime time, ProcessId p, const Session& session) override;
  void on_formed(SimTime time, ProcessId p, const Session& session,
                 int rounds) override;
  void on_primary_lost(SimTime time, ProcessId p) override;
  void on_session_rejected(SimTime time, ProcessId p, const View& view,
                           const std::string& reason) override;

 private:
  obs::Counter& views_;
  obs::Counter& attempts_;
  obs::Counter& formed_;
  obs::Counter& primary_lost_;
  obs::Counter& rejected_;
  obs::Histogram& rounds_;
  obs::Counter& uptime_;
  std::set<ProcessId> primary_procs_;
  SimTime uptime_open_ = 0;
};

}  // namespace dynvote
