// Monte-Carlo availability harness (experiments E5-E8).
//
// Replays a materialized failure schedule against a protocol and
// measures what fraction of virtual time the system had a live primary
// component, how often sessions were rejected or blocked, and whether
// consistency held. Replaying the *same* schedule against every protocol
// gives a paired comparison, which is how the paper's availability
// claims are phrased ("more available than", not absolute numbers).
#pragma once

#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/schedule.hpp"

namespace dynvote {

struct AvailabilityResult {
  ProtocolKind kind = ProtocolKind::kBasic;
  double availability = 0;  // fraction of time with a live primary
  std::uint64_t formed_sessions = 0;
  std::uint64_t rejected_sessions = 0;
  std::uint64_t blocked_sessions = 0;  // rejections due to blocking waits
  std::uint64_t violations = 0;        // split-brain / dup-number counts
  double mean_rounds = 0;              // communication rounds per formed session
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t max_ambiguous = 0;  // high-water ambiguous sessions (dv family)
};

/// Runs `kind` against `schedule`. `base` supplies n / Min_Quorum /
/// latency / membership options; its `kind` field is overridden.
[[nodiscard]] AvailabilityResult run_schedule(
    ProtocolKind kind, const std::vector<ScheduleEvent>& schedule,
    ClusterOptions base);

/// Convenience: run every given protocol against `count` schedules
/// generated from consecutive seeds, averaging the results per protocol.
/// The (kind, seed) grid runs on the sweep pool (harness/sweep.hpp) —
/// `threads` = 0 means DYNVOTE_THREADS / hardware_concurrency — and the
/// per-protocol averages are reduced in seed order, so the output is
/// identical at any thread count.
[[nodiscard]] std::vector<AvailabilityResult> compare_protocols(
    const std::vector<ProtocolKind>& kinds, const ClusterOptions& base,
    ScheduleOptions schedule_options, int count, std::size_t threads = 0);

}  // namespace dynvote
