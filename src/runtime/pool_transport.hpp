// PoolTransport: the M:N real-time backend — N protocol processes
// multiplexed over a fixed pool of W worker event loops.
//
// ThreadTransport (one OS thread per process) is the semantically
// simplest wall-clock backend, but a thread per process caps fleets at
// n≈32 runnable threads. This backend keeps the exact same
// sim::Transport seam and sim::Network-mirroring semantics while
// scheduling processes cooperatively:
//
//  * each worker owns a static shard of processes (index mod W — no
//    migration, so every per-process structure stays single-threaded),
//    one merged timer wheel, and one probe lane;
//  * cross-worker messages travel over W×W SPSC rings (one per ordered
//    worker pair — SPSC holds because a process never leaves its
//    worker, and per-process-pair FIFO is preserved because all p→q
//    traffic shares the single worker(p)→worker(q) ring);
//  * same-worker messages short-circuit to a plain deque run queue:
//    zero atomics on the hot path — no ring cursors, no inflight
//    counter, no eventcount bump;
//  * inbound rings are drained in batches (SpscQueue::pop_bulk), so a
//    burst costs one acquire refresh + one cursor publish + one wakeup
//    instead of a pair of fences per message.
//
// Backpressure without deadlock: a full cross-worker ring never blocks
// the sender (two workers spinning on each other's full rings would
// deadlock). Instead the item goes to a per-destination spill deque,
// flushed FIFO at the top of every loop iteration; once a destination
// has spilled items, new sends to it append behind them, preserving
// order. A worker with pending spill parks bounded (it must retry the
// flush; ring drains are not notified back to the producer).
//
// Quiescence: cross-worker and control items are counted in a global
// inflight counter (++ before push, -- after the handler). Local-queue
// items are deliberately NOT counted (the fast path stays atomic-free);
// soundness comes from a per-worker status word — odd while the loop
// may hold or produce local work, incremented to even only after a scan
// found nothing. The controller's quiesce() is a double-read: statuses
// all even, inflight zero, statuses unchanged. Any work that existed at
// the first read either shows in inflight (ring/control items) or
// forces its worker odd / onto a new status value (local items) before
// the second read.
//
// Determinism: for the protocols whose phase structure waits on ALL
// view members (the cross-check allow-list), per-process outcome
// transcripts are arrival-order independent, so outcome digests are
// byte-identical at ANY worker count — and equal to ThreadTransport's
// and the DES oracle's. runtime/crosscheck.hpp enforces all of this on
// every seeded scenario.
//
// Threading contract: identical to ThreadTransport — Transport surface
// from owning-worker handler context only, controller surface from the
// single controlling thread, per-process observability state reachable
// only via run_on + quiesce or after the join.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "membership/view.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_probe.hpp"
#include "obs/trace.hpp"
#include "runtime/eventcount.hpp"
#include "runtime/runtime_transport.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/thread_transport.hpp"  // RuntimeOptions
#include "runtime/timer_wheel.hpp"
#include "sim/node.hpp"
#include "sim/stable_storage.hpp"
#include "sim/transport.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/process_set.hpp"

namespace dynvote::runtime {

class PoolTransport final : public RuntimeTransport {
 public:
  /// `workers` = 0 picks hardware_concurrency; the count is always
  /// clamped to [1, n] (more workers than processes would idle).
  PoolTransport(const std::vector<ProcessId>& processes,
                std::uint32_t workers, RuntimeOptions options = {});
  ~PoolTransport() override;

  PoolTransport(const PoolTransport&) = delete;
  PoolTransport& operator=(const PoolTransport&) = delete;

  [[nodiscard]] std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  // -- Transport surface (worker-thread side) -------------------------------

  void send(sim::Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  sim::TimerToken schedule_timer(ProcessId p, SimTime delay,
                                 sim::TimerAction action) override;
  bool cancel_timer(ProcessId p, sim::TimerToken token) override;
  [[nodiscard]] sim::StableStorage& storage(ProcessId p) override;
  [[nodiscard]] obs::TraceSink& trace(ProcessId p) override;
  [[nodiscard]] obs::MetricsRegistry& metrics(ProcessId p) override;
  std::uint64_t lamport_tick(ProcessId p) override;
  [[nodiscard]] std::uint64_t last_topology_eid(ProcessId p) const override;
  void log(ProcessId p, LogLevel level, const std::string& message) override;

  // -- controller surface ---------------------------------------------------

  void set_node(sim::Node* node) override;
  void start() override;
  void stop_and_join() override;
  [[nodiscard]] bool running() const noexcept override { return running_; }

  void set_components(const std::vector<ProcessSet>& groups) override;
  void merge_all() override;
  void crash(ProcessId p) override;
  void recover(ProcessId p) override;
  [[nodiscard]] bool alive(ProcessId p) const override;
  [[nodiscard]] std::vector<ProcessSet> live_components() const override;

  void post_view(const View& view) override;
  void run_on(ProcessId p, sim::TimerAction fn) override;
  void quiesce() override;

  [[nodiscard]] const std::vector<ProcessId>& processes()
      const noexcept override {
    return ids_;
  }

  // -- probe surface --------------------------------------------------------

  [[nodiscard]] bool probes_enabled() const noexcept override {
    return options_.probes;
  }
  /// One lane per worker.
  [[nodiscard]] std::size_t lanes() const noexcept override {
    return workers_.size();
  }
  [[nodiscard]] std::uint32_t lane_of(ProcessId p) const override {
    return slot(p).worker;
  }
  [[nodiscard]] std::vector<obs::ThreadProbeLog> snapshot_probe_logs()
      override;
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_time_)
            .count());
  }

 private:
  struct ControlItem {
    enum class Kind : std::uint8_t { kNone, kView, kCrash, kRecover, kRun };
    Kind kind = Kind::kNone;
    ProcessId target;     // the process this item addresses
    View view;            // kView
    sim::TimerAction fn;  // kRun
    std::uint64_t sent_ns = 0;  // push timestamp, 0 unless probes are on
  };

  struct PoolItem {
    sim::Envelope env;
    std::uint64_t epoch = 0;    // link epoch at send
    std::uint64_t sent_ns = 0;  // enqueue timestamp, 0 unless probes are on
  };

  /// One protocol process: everything single-threaded on its worker
  /// except the controller-side bookkeeping at the bottom.
  struct Slot {
    ProcessId id;
    std::size_t index = 0;     // global index (pair_state row)
    std::uint32_t worker = 0;  // static shard assignment (index % W)
    sim::Node* node = nullptr;
    obs::TraceSink trace;
    obs::MetricsRegistry metrics;
    sim::StableStorage storage;
    Logger logger;
    std::uint64_t lamport = 0;        // worker-owned
    std::uint64_t last_topo_eid = 0;  // worker-owned
    /// Controller-side bookkeeping (controller thread only).
    std::uint32_t component = 0;
    bool ctl_alive = true;

    Slot(ProcessId pid, std::size_t idx, std::uint32_t w,
         const RuntimeOptions& options);
  };

  /// One event loop. Fields below `thread` are worker-owned unless
  /// noted; the controller reads `status` for the quiesce double-read.
  struct Worker {
    std::uint32_t index = 0;
    std::thread thread;
    RuntimeEventcount work;
    TimerWheel wheel;
    std::unique_ptr<obs::ProbeRing> probe;
    /// Wall-clock stamp of the latest bump aimed at this worker (probes
    /// only; relaxed — feeds a latency estimate, not ordering).
    std::atomic<std::uint64_t> notify_ns{0};
    /// Quiesce word: odd = the loop may hold or produce local work,
    /// even = parked after a scan that found nothing. Every transition
    /// increments, so the controller's double-read catches any activity
    /// between its two looks.
    std::atomic<std::uint64_t> status{1};
    /// Items handled since start (single writer: this worker; relaxed).
    /// quiesce() re-arms its stuck-handler timeout while this advances,
    /// so the timeout measures stall, not total work: a large fleet
    /// grinding through an O(n^2)-message formation on few cores is
    /// progress, a handler spinning forever is not.
    std::atomic<std::uint64_t> progress{0};
    std::unique_ptr<SpscQueue<ControlItem>> control;
    /// Same-worker fast path: plain FIFO, zero atomics.
    std::deque<PoolItem> local;
    /// Per-destination-worker overflow for full cross rings (the
    /// no-deadlock guarantee: senders never block).
    std::vector<std::deque<PoolItem>> spill;
    std::size_t spilled = 0;  // total items across spill deques
    /// pop_bulk scratch, reused so the steady-state drain allocates
    /// nothing.
    std::vector<PoolItem> batch;
    /// Global indices of the slots this worker owns, in id order.
    std::vector<std::size_t> owned;

    Worker(std::uint32_t idx, std::uint32_t num_workers,
           const RuntimeOptions& options, std::size_t control_capacity);
  };

  [[nodiscard]] Slot& slot(ProcessId p);
  [[nodiscard]] const Slot& slot(ProcessId p) const;
  [[nodiscard]] std::size_t index_of(ProcessId p) const;

  /// The worker(src)→worker(dst) data ring.
  [[nodiscard]] SpscQueue<PoolItem>& ring(std::uint32_t src,
                                          std::uint32_t dst) {
    return *rings_[src * workers_.size() + dst];
  }

  [[nodiscard]] std::atomic<std::uint64_t>& pair_state(std::size_t a,
                                                       std::size_t b) {
    return pair_state_[a * ids_.size() + b];
  }
  [[nodiscard]] const std::atomic<std::uint64_t>& pair_state(
      std::size_t a, std::size_t b) const {
    return pair_state_[a * ids_.size() + b];
  }
  void refresh_connectivity();

  void post_control(ProcessId p, ControlItem item);
  void bump_work(Worker& target);

  void worker_main(Worker& me);
  /// Pushes as much pending spill as the rings accept; true if any
  /// item moved.
  bool flush_spills(Worker& me);
  void handle_control(Worker& me, ControlItem& item);
  void handle_message(Worker& me, PoolItem& item, std::uint16_t source_lane);

  RuntimeOptions options_;
  std::vector<ProcessId> ids_;
  /// (id, index) sorted by id — O(log n) lookup on the send path (the
  /// thread backend's linear scan is fine at n≤32; at n=1024 it is not).
  std::vector<std::pair<ProcessId, std::size_t>> lookup_;
  std::vector<std::unique_ptr<Slot>> slots_;    // stable addresses, id order
  std::vector<std::unique_ptr<Worker>> workers_;  // stable addresses
  std::vector<std::unique_ptr<SpscQueue<PoolItem>>> rings_;  // W×W
  std::unique_ptr<obs::ProbeRing> controller_probe_;
  std::vector<std::atomic<std::uint64_t>> pair_state_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<bool> stop_{false};
  bool running_ = false;
  bool joined_ = false;
  std::uint32_t next_component_ = 1;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace dynvote::runtime
