// SpscQueue: a bounded lock-free single-producer single-consumer ring.
//
// The runtime backend (runtime/thread_transport.hpp) connects every
// ordered process pair with one of these, so a link is exactly one
// producer thread (the sender) and one consumer thread (the receiver)
// — the only shape that admits a wait-free ring with plain
// acquire/release pairs and no CAS loops.
//
// Layout follows the classic Lamport ring with two refinements:
//
//  * head (consumer cursor) and tail (producer cursor) live on their
//    own cache lines, so the producer's stores never invalidate the
//    line the consumer spins on (and vice versa);
//  * each side keeps a *cached* copy of the other side's cursor next to
//    its own, refreshed only when the queue looks full/empty. In steady
//    state a push is: one relaxed load (own tail), one store (slot),
//    one release store (tail) — no shared-line traffic at all.
//
// Indices are free-running uint64_t (no wrap handling needed for
// centuries at any realistic rate); the slot index is `cursor & mask`
// with a power-of-two capacity.
//
// Memory ordering: the producer publishes a slot with a release store
// of tail; the consumer acquires tail before reading the slot, and
// releases head after moving the value out so the producer's acquire
// of head cannot overtake the read. That is the entire protocol —
// verified under TSan by tests/runtime_test.cpp's stress cases.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ensure.hpp"

namespace dynvote::runtime {

/// x86-64 / AArch64 destructive-interference granularity. (Not
/// std::hardware_destructive_interference_size: its value is ABI-fragile
/// and GCC warns on any use inside a header.)
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. False when the ring is full (the caller decides
  /// whether to spin, yield, or drop); `value` is moved from only on
  /// success, so a failed push leaves it intact for the retry.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.pos.load(std::memory_order_relaxed);
    if (tail - tail_.cached_other > mask_) {
      tail_.cached_other = head_.pos.load(std::memory_order_acquire);
      if (tail - tail_.cached_other > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.pos.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.pos.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.pos.load(std::memory_order_acquire);
      if (head == head_.cached_other) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.pos.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: moves up to `max` items into `out`
  /// (appended, FIFO order preserved) and returns how many. The whole
  /// batch costs at most one acquire refresh of the producer cursor and
  /// exactly one release store of the consumer cursor — the per-item
  /// cost of a burst drain collapses to a plain move. Drains only what
  /// the one refresh saw: items pushed concurrently with the drain are
  /// picked up by the next call (their producer bumps the eventcount,
  /// so no consumer goes idle on them).
  std::size_t pop_bulk(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    const std::uint64_t head = head_.pos.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.pos.load(std::memory_order_acquire);
      if (head == head_.cached_other) return 0;
    }
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(head_.cached_other - head, max));
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.pos.store(head + count, std::memory_order_release);
    return count;
  }

  /// Consumer-side emptiness probe (exact for the consumer: it owns
  /// head, and a concurrent push can only make the queue less empty).
  [[nodiscard]] bool empty() const {
    return head_.pos.load(std::memory_order_relaxed) ==
           tail_.pos.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer-side occupancy estimate (exact for the producer: it owns
  /// tail, and a concurrent pop can only make the queue less full).
  /// Costs an acquire of head — for probes, not the hot path.
  [[nodiscard]] std::size_t producer_size() const {
    return static_cast<std::size_t>(
        tail_.pos.load(std::memory_order_relaxed) -
        head_.pos.load(std::memory_order_acquire));
  }

 private:
  /// One side's cursor plus its cached snapshot of the other side's,
  /// padded so the two sides never share a line.
  struct alignas(kCacheLineSize) Side {
    std::atomic<std::uint64_t> pos{0};
    std::uint64_t cached_other = 0;  // owned by this side's thread only
  };
  static_assert(sizeof(Side) == kCacheLineSize, "one side = one line");

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  Side head_;  // consumer: pos = next slot to pop, cached_other = tail
  Side tail_;  // producer: pos = next slot to fill, cached_other = head
};

}  // namespace dynvote::runtime
