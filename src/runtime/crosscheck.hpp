// Cross-check harness: the DES as oracle for the wall-clock runtimes.
//
// The argument that makes the comparison sound: the session protocols
// wait for *all* view members in every phase, so a session's outcome
// depends only on the view and the per-phase message sets — never on
// arrival order within a phase. Both backends drive the identical
// topology script through the identical view-announcement algorithm
// (MembershipOracle in the DES, its verbatim mirror in RuntimeFleet)
// and run each step to a fixed point (settle / quiesce) with no message
// loss, so they install the same view sequence at every process and
// therefore form the same primaries with the same session numbers,
// memberships, and round counts. run_scenario() makes that equality
// executable: one seeded script, both backends, digest comparison plus
// per-step C1 checks.
//
// Scope: the deterministic-outcome argument covers the quiescent
// protocols (kBasic, kOptimized, and the other all-member-wait
// variants). It does NOT cover kCentralized (coordinator election's
// tie-breaks are timing-dependent across backends) — the harness
// rejects kinds outside the allow-list rather than report spurious
// divergence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dv/service.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote::runtime {

/// One topology verb of a scenario script.
struct ScenarioStep {
  enum class Kind : std::uint8_t { kPartition, kMerge, kCrash, kRecover };
  Kind kind = Kind::kMerge;
  std::vector<ProcessSet> groups;  // kPartition
  ProcessId p;                     // kCrash / kRecover

  [[nodiscard]] std::string to_string() const;
};

/// Deterministically expands (n, seed) into `steps` valid verbs:
/// crashes only hit live processes (always leaving one), recoveries
/// only dead ones, partitions split all n ids into 2-3 groups.
[[nodiscard]] std::vector<ScenarioStep> make_scenario(std::uint32_t n,
                                                      std::uint64_t seed,
                                                      std::size_t steps);

/// One pool-backend execution of the scenario at a given worker count.
struct PoolCheck {
  std::uint32_t workers = 0;
  std::uint64_t digest = 0;
};

struct CrossCheckResult {
  std::uint64_t seed = 0;
  std::uint64_t sim_digest = 0;
  std::uint64_t runtime_digest = 0;
  /// Pool-backend digests, one per requested worker count. Determinism
  /// demands byte-identity at ANY W, so these must all equal the two
  /// digests above.
  std::vector<PoolCheck> pool;
  /// True only when every backend agrees: DES == thread-per-process ==
  /// pool at every requested worker count (summaries, not just hashes).
  bool digests_equal = false;
  /// C1 held (<= 1 distinct live primary session) at every quiescent
  /// point of every execution.
  bool c1_clean = false;
  /// Full transcripts, for diagnostics when digests diverge.
  std::string sim_summary;
  std::string runtime_summary;
  /// First divergent pool transcript (empty when all pool runs agree).
  std::string pool_divergent_summary;
};

/// Runs the seed's scenario on every backend — the DES, the
/// thread-per-process runtime, and the pool runtime once per entry of
/// `pool_workers` — and compares outcomes. Throws InvariantViolation
/// for protocol kinds outside the deterministic-outcome allow-list.
/// `probes` turns wall-clock probe rings on in the runtime fleets —
/// outcomes must be identical either way, which is how the
/// digest-neutrality of the probe layer is asserted (probes-on digest
/// == probes-off digest == DES digest).
[[nodiscard]] CrossCheckResult run_scenario(
    ProtocolKind kind, std::uint32_t n, std::uint64_t seed,
    std::size_t steps = 10, bool probes = false,
    const std::vector<std::uint32_t>& pool_workers = {1, 2, 4});

}  // namespace dynvote::runtime
