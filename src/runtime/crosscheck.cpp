#include "runtime/crosscheck.hpp"

#include <algorithm>
#include <set>

#include "harness/cluster.hpp"
#include "runtime/fleet.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace dynvote::runtime {

namespace {

/// Kinds whose outcome is provably arrival-order independent (every
/// phase waits for all members); only these may be cross-checked.
bool deterministic_outcome(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kBasic:
    case ProtocolKind::kOptimized:
    case ProtocolKind::kThreePhaseRecovery:
      return true;
    default:
      return false;
  }
}

/// The canonical transcript of a DES run, in the exact format of
/// RuntimeFleet::outcome_summary(): the simulator records all processes
/// into one sink, so filter per process (order within one process is
/// preserved) and append each node's final state.
std::string cluster_summary(Cluster& cluster) {
  std::string out;
  for (ProcessId p : cluster.all_processes()) {
    out += to_string(p) + ":";
    for (const obs::TraceEvent& event : cluster.sim().trace().events()) {
      if (event.a != p) continue;
      switch (event.kind) {
        case obs::TraceEventKind::kViewInstalled:
          out += " V" + std::to_string(event.number) + "=" +
                 to_string(event.members);
          break;
        case obs::TraceEventKind::kSessionFormed:
          out += " F" + std::to_string(event.number) + "r" +
                 std::to_string(event.value) + "=" + to_string(event.members);
          break;
        default:
          break;
      }
    }
    const ProtocolNode& node = cluster.protocol(p);
    out += " | primary=" + to_string(node.primary_session()) +
           " formed=" + std::to_string(node.formed_count()) + "\n";
  }
  return out;
}

/// C1 at a quiescent point of the DES: distinct primary sessions among
/// live processes (the same predicate RuntimeFleet::distinct_primaries
/// applies to a probe snapshot).
std::size_t cluster_distinct_primaries(Cluster& cluster) {
  std::set<Session> sessions;
  for (ProcessId p : cluster.all_processes()) {
    if (!cluster.sim().network().alive(p)) continue;
    const ProtocolNode& node = cluster.protocol(p);
    if (node.is_primary() && node.primary_session()) {
      sessions.insert(*node.primary_session());
    }
  }
  return sessions.size();
}

}  // namespace

std::string ScenarioStep::to_string() const {
  switch (kind) {
    case Kind::kMerge:
      return "merge";
    case Kind::kCrash:
      return "crash " + dynvote::to_string(p);
    case Kind::kRecover:
      return "recover " + dynvote::to_string(p);
    case Kind::kPartition: {
      std::string out = "partition";
      for (const ProcessSet& group : groups) out += " " + group.to_string();
      return out;
    }
  }
  return "?";
}

std::vector<ScenarioStep> make_scenario(std::uint32_t n, std::uint64_t seed,
                                        std::size_t steps) {
  ensure(n >= 2, "scenario needs at least two processes");
  Rng rng(seed);
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;
  std::vector<ScenarioStep> script;
  script.reserve(steps);

  auto pick = [&](bool want_alive) {
    std::uint32_t idx =
        static_cast<std::uint32_t>(rng.next_below(n));
    while (alive[idx] != want_alive) idx = (idx + 1) % n;
    return idx;
  };

  while (script.size() < steps) {
    ScenarioStep step;
    switch (rng.next_below(4)) {
      case 0: {  // partition all ids into 2-3 groups
        std::vector<ProcessId> ids;
        for (std::uint32_t i = 0; i < n; ++i) ids.push_back(ProcessId(i));
        rng.shuffle(ids);
        const std::size_t k =
            std::min<std::size_t>(2 + rng.next_below(2), ids.size());
        step.kind = ScenarioStep::Kind::kPartition;
        step.groups.resize(k);
        // Every group gets one seed member; the rest land uniformly.
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const std::size_t g = i < k ? i : rng.next_below(k);
          step.groups[g].insert(ids[i]);
        }
        break;
      }
      case 1:
        step.kind = ScenarioStep::Kind::kMerge;
        break;
      case 2: {
        if (alive_count <= 1) continue;  // keep one process up
        step.kind = ScenarioStep::Kind::kCrash;
        const std::uint32_t idx = pick(true);
        step.p = ProcessId(idx);
        alive[idx] = false;
        --alive_count;
        break;
      }
      case 3: {
        if (alive_count == n) continue;  // nobody to recover
        step.kind = ScenarioStep::Kind::kRecover;
        const std::uint32_t idx = pick(false);
        step.p = ProcessId(idx);
        alive[idx] = true;
        ++alive_count;
        break;
      }
    }
    script.push_back(std::move(step));
  }
  return script;
}

namespace {

/// One wall-clock execution of the script; returns its transcript and
/// folds its per-step C1 checks into `c1_clean`.
std::string run_fleet(FleetOptions options,
                      const std::vector<ScenarioStep>& script,
                      bool& c1_clean) {
  RuntimeFleet fleet(std::move(options));
  fleet.start();
  c1_clean &= RuntimeFleet::distinct_primaries(fleet.probe()) <= 1;
  for (const ScenarioStep& step : script) {
    switch (step.kind) {
      case ScenarioStep::Kind::kPartition:
        fleet.partition(step.groups);
        break;
      case ScenarioStep::Kind::kMerge:
        fleet.merge();
        break;
      case ScenarioStep::Kind::kCrash:
        fleet.crash(step.p);
        break;
      case ScenarioStep::Kind::kRecover:
        fleet.recover(step.p);
        break;
    }
    c1_clean &= RuntimeFleet::distinct_primaries(fleet.probe()) <= 1;
  }
  fleet.stop();
  return fleet.outcome_summary();
}

}  // namespace

CrossCheckResult run_scenario(ProtocolKind kind, std::uint32_t n,
                              std::uint64_t seed, std::size_t steps,
                              bool probes,
                              const std::vector<std::uint32_t>& pool_workers) {
  ensure(deterministic_outcome(kind),
         std::string("cross-check does not cover protocol kind ") +
             dynvote::to_string(kind));
  const std::vector<ScenarioStep> script = make_scenario(n, seed, steps);

  CrossCheckResult result;
  result.seed = seed;
  result.c1_clean = true;

  {  // DES run
    ClusterOptions options;
    options.kind = kind;
    options.n = n;
    options.sim.seed = seed;
    Cluster cluster(options);
    cluster.start();
    result.c1_clean &= cluster_distinct_primaries(cluster) <= 1;
    for (const ScenarioStep& step : script) {
      switch (step.kind) {
        case ScenarioStep::Kind::kPartition:
          cluster.partition(step.groups);
          break;
        case ScenarioStep::Kind::kMerge:
          cluster.merge();
          break;
        case ScenarioStep::Kind::kCrash:
          cluster.crash(step.p);
          break;
        case ScenarioStep::Kind::kRecover:
          cluster.recover(step.p);
          break;
      }
      cluster.settle();
      result.c1_clean &= cluster_distinct_primaries(cluster) <= 1;
    }
    result.sim_summary = cluster_summary(cluster);
    result.sim_digest = fnv1a64(result.sim_summary);
  }

  {  // thread-per-process run, same script
    FleetOptions options;
    options.kind = kind;
    options.n = n;
    options.runtime.probes = probes;
    result.runtime_summary = run_fleet(std::move(options), script,
                                       result.c1_clean);
    result.runtime_digest = fnv1a64(result.runtime_summary);
  }

  bool all_equal = result.sim_digest == result.runtime_digest &&
                   result.sim_summary == result.runtime_summary;

  // Pool runs, same script, once per worker count: the M:N scheduler
  // must reproduce the exact transcript at ANY W.
  for (const std::uint32_t workers : pool_workers) {
    FleetOptions options;
    options.kind = kind;
    options.n = n;
    options.runtime.probes = probes;
    options.backend = RuntimeBackend::kPool;
    options.workers = workers;
    const std::string summary = run_fleet(std::move(options), script,
                                          result.c1_clean);
    const std::uint64_t digest = fnv1a64(summary);
    result.pool.push_back(PoolCheck{workers, digest});
    if (summary != result.sim_summary || digest != result.sim_digest) {
      all_equal = false;
      if (result.pool_divergent_summary.empty()) {
        result.pool_divergent_summary = summary;
      }
    }
  }

  result.digests_equal = all_equal;
  return result;
}

}  // namespace dynvote::runtime
