// RuntimeFleet: one real-thread system running one protocol variant.
//
// The runtime analogue of harness::Cluster: wires a ThreadTransport to
// one protocol node per process, plays the membership oracle's role
// (the oracle itself is simulator-scheduled, so the fleet re-implements
// its exact view-announcement algorithm over the transport's live
// components — same view-id sequence, same changed-component filter),
// and exposes the same fault-injection verbs. Between verbs the fleet
// quiesces the transport, which makes the execution step-deterministic:
// every topology step runs to a fixed point before the next, exactly
// like Cluster::settle() — that is what lets the DES act as the oracle
// for this backend (runtime/crosscheck.hpp).
//
// Thread-safety: all methods are controller-thread only. probe() reads
// node state from the owning threads (via run_on + quiesce), so it is
// safe while running; outcome_summary()/outcome_digest() require the
// fleet to be stopped.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dv/service.hpp"
#include "runtime/pool_transport.hpp"
#include "runtime/runtime_transport.hpp"
#include "runtime/thread_transport.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote::runtime {

/// Which wall-clock execution engine backs the fleet.
enum class RuntimeBackend : std::uint8_t {
  kThreadPerProcess,  // ThreadTransport: one OS thread per process
  kPool,              // PoolTransport: N processes over W workers
};

struct FleetOptions {
  ProtocolKind kind = ProtocolKind::kOptimized;
  /// Number of core processes (ids 0..n-1). Ignored if config.core set.
  std::uint32_t n = 5;
  DvConfig config;
  RuntimeOptions runtime;
  RuntimeBackend backend = RuntimeBackend::kThreadPerProcess;
  /// Pool worker count (kPool only); 0 = hardware_concurrency, always
  /// clamped to [1, n].
  std::uint32_t workers = 0;
};

/// One process's state as observed by probe(): read on the process's
/// own thread, published to the controller by the quiesce barrier.
struct ProcessProbe {
  ProcessId id;
  bool alive = false;
  bool is_primary = false;
  std::optional<Session> primary;
  std::uint64_t formed_count = 0;
};

class RuntimeFleet {
 public:
  explicit RuntimeFleet(FleetOptions options);
  ~RuntimeFleet();

  RuntimeFleet(const RuntimeFleet&) = delete;
  RuntimeFleet& operator=(const RuntimeFleet&) = delete;

  /// Spawns the process threads, connects everyone, announces the first
  /// view, and waits for the initial sessions to settle.
  void start();

  /// Stops and joins all process threads. Idempotent; the destructor
  /// calls it. After stop() the outcome accessors are available.
  void stop();

  // -- fault injection (each verb runs to quiescence) ---------------------
  void partition(const std::vector<ProcessSet>& groups);
  void merge();
  void crash(ProcessId p);
  void recover(ProcessId p);

  /// Snapshot of every process's protocol state, in id order.
  [[nodiscard]] std::vector<ProcessProbe> probe();

  /// Snapshot of every probe ring: one lane per execution thread (the
  /// backend decides — process threads or pool workers; copied on the
  /// owning thread via run_on + quiesce) plus the controller lane
  /// (thread = obs::kControllerLane). Empty when the fleet was built
  /// without runtime.probes.
  [[nodiscard]] std::vector<obs::ThreadProbeLog> probe_logs();

  /// Distinct primary sessions among live probed processes. C1 (total
  /// order on primaries) requires <= 1 at any quiescent point.
  [[nodiscard]] static std::size_t distinct_primaries(
      const std::vector<ProcessProbe>& probes);

  /// Canonical per-process outcome transcript: every view install and
  /// session formation (id/number/members/rounds, no wall-clock times)
  /// plus the final protocol state. Two executions that made the same
  /// protocol decisions produce identical summaries — this is the string
  /// the DES cross-check compares (after stop()).
  [[nodiscard]] std::string outcome_summary();

  /// FNV-1a 64 of outcome_summary().
  [[nodiscard]] std::uint64_t outcome_digest();

  [[nodiscard]] RuntimeTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] const std::vector<ProcessId>& processes() const noexcept {
    return transport_->processes();
  }
  [[nodiscard]] ProtocolNode& protocol(ProcessId p);
  [[nodiscard]] const DvConfig& config() const noexcept { return config_; }

 private:
  /// MembershipOracle::on_topology_changed, verbatim: announce a fresh
  /// view (ids from next_view_id_, starting 1) for every live component
  /// whose membership differs from some member's latest view.
  void announce_views();

  FleetOptions options_;
  DvConfig config_;
  std::unique_ptr<RuntimeTransport> transport_;
  std::vector<std::unique_ptr<ProtocolNode>> nodes_;  // id order
  /// latest_scheduled_ mirror: the members of the last view announced to
  /// each process (persists across crashes, exactly like the oracle).
  std::vector<ProcessSet> latest_members_;
  std::vector<bool> has_view_;
  std::uint64_t next_view_id_ = 1;
  bool started_ = false;
};

/// FNV-1a 64-bit — tiny, deterministic, dependency-free; collisions are
/// irrelevant here (the cross-check compares summaries on mismatch).
[[nodiscard]] std::uint64_t fnv1a64(const std::string& data);

}  // namespace dynvote::runtime
