// TimerWheel: a hashed timer wheel for one runtime process.
//
// Each process thread owns exactly one wheel; it is deliberately
// single-threaded (no atomics) — cross-thread wakeups are the
// transport's job, the wheel only answers "what is due by time t?".
//
// Structure: 256 slots of `tick_us` each; a timer at absolute deadline
// d hashes to slot (d / tick) % 256 and *keeps its absolute deadline*,
// so a timer further than one revolution away simply stays in its slot
// across cursor passes until its deadline is actually reached (the
// classic hashed — not hierarchical — wheel of Varghese & Lauck).
//
// advance(now) scans at most one revolution of slots between the last
// cursor position and `now`, collects every entry with deadline <= now,
// fires them in deterministic (deadline, token) order, and leaves the
// rest in place. Cancellation is O(slot occupancy) via a token -> slot
// index.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/transport.hpp"
#include "util/ids.hpp"

namespace dynvote::runtime {

class TimerWheel {
 public:
  /// `tick_us` is the slot granularity; timers land on their exact
  /// deadline regardless (the wheel only coarsens the *scan*, not the
  /// firing decision).
  explicit TimerWheel(SimTime tick_us = 1024);

  /// Schedules `action` at absolute time `deadline` (same clock as
  /// advance()). Returns a token for cancel(); tokens are unique per
  /// wheel and never 0.
  sim::TimerToken schedule_at(SimTime deadline, sim::TimerAction action);

  /// Cancels a pending timer. False if it already fired / was cancelled.
  bool cancel(sim::TimerToken token);

  /// Fires every timer with deadline <= now, in (deadline, token)
  /// order. Returns the number fired. `now` must not go backwards.
  std::size_t advance(SimTime now);

  /// Earliest pending deadline, if any — what an idle thread may sleep
  /// until. O(pending) worst case, but only consulted when idle.
  [[nodiscard]] std::optional<SimTime> next_deadline() const;

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// Observation hook, called by advance() once per fired entry —
  /// (deadline, now) just before the entry's action runs — so the owner
  /// can measure fire slop without the wheel knowing about probes.
  /// Same single-threaded contract as every other method.
  void set_fire_hook(std::function<void(SimTime deadline, SimTime now)> hook) {
    fire_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    SimTime deadline = 0;
    sim::TimerToken token = 0;
    sim::TimerAction action;
  };

  static constexpr std::size_t kSlots = 256;

  [[nodiscard]] std::size_t slot_of(SimTime deadline) const noexcept {
    return static_cast<std::size_t>((deadline / tick_) % kSlots);
  }

  SimTime tick_;
  std::uint64_t cursor_tick_ = 0;  // last scanned tick = floor(now / tick_)
  sim::TimerToken next_token_ = 1;
  std::size_t pending_ = 0;
  std::vector<Entry> slots_[kSlots];
  std::unordered_map<sim::TimerToken, std::size_t> token_slot_;
  std::function<void(SimTime, SimTime)> fire_hook_;
};

}  // namespace dynvote::runtime
