// ThreadTransport: the real-time backend — one OS thread per process.
//
// Implements sim::Transport over actual concurrency: every ordered
// process pair is connected by a bounded lock-free SPSC ring
// (runtime/spsc_queue.hpp), each process thread runs an event loop that
// drains its inbound links, its control queue (views, crash/recover,
// injected closures from the controller) and its private timer wheel,
// and parks on a futex (std::atomic::wait) when idle. The clock is
// monotonic microseconds since transport start.
//
// Semantics mirror sim::Network so the DES remains a valid oracle
// (runtime/crosscheck.hpp holds both backends to identical outcomes):
//
//  * connectivity is component-based: connected(a,b) iff both alive and
//    in the same component; set_components / merge_all / crash /
//    recover reshape components exactly like Network's versions
//    (a recovering process comes back as a fresh singleton);
//  * every pair carries a link epoch, bumped on each disconnection; a
//    message is stamped with the epoch at send and dropped at delivery
//    if the link's epoch moved — a partition loses in-flight traffic
//    (paper section 3);
//  * per-pair FIFO is the ring's order; Lamport clocks advance exactly
//    as in Network (send ticks the sender, delivery merges).
//
// Threading contract: the Transport surface is called only from
// process threads (each process from its own thread — the sim::Node
// handlers run there); the controller surface (start/stop, topology,
// post_view, run_on, quiesce) only from the single controlling thread.
// Observability state (trace/metrics/storage/logger/wheel) is
// per-process and unsynchronized; the controller may touch it only
// through run_on + quiesce, or after stop_and_join.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "membership/view.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_probe.hpp"
#include "obs/trace.hpp"
#include "runtime/eventcount.hpp"
#include "runtime/runtime_transport.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/timer_wheel.hpp"
#include "sim/node.hpp"
#include "sim/stable_storage.hpp"
#include "sim/transport.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/process_set.hpp"

namespace dynvote::runtime {

struct RuntimeOptions {
  /// Capacity of each directed data link, in messages. The protocols
  /// bound per-link depth by their phase structure (at most a handful
  /// outstanding), so this is backpressure headroom, not a tuning knob.
  std::size_t link_capacity = 256;
  /// Capacity of each controller->process control queue.
  std::size_t control_capacity = 128;
  /// Timer-wheel slot granularity, microseconds.
  SimTime wheel_tick_us = 1024;
  /// Per-process logger threshold.
  LogLevel log_level = LogLevel::kWarn;
  /// Per-process trace-ring capacity. Bounded by default so long
  /// benches don't grow trace memory without limit; the default is far
  /// above any cross-check scenario's event count, so digests are
  /// unaffected. 0 is the explicit unbounded opt-out for runs that need
  /// the complete history regardless of length.
  std::size_t trace_capacity = 65536;
  /// Wall-clock probe rings (obs/runtime_probe.hpp). Off by default;
  /// when off no ring exists and every record site is a single branch
  /// on a null pointer.
  bool probes = false;
  /// Per-thread probe-ring capacity (entries, rounded up to a power of
  /// two); older entries are overwritten in place. The default (256KB
  /// per thread) retains several bench runs' worth of events; keeping
  /// it modest also keeps the probes-on fleet construction cost inside
  /// the <5% overhead budget under sanitizer builds, where large
  /// allocations carry per-byte poisoning cost.
  std::size_t probe_capacity = 1 << 13;
};

class ThreadTransport final : public RuntimeTransport {
 public:
  explicit ThreadTransport(const std::vector<ProcessId>& processes,
                           RuntimeOptions options = {});
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  // -- Transport surface (process-thread side) ------------------------------

  void send(sim::Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  sim::TimerToken schedule_timer(ProcessId p, SimTime delay,
                                 sim::TimerAction action) override;
  bool cancel_timer(ProcessId p, sim::TimerToken token) override;
  [[nodiscard]] sim::StableStorage& storage(ProcessId p) override;
  [[nodiscard]] obs::TraceSink& trace(ProcessId p) override;
  [[nodiscard]] obs::MetricsRegistry& metrics(ProcessId p) override;
  std::uint64_t lamport_tick(ProcessId p) override;
  [[nodiscard]] std::uint64_t last_topology_eid(ProcessId p) const override;
  void log(ProcessId p, LogLevel level, const std::string& message) override;

  // -- controller surface ---------------------------------------------------

  /// Attaches the node that runs on `node->id()`'s thread. All nodes
  /// must be attached before start(); borrowed, must outlive stop.
  void set_node(sim::Node* node) override;

  /// Spawns one thread per process. Idempotent start/stop is not
  /// supported: one lifecycle per transport.
  void start() override;

  /// Signals every thread to finish its remaining work and exit, then
  /// joins them. Safe to call twice; the destructor calls it.
  void stop_and_join() override;

  [[nodiscard]] bool running() const noexcept override { return running_; }

  /// Topology mirrors of sim::Network (call at quiescence only).
  void set_components(const std::vector<ProcessSet>& groups) override;
  void merge_all() override;
  /// Runs node->crash() on p's thread and disconnects p (epoch bumps
  /// lose its in-flight traffic), keeping its component assignment —
  /// exactly Simulator::crash + Network::set_alive(p, false).
  void crash(ProcessId p) override;
  /// Runs node->recover() on p's thread and reconnects p as a fresh
  /// singleton component — Network::set_alive(p, true).
  void recover(ProcessId p) override;
  [[nodiscard]] bool alive(ProcessId p) const override;
  /// Components with their dead members filtered out, sorted by
  /// smallest member — the shape MembershipOracle consumes.
  [[nodiscard]] std::vector<ProcessSet> live_components() const override;

  /// Enqueues deliver_view(view) on every member's thread (the runtime
  /// analogue of the oracle's per-member scheduled delivery).
  void post_view(const View& view) override;

  /// Runs `fn` on p's thread (state probes; effects are visible to the
  /// controller after the next quiesce()).
  void run_on(ProcessId p, sim::TimerAction fn) override;

  /// Blocks until no message, control item or handler is in flight
  /// anywhere. With quiescent topology this is a global fixed point:
  /// handlers only run on queued work, so inflight == 0 is stable.
  void quiesce() override;

  [[nodiscard]] const std::vector<ProcessId>& processes()
      const noexcept override {
    return ids_;
  }

  // -- probe surface --------------------------------------------------------

  [[nodiscard]] bool probes_enabled() const noexcept override {
    return options_.probes;
  }
  /// One lane per process thread.
  [[nodiscard]] std::size_t lanes() const noexcept override {
    return ids_.size();
  }
  [[nodiscard]] std::uint32_t lane_of(ProcessId p) const override {
    return static_cast<std::uint32_t>(index_of(p));
  }
  [[nodiscard]] std::vector<obs::ThreadProbeLog> snapshot_probe_logs()
      override;
  /// p's probe ring (null when probes are off). The ring is written by
  /// p's thread: read it only via run_on + quiesce or after the join.
  [[nodiscard]] obs::ProbeRing* probe_ring(ProcessId p) {
    return proc(p).probe.get();
  }
  /// The controller thread's own ring (control pushes); null when off.
  /// The controller is its single writer, so the controlling thread may
  /// read it directly.
  [[nodiscard]] obs::ProbeRing* controller_probe_ring() noexcept {
    return controller_probe_.get();
  }
  /// Nanoseconds since transport start — the probe timestamp clock,
  /// 1000x finer than now() on the same epoch.
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_time_)
            .count());
  }

 private:
  struct ControlItem {
    enum class Kind : std::uint8_t { kNone, kView, kCrash, kRecover, kRun };
    Kind kind = Kind::kNone;
    View view;            // kView
    sim::TimerAction fn;  // kRun
    std::uint64_t sent_ns = 0;  // push timestamp, 0 unless probes are on
  };

  struct LinkItem {
    sim::Envelope env;
    std::uint64_t epoch = 0;    // link epoch at send
    std::uint64_t sent_ns = 0;  // push timestamp, 0 unless probes are on
  };

  /// Everything one process thread owns. The eventcount is the
  /// thread's futex word: producers bump-and-notify after pushing,
  /// the thread re-reads it before parking (runtime/eventcount.hpp; no
  /// mutex anywhere on the message path).
  struct Proc {
    ProcessId id;
    std::size_t index = 0;
    sim::Node* node = nullptr;
    std::thread thread;
    RuntimeEventcount work;
    TimerWheel wheel;
    obs::TraceSink trace;
    obs::MetricsRegistry metrics;
    sim::StableStorage storage;
    Logger logger;
    std::uint64_t lamport = 0;        // thread-owned
    std::uint64_t last_topo_eid = 0;  // thread-owned
    /// Wall-clock probe ring; null when options.probes is false, so a
    /// disabled probe site costs one pointer test.
    std::unique_ptr<obs::ProbeRing> probe;
    /// Wall-clock stamp of the latest bump_work aimed at this thread
    /// (probes only; relaxed — it feeds a latency estimate, not an
    /// ordering decision).
    std::atomic<std::uint64_t> notify_ns{0};
    std::unique_ptr<SpscQueue<ControlItem>> control;
    /// Inbound data links, indexed by sender slot.
    std::vector<std::unique_ptr<SpscQueue<LinkItem>>> in;
    /// Batch-drain scratch for pop_bulk (thread-owned; reused so the
    /// steady-state drain allocates nothing).
    std::vector<LinkItem> batch;
    /// Controller-side bookkeeping (controller thread only).
    std::uint32_t component = 0;
    bool ctl_alive = true;

    Proc(ProcessId pid, std::size_t idx, const RuntimeOptions& options);
  };

  [[nodiscard]] Proc& proc(ProcessId p);
  [[nodiscard]] const Proc& proc(ProcessId p) const;
  [[nodiscard]] std::size_t index_of(ProcessId p) const;

  /// pair_state_[a*n+b]: (epoch << 1) | connected. Controller writes
  /// (release), sender/receiver threads read (acquire).
  [[nodiscard]] std::atomic<std::uint64_t>& pair_state(std::size_t a,
                                                       std::size_t b) {
    return pair_state_[a * ids_.size() + b];
  }
  /// Recomputes connectivity from components + liveness, bumping the
  /// epoch of every pair that transitions connected -> disconnected.
  void refresh_connectivity();

  void post_control(ProcessId p, ControlItem item);
  void bump_work(Proc& target);

  void thread_main(Proc& me);
  void handle_control(Proc& me, ControlItem& item);
  void handle_message(Proc& me, LinkItem& item);

  RuntimeOptions options_;
  std::vector<ProcessId> ids_;
  std::vector<std::unique_ptr<Proc>> procs_;  // stable addresses
  /// Controller thread's probe ring (control-queue pushes); null when
  /// probes are off.
  std::unique_ptr<obs::ProbeRing> controller_probe_;
  std::vector<std::atomic<std::uint64_t>> pair_state_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<bool> stop_{false};
  bool running_ = false;
  bool joined_ = false;
  std::uint32_t next_component_ = 1;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace dynvote::runtime
