#include "runtime/timer_wheel.hpp"

#include <algorithm>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote::runtime {

TimerWheel::TimerWheel(SimTime tick_us) : tick_(tick_us) {
  ensure(tick_ > 0, "timer wheel tick must be positive");
}

sim::TimerToken TimerWheel::schedule_at(SimTime deadline,
                                        sim::TimerAction action) {
  ensure(static_cast<bool>(action), "scheduling an empty timer action");
  const sim::TimerToken token = next_token_++;
  const std::size_t slot = slot_of(deadline);
  slots_[slot].push_back(Entry{deadline, token, std::move(action)});
  token_slot_.emplace(token, slot);
  ++pending_;
  return token;
}

bool TimerWheel::cancel(sim::TimerToken token) {
  auto it = token_slot_.find(token);
  if (it == token_slot_.end()) return false;
  auto& slot = slots_[it->second];
  for (auto entry = slot.begin(); entry != slot.end(); ++entry) {
    if (entry->token == token) {
      slot.erase(entry);
      token_slot_.erase(it);
      --pending_;
      return true;
    }
  }
  ensure(false, "timer wheel token map out of sync");
  return false;
}

std::size_t TimerWheel::advance(SimTime now) {
  const std::uint64_t to_tick = now / tick_;
  ensure(to_tick >= cursor_tick_, "timer wheel clock went backwards");
  if (pending_ == 0) {
    cursor_tick_ = to_tick;
    return 0;
  }

  // Scan every slot the cursor passes over — capped at one revolution,
  // after which the scan has seen every slot once and more passes
  // cannot surface anything new.
  const std::uint64_t span =
      std::min<std::uint64_t>(to_tick - cursor_tick_ + 1, kSlots);
  std::vector<Entry> due;
  for (std::uint64_t i = 0; i < span; ++i) {
    auto& slot = slots_[static_cast<std::size_t>((cursor_tick_ + i) % kSlots)];
    for (std::size_t j = 0; j < slot.size();) {
      if (slot[j].deadline <= now) {
        due.push_back(std::move(slot[j]));
        slot[j] = std::move(slot.back());
        slot.pop_back();
      } else {
        ++j;
      }
    }
  }
  cursor_tick_ = to_tick;
  if (due.empty()) return 0;

  // Deterministic firing order regardless of slot hashing: by deadline,
  // ties by schedule order (tokens are issued monotonically).
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline < b.deadline ||
           (a.deadline == b.deadline && a.token < b.token);
  });
  for (Entry& entry : due) {
    token_slot_.erase(entry.token);
    --pending_;
    if (fire_hook_) fire_hook_(entry.deadline, now);
    entry.action();
  }
  return due.size();
}

std::optional<SimTime> TimerWheel::next_deadline() const {
  if (pending_ == 0) return std::nullopt;
  std::optional<SimTime> earliest;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      if (!earliest || entry.deadline < *earliest) earliest = entry.deadline;
    }
  }
  return earliest;
}

}  // namespace dynvote::runtime
