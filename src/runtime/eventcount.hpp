// RuntimeEventcount: the park/notify primitive of the runtime backends.
//
// Both runtime transports (thread-per-process and the M:N pool) put an
// idle event loop to sleep with the same eventcount pattern: producers
// bump a sequence word *after* pushing work and notify; the consumer
// reads the word *before* scanning its queues and parks on the old
// value, so a wakeup can be missed only if the scan already saw the
// work. This header extracts that pattern from the transports so both
// share one audited implementation.
//
// Two park flavors:
//
//  * wait(seen): indefinite park on std::atomic::wait — used when the
//    owner has no pending timer, so only a producer can create work;
//  * wait_until(seen, deadline, now): bounded park used when a timer
//    deadline pends. C++20 atomic wait has no timeout, so the bound is
//    realized as a loop of short sleep slices with the sequence word
//    re-checked between slices. The invariant that makes the bound
//    honest: the remaining budget is recomputed from the CURRENT clock
//    on every iteration, so a spurious wake close to the deadline
//    re-parks only for the remainder — never for the full slice cap.
//    (The pre-extraction transport code sized each nap from a clock
//    reading taken before the previous sleep, so a wake near the
//    deadline could oversleep it by a whole slice; the regression test
//    RuntimeEventcount.BoundedWaitRechecksDeadline pins the fix.)
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/ids.hpp"

namespace dynvote::runtime {

class RuntimeEventcount {
 public:
  /// Longest single sleep slice of a bounded park, microseconds. Also
  /// bounds how long a bounded park can ignore a notify: sleep slices
  /// are not interruptible, so a message that arrives mid-slice waits
  /// out the remainder of that slice at most.
  static constexpr SimTime kMaxNapSliceUs = 200;

  /// The consumer's pre-scan read: park tokens must be taken BEFORE
  /// scanning for work (any push that lands after this read also bumps
  /// the word, so the wait cannot miss it).
  [[nodiscard]] std::uint32_t prepare() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

  /// Producer side: call AFTER the work is visible (pushed). Release on
  /// the bump orders the push before the consumer's acquire re-read.
  void notify() noexcept {
    seq_.fetch_add(1, std::memory_order_release);
    seq_.notify_all();
  }

  /// Parks until the sequence moves past `seen`. May return spuriously
  /// (the platform wait may); callers rescan regardless.
  void wait(std::uint32_t seen) {
    seq_.wait(seen, std::memory_order_acquire);
  }

  /// How long the next sleep slice of a bounded park may be: the time
  /// left until `deadline_us`, clamped to `cap_us` — and zero once the
  /// deadline has passed. Pure, so the deadline-recheck contract is
  /// testable without threads.
  [[nodiscard]] static SimTime nap_slice_us(
      SimTime now_us, SimTime deadline_us,
      SimTime cap_us = kMaxNapSliceUs) noexcept {
    if (now_us >= deadline_us) return 0;
    return std::min(deadline_us - now_us, cap_us);
  }

  /// Bounded park: returns when the sequence moves past `seen` OR
  /// `now_us()` reaches `deadline_us`, whichever is first (plus at most
  /// one sleep slice of slack — slices are not interruptible). `now_us`
  /// is the owner's clock, re-read after every wake so the remaining
  /// budget shrinks monotonically; `cap_us` is injectable for tests.
  template <typename NowUs>
  void wait_until(std::uint32_t seen, SimTime deadline_us, NowUs&& now_us,
                  SimTime cap_us = kMaxNapSliceUs) {
    while (seq_.load(std::memory_order_acquire) == seen) {
      const SimTime slice = nap_slice_us(now_us(), deadline_us, cap_us);
      if (slice == 0) return;
      std::this_thread::sleep_for(std::chrono::microseconds(slice));
    }
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
};

}  // namespace dynvote::runtime
