#include "runtime/thread_transport.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote::runtime {

namespace {
/// How long a producer spins on a full ring before the run is declared
/// wedged. Per-link depth is bounded by the protocols' phase structure
/// (a handful of messages), so hitting this means a consumer thread died
/// — fail loudly rather than hang the bench.
constexpr auto kBackpressureTimeout = std::chrono::seconds(30);
constexpr auto kQuiesceTimeout = std::chrono::seconds(60);
}  // namespace

ThreadTransport::Proc::Proc(ProcessId pid, std::size_t idx,
                            const RuntimeOptions& options)
    : id(pid), index(idx), wheel(options.wheel_tick_us) {
  trace.set_capacity(options.trace_capacity);
  logger.set_level(options.log_level);
  control = std::make_unique<SpscQueue<ControlItem>>(options.control_capacity);
  if (options.probes) {
    probe = std::make_unique<obs::ProbeRing>(options.probe_capacity);
  }
}

ThreadTransport::ThreadTransport(const std::vector<ProcessId>& processes,
                                 RuntimeOptions options)
    : options_(options),
      ids_(processes),
      pair_state_(processes.size() * processes.size()),
      start_time_(std::chrono::steady_clock::now()) {
  ensure(!ids_.empty(), "runtime transport needs at least one process");
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    for (std::size_t j = i + 1; j < ids_.size(); ++j) {
      ensure(ids_[i] != ids_[j], "duplicate process id");
    }
  }
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    procs_.push_back(std::make_unique<Proc>(ids_[i], i, options_));
    procs_.back()->component = next_component_++;
  }
  for (auto& p : procs_) {
    p->in.reserve(ids_.size());
    for (std::size_t s = 0; s < ids_.size(); ++s) {
      p->in.push_back(
          std::make_unique<SpscQueue<LinkItem>>(options_.link_capacity));
    }
  }
  if (options_.probes) {
    controller_probe_ = std::make_unique<obs::ProbeRing>(options_.probe_capacity);
    for (auto& p : procs_) {
      // Fire slop, measured at the wheel: (deadline, now) land here just
      // before the entry's action runs, on p's own thread.
      Proc& me = *p;
      me.wheel.set_fire_hook([&me](SimTime deadline, SimTime fired_at) {
        me.probe->record(obs::ProbeKind::kTimerFire, deadline * 1000,
                         (fired_at - deadline) * 1000, obs::kNoLane,
                         me.trace.last_eid());
      });
    }
  }
  refresh_connectivity();  // self-links up, everything else down
}

ThreadTransport::~ThreadTransport() { stop_and_join(); }

std::size_t ThreadTransport::index_of(ProcessId p) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == p) return i;
  }
  ensure(false, "unknown runtime process " + to_string(p));
  return 0;
}

ThreadTransport::Proc& ThreadTransport::proc(ProcessId p) {
  return *procs_[index_of(p)];
}

const ThreadTransport::Proc& ThreadTransport::proc(ProcessId p) const {
  return *procs_[index_of(p)];
}

// -- Transport surface ------------------------------------------------------

void ThreadTransport::send(sim::Envelope env) {
  Proc& from = proc(env.from);
  const std::size_t ti = index_of(env.to);
  const std::uint64_t st =
      pair_state(from.index, ti).load(std::memory_order_acquire);
  if ((st & 1) == 0) {
    // Not connected at send time: silently lost, like Network's
    // unroutable/filtered drop.
    from.metrics.counter("rt.dropped_unroutable").increment();
    return;
  }
  env.lamport = ++from.lamport;
  from.metrics.counter("rt.sent").increment();

  Proc& target = *procs_[ti];
  LinkItem item{std::move(env), st >> 1,
                from.probe ? now_ns() : std::uint64_t{0}};
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  SpscQueue<LinkItem>& link = *target.in[from.index];
  if (!link.try_push(std::move(item))) {
    const std::uint64_t stall_start = from.probe ? now_ns() : 0;
    const auto give_up = std::chrono::steady_clock::now() + kBackpressureTimeout;
    do {
      // Full ring: the receiver is behind. Make sure it is awake, then
      // yield — the bounded queue is the backpressure.
      bump_work(target);
      std::this_thread::yield();
      ensure(std::chrono::steady_clock::now() < give_up,
             "runtime link backpressure timeout (receiver wedged?)");
    } while (!link.try_push(std::move(item)));
    if (from.probe) {
      from.probe->record(obs::ProbeKind::kLinkPushFailed, stall_start,
                         now_ns() - stall_start,
                         static_cast<std::uint16_t>(ti),
                         from.trace.last_eid());
    }
  }
  if (from.probe) {
    from.probe->record(obs::ProbeKind::kLinkPush, now_ns(),
                       link.producer_size(), static_cast<std::uint16_t>(ti),
                       from.trace.last_eid());
  }
  bump_work(target);
}

SimTime ThreadTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

sim::TimerToken ThreadTransport::schedule_timer(ProcessId p, SimTime delay,
                                                sim::TimerAction action) {
  Proc& me = proc(p);
  if (me.probe) {
    me.probe->record(obs::ProbeKind::kTimerSchedule, now_ns(), delay * 1000,
                     obs::kNoLane, me.trace.last_eid());
  }
  return me.wheel.schedule_at(now() + delay, std::move(action));
}

bool ThreadTransport::cancel_timer(ProcessId p, sim::TimerToken token) {
  return proc(p).wheel.cancel(token);
}

sim::StableStorage& ThreadTransport::storage(ProcessId p) {
  return proc(p).storage;
}

obs::TraceSink& ThreadTransport::trace(ProcessId p) { return proc(p).trace; }

obs::MetricsRegistry& ThreadTransport::metrics(ProcessId p) {
  return proc(p).metrics;
}

std::uint64_t ThreadTransport::lamport_tick(ProcessId p) {
  return ++proc(p).lamport;
}

std::uint64_t ThreadTransport::last_topology_eid(ProcessId p) const {
  return proc(p).last_topo_eid;
}

void ThreadTransport::log(ProcessId p, LogLevel level,
                          const std::string& message) {
  Proc& me = proc(p);
  me.logger.log(now(), level, to_string(p), message);
}

// -- controller surface -----------------------------------------------------

void ThreadTransport::set_node(sim::Node* node) {
  ensure(node != nullptr, "null node");
  ensure(!running_, "set_node after start");
  Proc& me = proc(node->id());
  ensure(me.node == nullptr, "node attached twice");
  me.node = node;
}

void ThreadTransport::start() {
  ensure(!running_ && !joined_, "one lifecycle per transport");
  for (auto& p : procs_) {
    ensure(p->node != nullptr,
           "process " + to_string(p->id) + " has no node attached");
  }
  running_ = true;
  for (auto& p : procs_) {
    Proc& me = *p;
    me.thread = std::thread([this, &me] { thread_main(me); });
  }
}

void ThreadTransport::stop_and_join() {
  if (joined_) return;
  joined_ = true;
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& p : procs_) bump_work(*p);
  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
  running_ = false;
}

void ThreadTransport::set_components(const std::vector<ProcessSet>& groups) {
  ProcessSet seen;
  for (const ProcessSet& group : groups) {
    ensure(!group.empty(), "empty component");
    for (ProcessId p : group) {
      ensure(!seen.contains(p), "components must be disjoint");
      seen.insert(p);
    }
    const std::uint32_t component = next_component_++;
    for (ProcessId p : group) proc(p).component = component;
  }
  refresh_connectivity();
}

void ThreadTransport::merge_all() {
  ProcessSet all;
  for (ProcessId p : ids_) all.insert(p);
  set_components({all});
}

void ThreadTransport::crash(ProcessId p) {
  Proc& me = proc(p);
  if (!me.ctl_alive) return;
  post_control(p, ControlItem{ControlItem::Kind::kCrash, {}, {}});
  me.ctl_alive = false;  // keeps its component, like Network::set_alive
  refresh_connectivity();
}

void ThreadTransport::recover(ProcessId p) {
  Proc& me = proc(p);
  if (me.ctl_alive) return;
  post_control(p, ControlItem{ControlItem::Kind::kRecover, {}, {}});
  me.ctl_alive = true;
  me.component = next_component_++;  // fresh singleton component
  refresh_connectivity();
}

bool ThreadTransport::alive(ProcessId p) const { return proc(p).ctl_alive; }

std::vector<ProcessSet> ThreadTransport::live_components() const {
  std::map<std::uint32_t, ProcessSet> by_component;
  for (const auto& p : procs_) {
    if (p->ctl_alive) by_component[p->component].insert(p->id);
  }
  std::vector<ProcessSet> components;
  components.reserve(by_component.size());
  for (auto& [component, members] : by_component) {
    components.push_back(std::move(members));
  }
  // Network::live_components orders by smallest member; the oracle's
  // view-id assignment depends on this order, so the mirror must too.
  std::sort(components.begin(), components.end(),
            [](const ProcessSet& a, const ProcessSet& b) {
              return *a.begin() < *b.begin();
            });
  return components;
}

void ThreadTransport::post_view(const View& view) {
  for (ProcessId p : view.members) {
    post_control(p, ControlItem{ControlItem::Kind::kView, view, {}});
  }
}

void ThreadTransport::run_on(ProcessId p, sim::TimerAction fn) {
  ensure(static_cast<bool>(fn), "run_on with empty closure");
  post_control(p, ControlItem{ControlItem::Kind::kRun, {}, std::move(fn)});
}

void ThreadTransport::quiesce() {
  const auto give_up = std::chrono::steady_clock::now() + kQuiesceTimeout;
  while (inflight_.load(std::memory_order_acquire) != 0) {
    ensure(std::chrono::steady_clock::now() < give_up,
           "runtime quiesce timeout (a handler is stuck?)");
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

// -- internals --------------------------------------------------------------

void ThreadTransport::refresh_connectivity() {
  const std::size_t n = ids_.size();
  for (std::size_t a = 0; a < n; ++a) {
    const Proc& pa = *procs_[a];
    for (std::size_t b = 0; b < n; ++b) {
      const Proc& pb = *procs_[b];
      const bool want =
          pa.ctl_alive && pb.ctl_alive && pa.component == pb.component;
      std::atomic<std::uint64_t>& state = pair_state(a, b);
      // The controller is the only writer: a relaxed read sees its own
      // latest store.
      const std::uint64_t current = state.load(std::memory_order_relaxed);
      if ((current & 1) != 0 && !want) {
        // Disconnection bumps the epoch: in-flight traffic on this link
        // is lost even if the pair later reconnects.
        state.store(((current >> 1) + 1) << 1, std::memory_order_release);
      } else if ((current & 1) == 0 && want) {
        state.store(current | 1, std::memory_order_release);
      }
    }
  }
}

void ThreadTransport::post_control(ProcessId p, ControlItem item) {
  Proc& target = proc(p);
  if (controller_probe_) item.sent_ns = now_ns();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (!target.control->try_push(std::move(item))) {
    const std::uint64_t stall_start = controller_probe_ ? now_ns() : 0;
    const auto give_up = std::chrono::steady_clock::now() + kBackpressureTimeout;
    do {
      bump_work(target);
      std::this_thread::yield();
      ensure(std::chrono::steady_clock::now() < give_up,
             "runtime control backpressure timeout");
    } while (!target.control->try_push(std::move(item)));
    if (controller_probe_) {
      controller_probe_->record(obs::ProbeKind::kLinkPushFailed, stall_start,
                                now_ns() - stall_start,
                                static_cast<std::uint16_t>(target.index), 0);
    }
  }
  if (controller_probe_) {
    controller_probe_->record(obs::ProbeKind::kControlPush, now_ns(),
                              target.control->producer_size(),
                              static_cast<std::uint16_t>(target.index), 0);
  }
  bump_work(target);
}

void ThreadTransport::bump_work(Proc& target) {
  if (target.probe) {
    target.notify_ns.store(now_ns(), std::memory_order_relaxed);
  }
  target.work.notify();
}

void ThreadTransport::thread_main(Proc& me) {
  ControlItem control;
  obs::ProbeRing* const probe = me.probe.get();
  while (true) {
    // Read the eventcount before scanning: any push that lands after
    // this read also bumps the word, so the wait below cannot miss it.
    const std::uint32_t seq = me.work.prepare();
    bool did_work = false;
    while (me.control->try_pop(control)) {
      if (probe) {
        const std::uint64_t t = now_ns();
        probe->record(obs::ProbeKind::kControlPop, t,
                      t > control.sent_ns ? t - control.sent_ns : 0,
                      obs::kControllerLane, me.trace.last_eid());
        handle_control(me, control);
        probe->record(obs::ProbeKind::kHandlerControl, t, now_ns() - t,
                      obs::kControllerLane, me.trace.last_eid());
      } else {
        handle_control(me, control);
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      did_work = true;
    }
    for (std::size_t si = 0; si < me.in.size(); ++si) {
      SpscQueue<LinkItem>& link = *me.in[si];
      // Batched drain: the whole burst costs one acquire refresh and
      // one cursor publish instead of a pair per message.
      while (link.pop_bulk(me.batch, link.capacity()) > 0) {
        if (probe) {
          probe->record(obs::ProbeKind::kBatch, now_ns(), me.batch.size(),
                        static_cast<std::uint16_t>(si), me.trace.last_eid());
        }
        for (LinkItem& item : me.batch) {
          if (probe) {
            const std::uint64_t t = now_ns();
            probe->record(obs::ProbeKind::kLinkPop, t,
                          t > item.sent_ns ? t - item.sent_ns : 0,
                          static_cast<std::uint16_t>(si), me.trace.last_eid());
            handle_message(me, item);
            probe->record(obs::ProbeKind::kHandlerMessage, t, now_ns() - t,
                          static_cast<std::uint16_t>(si), me.trace.last_eid());
          } else {
            handle_message(me, item);
          }
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
        me.batch.clear();
        did_work = true;
      }
    }
    if (probe) {
      const std::uint64_t t = now_ns();
      if (me.wheel.advance(now()) > 0) {
        // One entry per firing advance() — the fire hook records the
        // per-timer slop, this records the batch's execution time.
        probe->record(obs::ProbeKind::kHandlerTimer, t, now_ns() - t,
                      obs::kNoLane, me.trace.last_eid());
        did_work = true;
      }
    } else if (me.wheel.advance(now()) > 0) {
      did_work = true;
    }
    if (did_work) continue;
    if (stop_.load(std::memory_order_acquire)) break;

    const auto deadline = me.wheel.next_deadline();
    if (deadline) {
      // A pending timer bounds the nap; the eventcount still wakes us
      // early for messages (checked at the top of the loop). wait_until
      // re-sizes every sleep slice from the current clock, so a wake
      // close to the deadline cannot re-park for the full slice cap.
      if (*deadline > now()) {
        const std::uint64_t nap_start = probe ? now_ns() : 0;
        me.work.wait_until(seq, *deadline, [this] { return now(); });
        if (probe) {
          // Split the nap at the deadline: time before it is parked,
          // time past it is slop the timer's consumer will observe.
          const std::uint64_t wake_ns = now_ns();
          const std::uint64_t deadline_ns = *deadline * 1000;
          if (wake_ns > deadline_ns) {
            if (deadline_ns > nap_start) {
              probe->record(obs::ProbeKind::kParked, nap_start,
                            deadline_ns - nap_start, obs::kNoLane,
                            me.trace.last_eid());
            }
            const std::uint64_t slop_from = std::max(nap_start, deadline_ns);
            probe->record(obs::ProbeKind::kTimerSlop, slop_from,
                          wake_ns - slop_from, obs::kNoLane,
                          me.trace.last_eid());
          } else {
            probe->record(obs::ProbeKind::kParked, nap_start,
                          wake_ns - nap_start, obs::kNoLane,
                          me.trace.last_eid());
          }
        }
      }
    } else {
      // Fully idle: park on the futex until a producer bumps the word.
      if (probe) {
        const std::uint64_t park_start = now_ns();
        me.work.wait(seq);
        const std::uint64_t wake_ns = now_ns();
        probe->record(obs::ProbeKind::kParked, park_start,
                      wake_ns - park_start, obs::kNoLane, me.trace.last_eid());
        // Wakeup latency: only meaningful when the notify landed during
        // this park (a stale stamp from before the park says nothing).
        const std::uint64_t notify =
            me.notify_ns.load(std::memory_order_relaxed);
        if (notify >= park_start && wake_ns > notify) {
          probe->record(obs::ProbeKind::kWakeup, wake_ns, wake_ns - notify,
                        obs::kNoLane, me.trace.last_eid());
        }
      } else {
        me.work.wait(seq);
      }
    }
  }
}

std::vector<obs::ThreadProbeLog> ThreadTransport::snapshot_probe_logs() {
  if (!options_.probes) return {};
  std::vector<obs::ThreadProbeLog> logs(ids_.size() + 1);
  if (running_) {
    // Each ring is copied on its owning thread; quiesce publishes the
    // copies back to the controller.
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      obs::ThreadProbeLog& log = logs[i];
      obs::ProbeRing* ring = procs_[i]->probe.get();
      run_on(ids_[i], [&log, ring] {
        log.dropped = ring->dropped();
        log.entries = ring->snapshot();
      });
    }
    quiesce();
  } else {
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      logs[i].dropped = procs_[i]->probe->dropped();
      logs[i].entries = procs_[i]->probe->snapshot();
    }
  }
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    logs[i].thread = static_cast<std::uint32_t>(i);
  }
  logs.back().thread = obs::kControllerLane;
  logs.back().dropped = controller_probe_->dropped();
  logs.back().entries = controller_probe_->snapshot();
  return logs;
}

void ThreadTransport::handle_control(Proc& me, ControlItem& item) {
  switch (item.kind) {
    case ControlItem::Kind::kView: {
      // Mirror Network's bookkeeping: the view install the node records
      // next cites the topology change that produced the component.
      obs::TraceEvent event;
      event.time = now();
      event.kind = obs::TraceEventKind::kTopologyChange;
      event.members = item.view.members;
      me.last_topo_eid = me.trace.record(std::move(event));
      me.node->deliver_view(item.view);
      return;
    }
    case ControlItem::Kind::kCrash:
      me.node->crash();
      return;
    case ControlItem::Kind::kRecover:
      me.node->recover();
      return;
    case ControlItem::Kind::kRun:
      item.fn();
      return;
    case ControlItem::Kind::kNone:
      break;
  }
  ensure(false, "empty control item");
}

void ThreadTransport::handle_message(Proc& me, LinkItem& item) {
  const std::size_t si = index_of(item.env.from);
  const std::uint64_t st =
      pair_state(si, me.index).load(std::memory_order_acquire);
  if ((st & 1) == 0 || (st >> 1) != item.epoch) {
    // The link was cut (or cut and re-formed) while the message was in
    // flight: partition semantics say it is lost.
    me.metrics.counter("rt.dropped_link_epoch").increment();
    return;
  }
  me.lamport = std::max(me.lamport, item.env.lamport) + 1;
  me.metrics.counter("rt.delivered").increment();
  me.node->deliver_message(std::move(item.env));
}

}  // namespace dynvote::runtime
