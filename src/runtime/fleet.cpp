#include "runtime/fleet.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote::runtime {

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

RuntimeFleet::RuntimeFleet(FleetOptions options)
    : options_(std::move(options)), config_(options_.config) {
  std::vector<ProcessId> ids;
  if (config_.core.empty()) {
    ensure(options_.n > 0, "fleet needs at least one process");
    for (std::uint32_t i = 0; i < options_.n; ++i) {
      config_.core.insert(ProcessId(i));
    }
  }
  for (ProcessId p : config_.core) ids.push_back(p);

  if (options_.backend == RuntimeBackend::kPool) {
    transport_ = std::make_unique<PoolTransport>(ids, options_.workers,
                                                 options_.runtime);
  } else {
    transport_ = std::make_unique<ThreadTransport>(ids, options_.runtime);
  }
  latest_members_.resize(ids.size());
  has_view_.resize(ids.size(), false);
  nodes_.reserve(ids.size());
  for (ProcessId p : ids) {
    nodes_.push_back(make_protocol(options_.kind, *transport_, p, config_));
    transport_->set_node(nodes_.back().get());
  }
}

RuntimeFleet::~RuntimeFleet() { stop(); }

ProtocolNode& RuntimeFleet::protocol(ProcessId p) {
  const auto& ids = transport_->processes();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == p) return *nodes_[i];
  }
  ensure(false, "unknown fleet process " + to_string(p));
  return *nodes_.front();
}

void RuntimeFleet::start() {
  ensure(!started_, "one lifecycle per fleet");
  started_ = true;
  transport_->start();
  merge();
}

void RuntimeFleet::stop() { transport_->stop_and_join(); }

void RuntimeFleet::partition(const std::vector<ProcessSet>& groups) {
  transport_->set_components(groups);
  announce_views();
  transport_->quiesce();
}

void RuntimeFleet::merge() {
  transport_->merge_all();
  announce_views();
  transport_->quiesce();
}

void RuntimeFleet::crash(ProcessId p) {
  transport_->crash(p);
  announce_views();
  transport_->quiesce();
}

void RuntimeFleet::recover(ProcessId p) {
  transport_->recover(p);
  announce_views();
  transport_->quiesce();
}

void RuntimeFleet::announce_views() {
  const auto& ids = transport_->processes();
  auto slot_of = [&](ProcessId p) {
    return static_cast<std::size_t>(
        std::find(ids.begin(), ids.end(), p) - ids.begin());
  };
  for (const ProcessSet& component : transport_->live_components()) {
    bool changed = false;
    for (ProcessId p : component) {
      const std::size_t slot = slot_of(p);
      if (!has_view_[slot] || latest_members_[slot] != component) {
        changed = true;
        break;
      }
    }
    if (!changed) continue;
    View view{ViewId(next_view_id_++), component};
    for (ProcessId p : component) {
      const std::size_t slot = slot_of(p);
      latest_members_[slot] = component;
      has_view_[slot] = true;
    }
    transport_->post_view(view);
  }
}

std::vector<ProcessProbe> RuntimeFleet::probe() {
  const auto& ids = transport_->processes();
  std::vector<ProcessProbe> probes(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ProcessProbe& slot = probes[i];
    slot.id = ids[i];
    slot.alive = transport_->alive(ids[i]);
    ProtocolNode* node = nodes_[i].get();
    // Reads run on the owning thread; quiesce() below is the barrier
    // that publishes them back to the controller.
    transport_->run_on(ids[i], [&slot, node] {
      slot.is_primary = node->is_primary();
      slot.primary = node->primary_session();
      slot.formed_count = node->formed_count();
    });
  }
  transport_->quiesce();
  return probes;
}

std::vector<obs::ThreadProbeLog> RuntimeFleet::probe_logs() {
  // Lane layout is backend-specific (process threads vs pool workers),
  // so the transport owns the snapshot logic.
  return transport_->snapshot_probe_logs();
}

std::size_t RuntimeFleet::distinct_primaries(
    const std::vector<ProcessProbe>& probes) {
  std::set<Session> sessions;
  for (const ProcessProbe& probe : probes) {
    if (probe.alive && probe.is_primary && probe.primary) {
      sessions.insert(*probe.primary);
    }
  }
  return sessions.size();
}

std::string RuntimeFleet::outcome_summary() {
  ensure(!transport_->running(),
         "outcome_summary requires a stopped fleet (stop() first)");
  std::string out;
  const auto& ids = transport_->processes();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out += to_string(ids[i]) + ":";
    for (const obs::TraceEvent& event : transport_->trace(ids[i]).events()) {
      switch (event.kind) {
        case obs::TraceEventKind::kViewInstalled:
          out += " V" + std::to_string(event.number) + "=" +
                 to_string(event.members);
          break;
        case obs::TraceEventKind::kSessionFormed:
          out += " F" + std::to_string(event.number) + "r" +
                 std::to_string(event.value) + "=" + to_string(event.members);
          break;
        default:
          break;
      }
    }
    const ProtocolNode& node = *nodes_[i];
    out += " | primary=" + to_string(node.primary_session()) +
           " formed=" + std::to_string(node.formed_count()) + "\n";
  }
  return out;
}

std::uint64_t RuntimeFleet::outcome_digest() {
  return fnv1a64(outcome_summary());
}

}  // namespace dynvote::runtime
