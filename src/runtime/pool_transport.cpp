#include "runtime/pool_transport.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote::runtime {

namespace {
/// How long the controller spins on a full control ring before the run
/// is declared wedged (workers never block, so a live worker always
/// drains its control ring eventually).
constexpr auto kBackpressureTimeout = std::chrono::seconds(30);
constexpr auto kQuiesceTimeout = std::chrono::seconds(60);
}  // namespace

PoolTransport::Slot::Slot(ProcessId pid, std::size_t idx, std::uint32_t w,
                          const RuntimeOptions& options)
    : id(pid), index(idx), worker(w) {
  trace.set_capacity(options.trace_capacity);
  logger.set_level(options.log_level);
}

PoolTransport::Worker::Worker(std::uint32_t idx, std::uint32_t num_workers,
                              const RuntimeOptions& options,
                              std::size_t control_capacity)
    : index(idx), wheel(options.wheel_tick_us), spill(num_workers) {
  control = std::make_unique<SpscQueue<ControlItem>>(control_capacity);
  if (options.probes) {
    probe = std::make_unique<obs::ProbeRing>(options.probe_capacity);
  }
}

PoolTransport::PoolTransport(const std::vector<ProcessId>& processes,
                             std::uint32_t workers, RuntimeOptions options)
    : options_(options),
      ids_(processes),
      pair_state_(processes.size() * processes.size()),
      start_time_(std::chrono::steady_clock::now()) {
  ensure(!ids_.empty(), "runtime transport needs at least one process");
  lookup_.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    lookup_.emplace_back(ids_[i], i);
  }
  std::sort(lookup_.begin(), lookup_.end());
  for (std::size_t i = 1; i < lookup_.size(); ++i) {
    ensure(lookup_[i - 1].first != lookup_[i].first, "duplicate process id");
  }

  std::uint32_t w = workers;
  if (w == 0) w = std::max(1u, std::thread::hardware_concurrency());
  w = static_cast<std::uint32_t>(
      std::min<std::size_t>(w, ids_.size()));  // extra workers would idle

  for (std::size_t i = 0; i < ids_.size(); ++i) {
    slots_.push_back(std::make_unique<Slot>(
        ids_[i], i, static_cast<std::uint32_t>(i % w), options_));
    slots_.back()->component = next_component_++;
  }

  // A view announcement lands one control item per member, so a worker
  // can see its whole shard addressed in one burst; size the ring so
  // two back-to-back bursts fit without making the controller spin.
  const std::size_t per_worker = (ids_.size() + w - 1) / w;
  const std::size_t control_capacity =
      std::max(options_.control_capacity, 2 * per_worker + 8);
  for (std::uint32_t wi = 0; wi < w; ++wi) {
    workers_.push_back(
        std::make_unique<Worker>(wi, w, options_, control_capacity));
  }
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    workers_[i % w]->owned.push_back(i);
  }

  // A cross-worker ring aggregates every process pair between its two
  // workers, so scale its capacity with the shard size; the spill
  // deques make this a performance knob, not a correctness bound.
  const std::size_t ring_capacity =
      std::max(options_.link_capacity, 4 * per_worker);
  rings_.reserve(static_cast<std::size_t>(w) * w);
  for (std::uint32_t src = 0; src < w; ++src) {
    for (std::uint32_t dst = 0; dst < w; ++dst) {
      rings_.push_back(std::make_unique<SpscQueue<PoolItem>>(ring_capacity));
    }
  }

  if (options_.probes) {
    controller_probe_ =
        std::make_unique<obs::ProbeRing>(options_.probe_capacity);
    for (auto& worker : workers_) {
      Worker& me = *worker;
      me.wheel.set_fire_hook([&me](SimTime deadline, SimTime fired_at) {
        me.probe->record(obs::ProbeKind::kTimerFire, deadline * 1000,
                         (fired_at - deadline) * 1000, obs::kNoLane, 0);
      });
    }
  }
  refresh_connectivity();  // self-links up, everything else down
}

PoolTransport::~PoolTransport() { stop_and_join(); }

std::size_t PoolTransport::index_of(ProcessId p) const {
  const auto it = std::lower_bound(
      lookup_.begin(), lookup_.end(), p,
      [](const auto& entry, ProcessId id) { return entry.first < id; });
  ensure(it != lookup_.end() && it->first == p,
         "unknown runtime process " + to_string(p));
  return it->second;
}

PoolTransport::Slot& PoolTransport::slot(ProcessId p) {
  return *slots_[index_of(p)];
}

const PoolTransport::Slot& PoolTransport::slot(ProcessId p) const {
  return *slots_[index_of(p)];
}

// -- Transport surface ------------------------------------------------------

void PoolTransport::send(sim::Envelope env) {
  Slot& from = *slots_[index_of(env.from)];
  const std::size_t ti = index_of(env.to);
  Slot& to = *slots_[ti];
  const std::uint64_t st =
      pair_state(from.index, ti).load(std::memory_order_acquire);
  if ((st & 1) == 0) {
    // Not connected at send time: silently lost, like Network's
    // unroutable/filtered drop.
    from.metrics.counter("rt.dropped_unroutable").increment();
    return;
  }
  env.lamport = ++from.lamport;
  from.metrics.counter("rt.sent").increment();

  Worker& me = *workers_[from.worker];  // we are executing on this thread
  obs::ProbeRing* const probe = me.probe.get();
  const std::uint64_t sent_ns = probe ? now_ns() : 0;
  PoolItem item{std::move(env), st >> 1, sent_ns};

  if (to.worker == from.worker) {
    // Same-worker fast path: a plain deque append, zero atomics. The
    // loop drains `local` before parking, so no wakeup is needed, and
    // the quiesce protocol covers it through the worker status word.
    me.local.push_back(std::move(item));
    if (probe) {
      probe->record(obs::ProbeKind::kRunQueue, sent_ns, me.local.size(),
                    static_cast<std::uint16_t>(me.index),
                    from.trace.last_eid());
    }
    return;
  }

  Worker& dest = *workers_[to.worker];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  SpscQueue<PoolItem>& link = ring(from.worker, to.worker);
  if (me.spill[to.worker].empty() && link.try_push(std::move(item))) {
    if (probe) {
      probe->record(obs::ProbeKind::kHandoff, now_ns(), link.producer_size(),
                    static_cast<std::uint16_t>(to.worker),
                    from.trace.last_eid());
    }
    bump_work(dest);
  } else {
    // Full ring (or order-preservation behind earlier spilled items):
    // never block — spill and let the loop retry the flush. This is the
    // no-deadlock guarantee for mutually backpressured workers.
    me.spill[to.worker].push_back(std::move(item));
    ++me.spilled;
    if (probe) {
      probe->record(obs::ProbeKind::kLinkPushFailed, now_ns(), 0,
                    static_cast<std::uint16_t>(to.worker),
                    from.trace.last_eid());
    }
  }
}

SimTime PoolTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

sim::TimerToken PoolTransport::schedule_timer(ProcessId p, SimTime delay,
                                              sim::TimerAction action) {
  Slot& s = slot(p);
  Worker& me = *workers_[s.worker];
  if (me.probe) {
    me.probe->record(obs::ProbeKind::kTimerSchedule, now_ns(), delay * 1000,
                     static_cast<std::uint16_t>(s.index), s.trace.last_eid());
  }
  return me.wheel.schedule_at(now() + delay, std::move(action));
}

bool PoolTransport::cancel_timer(ProcessId p, sim::TimerToken token) {
  return workers_[slot(p).worker]->wheel.cancel(token);
}

sim::StableStorage& PoolTransport::storage(ProcessId p) {
  return slot(p).storage;
}

obs::TraceSink& PoolTransport::trace(ProcessId p) { return slot(p).trace; }

obs::MetricsRegistry& PoolTransport::metrics(ProcessId p) {
  return slot(p).metrics;
}

std::uint64_t PoolTransport::lamport_tick(ProcessId p) {
  return ++slot(p).lamport;
}

std::uint64_t PoolTransport::last_topology_eid(ProcessId p) const {
  return slot(p).last_topo_eid;
}

void PoolTransport::log(ProcessId p, LogLevel level,
                        const std::string& message) {
  Slot& s = slot(p);
  s.logger.log(now(), level, to_string(p), message);
}

// -- controller surface -----------------------------------------------------

void PoolTransport::set_node(sim::Node* node) {
  ensure(node != nullptr, "null node");
  ensure(!running_, "set_node after start");
  Slot& s = slot(node->id());
  ensure(s.node == nullptr, "node attached twice");
  s.node = node;
}

void PoolTransport::start() {
  ensure(!running_ && !joined_, "one lifecycle per transport");
  for (auto& s : slots_) {
    ensure(s->node != nullptr,
           "process " + to_string(s->id) + " has no node attached");
  }
  running_ = true;
  for (auto& w : workers_) {
    Worker& me = *w;
    me.thread = std::thread([this, &me] { worker_main(me); });
  }
}

void PoolTransport::stop_and_join() {
  if (joined_) return;
  joined_ = true;
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) bump_work(*w);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  running_ = false;
}

void PoolTransport::set_components(const std::vector<ProcessSet>& groups) {
  ProcessSet seen;
  for (const ProcessSet& group : groups) {
    ensure(!group.empty(), "empty component");
    for (ProcessId p : group) {
      ensure(!seen.contains(p), "components must be disjoint");
      seen.insert(p);
    }
    const std::uint32_t component = next_component_++;
    for (ProcessId p : group) slot(p).component = component;
  }
  refresh_connectivity();
}

void PoolTransport::merge_all() {
  ProcessSet all;
  for (ProcessId p : ids_) all.insert(p);
  set_components({all});
}

void PoolTransport::crash(ProcessId p) {
  Slot& s = slot(p);
  if (!s.ctl_alive) return;
  post_control(p, ControlItem{ControlItem::Kind::kCrash, p, {}, {}});
  s.ctl_alive = false;  // keeps its component, like Network::set_alive
  refresh_connectivity();
}

void PoolTransport::recover(ProcessId p) {
  Slot& s = slot(p);
  if (s.ctl_alive) return;
  post_control(p, ControlItem{ControlItem::Kind::kRecover, p, {}, {}});
  s.ctl_alive = true;
  s.component = next_component_++;  // fresh singleton component
  refresh_connectivity();
}

bool PoolTransport::alive(ProcessId p) const { return slot(p).ctl_alive; }

std::vector<ProcessSet> PoolTransport::live_components() const {
  std::map<std::uint32_t, ProcessSet> by_component;
  for (const auto& s : slots_) {
    if (s->ctl_alive) by_component[s->component].insert(s->id);
  }
  std::vector<ProcessSet> components;
  components.reserve(by_component.size());
  for (auto& [component, members] : by_component) {
    components.push_back(std::move(members));
  }
  // Network::live_components orders by smallest member; the oracle's
  // view-id assignment depends on this order, so the mirror must too.
  std::sort(components.begin(), components.end(),
            [](const ProcessSet& a, const ProcessSet& b) {
              return *a.begin() < *b.begin();
            });
  return components;
}

void PoolTransport::post_view(const View& view) {
  for (ProcessId p : view.members) {
    post_control(p, ControlItem{ControlItem::Kind::kView, p, view, {}});
  }
}

void PoolTransport::run_on(ProcessId p, sim::TimerAction fn) {
  ensure(static_cast<bool>(fn), "run_on with empty closure");
  post_control(p, ControlItem{ControlItem::Kind::kRun, p, {}, std::move(fn)});
}

void PoolTransport::quiesce() {
  // The timeout detects a wedge (a handler stuck in a loop), not a busy
  // run: it re-arms whenever any worker's handled-item count advances,
  // so a wide fleet grinding through an O(n^2)-message formation on one
  // core drains eventually, while 60s of zero progress still aborts.
  auto give_up = std::chrono::steady_clock::now() + kQuiesceTimeout;
  std::vector<std::uint64_t> seen(workers_.size(), ~std::uint64_t{0});
  const auto observe_progress = [this, &give_up, &seen] {
    bool moved = false;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::uint64_t p =
          workers_[i]->progress.load(std::memory_order_relaxed);
      if (p != seen[i]) {
        seen[i] = p;
        moved = true;
      }
    }
    if (moved) give_up = std::chrono::steady_clock::now() + kQuiesceTimeout;
  };
  if (!running_) {
    while (inflight_.load(std::memory_order_acquire) != 0) {
      ensure(std::chrono::steady_clock::now() < give_up,
             "runtime quiesce timeout (a handler is stuck?)");
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    return;
  }
  // Double-read over the worker status words. Local run-queue items are
  // not in inflight_, but they only exist while their worker's status is
  // odd — so "all even, inflight zero, statuses unchanged" is a global
  // fixed point: any work present at the first read is either counted
  // (rings/control) or has moved a status word before the second.
  std::vector<std::uint64_t> first(workers_.size());
  while (true) {
    observe_progress();
    ensure(std::chrono::steady_clock::now() < give_up,
           "runtime quiesce timeout (a handler is stuck?)");
    bool all_even = true;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      first[i] = workers_[i]->status.load(std::memory_order_acquire);
      all_even = all_even && (first[i] % 2 == 0);
    }
    if (!all_even || inflight_.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      continue;
    }
    bool stable = true;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      stable = stable &&
               workers_[i]->status.load(std::memory_order_acquire) == first[i];
    }
    if (stable) return;
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

// -- internals --------------------------------------------------------------

void PoolTransport::refresh_connectivity() {
  const std::size_t n = ids_.size();
  for (std::size_t a = 0; a < n; ++a) {
    const Slot& sa = *slots_[a];
    for (std::size_t b = 0; b < n; ++b) {
      const Slot& sb = *slots_[b];
      const bool want =
          sa.ctl_alive && sb.ctl_alive && sa.component == sb.component;
      std::atomic<std::uint64_t>& state = pair_state(a, b);
      // The controller is the only writer: a relaxed read sees its own
      // latest store.
      const std::uint64_t current = state.load(std::memory_order_relaxed);
      if ((current & 1) != 0 && !want) {
        // Disconnection bumps the epoch: in-flight traffic on this link
        // is lost even if the pair later reconnects.
        state.store(((current >> 1) + 1) << 1, std::memory_order_release);
      } else if ((current & 1) == 0 && want) {
        state.store(current | 1, std::memory_order_release);
      }
    }
  }
}

void PoolTransport::post_control(ProcessId p, ControlItem item) {
  Worker& target = *workers_[slot(p).worker];
  if (controller_probe_) item.sent_ns = now_ns();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (!target.control->try_push(std::move(item))) {
    const std::uint64_t stall_start = controller_probe_ ? now_ns() : 0;
    const auto give_up = std::chrono::steady_clock::now() + kBackpressureTimeout;
    do {
      bump_work(target);
      std::this_thread::yield();
      ensure(std::chrono::steady_clock::now() < give_up,
             "runtime control backpressure timeout");
    } while (!target.control->try_push(std::move(item)));
    if (controller_probe_) {
      controller_probe_->record(obs::ProbeKind::kLinkPushFailed, stall_start,
                                now_ns() - stall_start,
                                static_cast<std::uint16_t>(target.index), 0);
    }
  }
  if (controller_probe_) {
    controller_probe_->record(obs::ProbeKind::kControlPush, now_ns(),
                              target.control->producer_size(),
                              static_cast<std::uint16_t>(target.index), 0);
  }
  bump_work(target);
}

void PoolTransport::bump_work(Worker& target) {
  if (target.probe) {
    target.notify_ns.store(now_ns(), std::memory_order_relaxed);
  }
  target.work.notify();
}

bool PoolTransport::flush_spills(Worker& me) {
  if (me.spilled == 0) return false;
  bool moved = false;
  for (std::uint32_t dst = 0; dst < workers_.size(); ++dst) {
    std::deque<PoolItem>& queue = me.spill[dst];
    if (queue.empty()) continue;
    SpscQueue<PoolItem>& link = ring(me.index, dst);
    bool pushed_any = false;
    while (!queue.empty() && link.try_push(std::move(queue.front()))) {
      queue.pop_front();
      --me.spilled;
      pushed_any = true;
    }
    if (pushed_any) {
      bump_work(*workers_[dst]);
      moved = true;
    }
  }
  return moved;
}

void PoolTransport::worker_main(Worker& me) {
  ControlItem control;
  obs::ProbeRing* const probe = me.probe.get();
  const std::uint32_t num_workers =
      static_cast<std::uint32_t>(workers_.size());
  // Single-writer publish of the handled-item count (see Worker::progress);
  // a relaxed store per item, no RMW.
  std::uint64_t done = 0;
  const auto note_progress = [&me, &done] {
    me.progress.store(++done, std::memory_order_relaxed);
  };
  while (true) {
    // Read the eventcount before scanning: any push that lands after
    // this read also bumps the word, so the wait below cannot miss it.
    const std::uint32_t seq = me.work.prepare();
    bool did_work = false;
    while (me.control->try_pop(control)) {
      if (probe) {
        const std::uint64_t t = now_ns();
        probe->record(obs::ProbeKind::kControlPop, t,
                      t > control.sent_ns ? t - control.sent_ns : 0,
                      obs::kControllerLane, 0);
        const std::uint16_t pi =
            static_cast<std::uint16_t>(index_of(control.target));
        handle_control(me, control);
        probe->record(obs::ProbeKind::kHandlerControl, t, now_ns() - t, pi,
                      slots_[pi]->trace.last_eid());
      } else {
        handle_control(me, control);
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      note_progress();
      did_work = true;
    }
    if (flush_spills(me)) did_work = true;
    for (std::uint32_t src = 0; src < num_workers; ++src) {
      if (src == me.index) continue;
      SpscQueue<PoolItem>& link = ring(src, me.index);
      // Batched drain: the whole burst costs one acquire refresh and
      // one cursor publish instead of a pair per message.
      while (link.pop_bulk(me.batch, link.capacity()) > 0) {
        if (probe) {
          probe->record(obs::ProbeKind::kBatch, now_ns(), me.batch.size(),
                        static_cast<std::uint16_t>(src), 0);
        }
        for (PoolItem& item : me.batch) {
          handle_message(me, item, static_cast<std::uint16_t>(src));
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          note_progress();
        }
        me.batch.clear();
        did_work = true;
      }
    }
    // Local run queue last: handlers above may have appended to it, and
    // handlers below may too — the loop drains to empty, preserving
    // FIFO (no inflight accounting: these never left this thread).
    while (!me.local.empty()) {
      PoolItem item = std::move(me.local.front());
      me.local.pop_front();
      handle_message(me, item, static_cast<std::uint16_t>(me.index));
      note_progress();
      did_work = true;
    }
    if (probe) {
      const std::uint64_t t = now_ns();
      if (me.wheel.advance(now()) > 0) {
        // One entry per firing advance() — the fire hook records the
        // per-timer slop, this records the batch's execution time.
        probe->record(obs::ProbeKind::kHandlerTimer, t, now_ns() - t,
                      obs::kNoLane, 0);
        note_progress();
        did_work = true;
      }
    } else if (me.wheel.advance(now()) > 0) {
      note_progress();
      did_work = true;
    }
    if (did_work) continue;
    if (stop_.load(std::memory_order_acquire)) {
      if (me.spilled > 0) {
        // Shutdown with undeliverable spill (the fleet quiesces before
        // stopping, so only a hard stop gets here): drop the items but
        // release their inflight counts so nothing wedges.
        inflight_.fetch_sub(static_cast<std::int64_t>(me.spilled),
                            std::memory_order_acq_rel);
        me.spilled = 0;
      }
      break;
    }

    // Nothing to do: publish idle (odd -> even) for the quiesce
    // double-read, park, then mark busy again (even -> odd) on wake.
    me.status.fetch_add(1, std::memory_order_release);
    const auto deadline = me.wheel.next_deadline();
    std::optional<SimTime> limit;
    if (deadline) limit = *deadline;
    if (me.spilled > 0) {
      // Pending spill: ring drains are not notified back to producers,
      // so retry the flush within one nap slice at most.
      const SimTime retry = now() + RuntimeEventcount::kMaxNapSliceUs;
      limit = limit ? std::min(*limit, retry) : retry;
    }
    if (limit) {
      if (*limit > now()) {
        const std::uint64_t nap_start = probe ? now_ns() : 0;
        me.work.wait_until(seq, *limit, [this] { return now(); });
        if (probe) {
          // Split the nap at the timer deadline: time before it is
          // parked, time past it is slop the timer's consumer will
          // observe. Spill-bounded naps have no deadline to miss.
          const std::uint64_t wake_ns = now_ns();
          const std::uint64_t deadline_ns =
              deadline ? *deadline * 1000 : ~std::uint64_t{0};
          if (wake_ns > deadline_ns) {
            if (deadline_ns > nap_start) {
              probe->record(obs::ProbeKind::kParked, nap_start,
                            deadline_ns - nap_start, obs::kNoLane, 0);
            }
            const std::uint64_t slop_from = std::max(nap_start, deadline_ns);
            probe->record(obs::ProbeKind::kTimerSlop, slop_from,
                          wake_ns - slop_from, obs::kNoLane, 0);
          } else {
            probe->record(obs::ProbeKind::kParked, nap_start,
                          wake_ns - nap_start, obs::kNoLane, 0);
          }
        }
      }
    } else {
      // Fully idle: park on the futex until a producer bumps the word.
      if (probe) {
        const std::uint64_t park_start = now_ns();
        me.work.wait(seq);
        const std::uint64_t wake_ns = now_ns();
        probe->record(obs::ProbeKind::kParked, park_start,
                      wake_ns - park_start, obs::kNoLane, 0);
        // Wakeup latency: only meaningful when the notify landed during
        // this park (a stale stamp from before the park says nothing).
        const std::uint64_t notify =
            me.notify_ns.load(std::memory_order_relaxed);
        if (notify >= park_start && wake_ns > notify) {
          probe->record(obs::ProbeKind::kWakeup, wake_ns, wake_ns - notify,
                        obs::kNoLane, 0);
        }
      } else {
        me.work.wait(seq);
      }
    }
    me.status.fetch_add(1, std::memory_order_release);
  }
}

void PoolTransport::handle_control(Worker& me, ControlItem& item) {
  (void)me;  // the worker identity matters only to the probe callers
  Slot& s = *slots_[index_of(item.target)];
  switch (item.kind) {
    case ControlItem::Kind::kView: {
      // Mirror Network's bookkeeping: the view install the node records
      // next cites the topology change that produced the component.
      obs::TraceEvent event;
      event.time = now();
      event.kind = obs::TraceEventKind::kTopologyChange;
      event.members = item.view.members;
      s.last_topo_eid = s.trace.record(std::move(event));
      s.node->deliver_view(item.view);
      return;
    }
    case ControlItem::Kind::kCrash:
      s.node->crash();
      return;
    case ControlItem::Kind::kRecover:
      s.node->recover();
      return;
    case ControlItem::Kind::kRun:
      item.fn();
      return;
    case ControlItem::Kind::kNone:
      break;
  }
  ensure(false, "empty control item");
}

void PoolTransport::handle_message(Worker& me, PoolItem& item,
                                   std::uint16_t source_lane) {
  const std::size_t si = index_of(item.env.from);
  const std::size_t ti = index_of(item.env.to);
  Slot& to = *slots_[ti];
  const std::uint64_t st = pair_state(si, ti).load(std::memory_order_acquire);
  if ((st & 1) == 0 || (st >> 1) != item.epoch) {
    // The link was cut (or cut and re-formed) while the message was in
    // flight: partition semantics say it is lost.
    to.metrics.counter("rt.dropped_link_epoch").increment();
    return;
  }
  to.lamport = std::max(to.lamport, item.env.lamport) + 1;
  to.metrics.counter("rt.delivered").increment();
  obs::ProbeRing* const probe = me.probe.get();
  if (probe) {
    const std::uint64_t t = now_ns();
    probe->record(obs::ProbeKind::kLinkPop, t,
                  t > item.sent_ns ? t - item.sent_ns : 0, source_lane,
                  to.trace.last_eid());
    to.node->deliver_message(std::move(item.env));
    // `link` carries the handling process: pool lanes are workers, so
    // this is what lets the Chrome export color slices per process.
    probe->record(obs::ProbeKind::kHandlerMessage, t, now_ns() - t,
                  static_cast<std::uint16_t>(ti), to.trace.last_eid());
  } else {
    to.node->deliver_message(std::move(item.env));
  }
}

std::vector<obs::ThreadProbeLog> PoolTransport::snapshot_probe_logs() {
  if (!options_.probes) return {};
  std::vector<obs::ThreadProbeLog> logs(workers_.size() + 1);
  if (running_) {
    // Each ring is copied on its owning worker (via any process it
    // owns); quiesce publishes the copies back to the controller.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      obs::ThreadProbeLog& log = logs[i];
      obs::ProbeRing* ring = workers_[i]->probe.get();
      run_on(ids_[workers_[i]->owned.front()], [&log, ring] {
        log.dropped = ring->dropped();
        log.entries = ring->snapshot();
      });
    }
    quiesce();
  } else {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      logs[i].dropped = workers_[i]->probe->dropped();
      logs[i].entries = workers_[i]->probe->snapshot();
    }
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    logs[i].thread = static_cast<std::uint32_t>(i);
  }
  logs.back().thread = obs::kControllerLane;
  logs.back().dropped = controller_probe_->dropped();
  logs.back().entries = controller_probe_->snapshot();
  return logs;
}

}  // namespace dynvote::runtime
