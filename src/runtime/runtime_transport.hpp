// RuntimeTransport: the controller surface shared by the wall-clock
// backends.
//
// sim::Transport is the surface a *protocol node* sees; a real-time
// backend additionally needs a controller surface — lifecycle, topology
// verbs mirroring sim::Network, the quiesce barrier, and probe-ring
// snapshots. Two implementations exist:
//
//  * runtime::ThreadTransport — one OS thread per process (the original
//    backend; precise per-process lanes, caps out near n≈32 of runnable
//    threads);
//  * runtime::PoolTransport — M:N event loops: N processes multiplexed
//    over a fixed pool of W workers (four-digit n in wall-clock).
//
// RuntimeFleet drives either through this interface; the cross-check
// harness holds both (and the DES) to identical outcome digests.
//
// Threading contract: everything below is controller-thread only, with
// the same rules the concrete transports document — topology verbs at
// quiescence, probe snapshots via the internal run_on + quiesce hop.
#pragma once

#include <cstdint>
#include <vector>

#include "membership/view.hpp"
#include "obs/runtime_probe.hpp"
#include "sim/transport.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote::sim {
class Node;
}  // namespace dynvote::sim

namespace dynvote::runtime {

class RuntimeTransport : public sim::Transport {
 public:
  // -- lifecycle ------------------------------------------------------------

  /// Attaches the node that runs in `node->id()`'s execution context.
  /// All nodes must be attached before start(); borrowed, must outlive
  /// stop.
  virtual void set_node(sim::Node* node) = 0;

  /// Spawns the backend's threads. One lifecycle per transport.
  virtual void start() = 0;

  /// Signals every thread to finish its remaining work and exit, then
  /// joins them. Safe to call twice; destructors call it.
  virtual void stop_and_join() = 0;

  [[nodiscard]] virtual bool running() const noexcept = 0;

  // -- topology (mirrors sim::Network; call at quiescence only) -------------

  virtual void set_components(const std::vector<ProcessSet>& groups) = 0;
  virtual void merge_all() = 0;
  virtual void crash(ProcessId p) = 0;
  virtual void recover(ProcessId p) = 0;
  [[nodiscard]] virtual bool alive(ProcessId p) const = 0;
  /// Components with dead members filtered out, sorted by smallest
  /// member — the shape MembershipOracle consumes.
  [[nodiscard]] virtual std::vector<ProcessSet> live_components() const = 0;

  /// Enqueues deliver_view(view) in every member's execution context.
  virtual void post_view(const View& view) = 0;

  /// Runs `fn` in p's execution context (state probes; effects are
  /// visible to the controller after the next quiesce()).
  virtual void run_on(ProcessId p, sim::TimerAction fn) = 0;

  /// Blocks until no message, control item or handler is in flight
  /// anywhere — the real-time analogue of the simulator's settle().
  virtual void quiesce() = 0;

  [[nodiscard]] virtual const std::vector<ProcessId>& processes()
      const noexcept = 0;

  // -- probe surface --------------------------------------------------------

  [[nodiscard]] virtual bool probes_enabled() const noexcept = 0;

  /// Number of execution lanes (threads) excluding the controller: n for
  /// the thread backend, W for the pool.
  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;

  /// The probe lane that records p's handlers: p's own index in the
  /// thread backend, p's worker in the pool.
  [[nodiscard]] virtual std::uint32_t lane_of(ProcessId p) const = 0;

  /// Snapshot of every probe ring: one log per lane (thread = lane
  /// index, copied in the owning thread's context via run_on + quiesce
  /// while running) plus the controller lane (thread =
  /// obs::kControllerLane). Empty when probes are off.
  [[nodiscard]] virtual std::vector<obs::ThreadProbeLog>
  snapshot_probe_logs() = 0;

  /// Nanoseconds since transport start — the probe timestamp clock,
  /// 1000x finer than now() on the same epoch.
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

}  // namespace dynvote::runtime
