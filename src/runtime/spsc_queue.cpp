#include "runtime/spsc_queue.hpp"

#include <cstdint>

namespace dynvote::runtime {

// Compile-time smoke check: the ring instantiates for trivially movable
// payloads (the runtime's link items are aggregates of ints, shared_ptrs
// and ProcessSets — all nothrow-movable).
template class SpscQueue<std::uint64_t>;

}  // namespace dynvote::runtime
