#include "app/replicated_kv.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote::app {

std::string Version::to_string() const {
  return "v(" + std::to_string(primary_number) + "." +
         std::to_string(sequence) + "@" + dynvote::to_string(writer) + ")";
}

Replica::Replica(PrimaryComponentService service) : service_(service) {
  service_.set_listener(this);
  primary_ = service_.primary();
}

std::optional<Version> Replica::write(const std::string& key,
                                      std::string value) {
  if (!service_.in_primary()) return std::nullopt;
  const Session& session = *service_.primary();
  const Version version{session.number, next_sequence_++, process()};
  data_[key] = VersionedValue{std::move(value), version, session.members};
  return version;
}

std::optional<std::string> Replica::read(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second.value;
}

void Replica::sync_from(const Replica& donor) {
  for (const auto& [key, theirs] : donor.data_) {
    auto mine = data_.find(key);
    if (mine == data_.end() || mine->second.version < theirs.version) {
      data_[key] = theirs;
    }
    // Later writes at this replica must supersede everything adopted.
    next_sequence_ = std::max(next_sequence_, theirs.version.sequence + 1);
  }
}

void Replica::on_primary_formed(const Session& session) { primary_ = session; }

void Replica::on_primary_lost() { primary_.reset(); }

KvStore::KvStore(Cluster& cluster) : cluster_(cluster) {
  for (ProcessId p : cluster_.all_processes()) {
    replicas_.emplace(p, std::make_unique<Replica>(cluster_.service(p)));
  }
}

Replica& KvStore::replica(ProcessId p) {
  auto it = replicas_.find(p);
  ensure(it != replicas_.end(), "no replica for " + dynvote::to_string(p));
  return *it->second;
}

std::optional<Version> KvStore::write(ProcessId p, const std::string& key,
                                      std::string value) {
  Replica& target = replica(p);
  auto result = target.write(key, std::move(value));
  if (result) {
    log_.push_back(LoggedWrite{cluster_.sim().now(), key, *result,
                               *target.service_.primary(), p});
  }
  return result;
}

void KvStore::sync_primary() {
  // Collect the members of the (unique) live primary; with a split brain
  // there may be several — synchronize within each separately, exactly
  // as a real deployment would (each side believes it is *the* primary).
  std::map<Session, std::vector<Replica*>> groups;
  for (auto& [p, replica] : replicas_) {
    if (!cluster_.sim().network().alive(p)) continue;
    if (!replica->in_primary()) continue;
    groups[*replica->service_.primary()].push_back(replica.get());
  }
  for (auto& [session, members] : groups) {
    for (Replica* a : members) {
      for (Replica* b : members) {
        if (a != b) a->sync_from(*b);
      }
    }
  }
}

std::vector<Divergence> KvStore::audit() const {
  std::vector<Divergence> out;

  // (a) Same version stamp, different values, at any two replicas.
  for (auto a = replicas_.begin(); a != replicas_.end(); ++a) {
    for (auto b = std::next(a); b != replicas_.end(); ++b) {
      for (const auto& [key, va] : a->second->data()) {
        const auto it = b->second->data().find(key);
        if (it == b->second->data().end()) continue;
        const auto& vb = it->second;
        if (va.version == vb.version && va.value != vb.value) {
          out.push_back({key, a->first, b->first,
                         "version " + va.version.to_string() +
                             " maps to '" + va.value + "' (written in " +
                             va.written_in.to_string() + ") and '" + vb.value +
                             "' (written in " + vb.written_in.to_string() +
                             ")"});
        }
      }
    }
  }

  // (b) A write acknowledged while a disjoint primary component was live.
  const ConsistencyChecker& checker = cluster_.checker();
  for (const LoggedWrite& w : log_) {
    for (const Session& other : checker.formed_sessions()) {
      if (other == w.session) continue;
      if (other.members.intersects(w.session.members)) continue;
      if (checker.session_live_at(other, w.time)) {
        out.push_back(
            {w.key, w.replica, w.replica,
             "write " + w.version.to_string() + " acknowledged in " +
                 w.session.to_string() + " while disjoint primary " +
                 other.to_string() + " was live"});
      }
    }
  }
  return out;
}

}  // namespace dynvote::app
