#include "app/replicated_log.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote::app {

std::string LogPosition::to_string() const {
  return "(" + std::to_string(epoch) + ":" + std::to_string(index) + ")";
}

LogReplica::LogReplica(PrimaryComponentService service) : service_(service) {
  service_.set_listener(this);
  primary_ = service_.primary();
}

void LogReplica::store(LogEntry entry) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), entry.position,
      [](const LogEntry& e, const LogPosition& p) { return e.position < p; });
  ensure(it == entries_.end() || !(it->position == entry.position),
         "local position collision");
  entries_.insert(it, std::move(entry));
}

void LogReplica::sync_from(const LogReplica& donor) {
  for (const LogEntry& theirs : donor.entries_) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), theirs.position,
        [](const LogEntry& e, const LogPosition& p) { return e.position < p; });
    if (it != entries_.end() && it->position == theirs.position) continue;
    entries_.insert(it, theirs);
  }
}

void LogReplica::on_primary_formed(const Session& session) {
  primary_ = session;
}

void LogReplica::on_primary_lost() { primary_.reset(); }

ReplicatedLog::ReplicatedLog(Cluster& cluster) : cluster_(cluster) {
  for (ProcessId p : cluster_.all_processes()) {
    replicas_.emplace(p, std::make_unique<LogReplica>(cluster_.service(p)));
  }
}

LogReplica& ReplicatedLog::replica(ProcessId p) {
  auto it = replicas_.find(p);
  ensure(it != replicas_.end(), "no log replica for " + dynvote::to_string(p));
  return *it->second;
}

std::optional<LogPosition> ReplicatedLog::append(ProcessId p,
                                                 std::string payload) {
  LogReplica& target = replica(p);
  if (!target.in_primary()) return std::nullopt;
  const Session session = *target.service_.primary();
  // The epoch's sequencer assigns the index (driver-level model; see the
  // header note). Two primaries minting the same epoch number would
  // collide here — which is exactly what the audit looks for.
  const LogPosition position{session.number, epoch_counters_[session]++};
  target.store(LogEntry{position, std::move(payload), session.members});
  log_times_.push_back(AppendRecord{cluster_.sim().now(), position, session});
  return position;
}

void ReplicatedLog::sync_primary() {
  std::map<Session, std::vector<LogReplica*>> groups;
  for (auto& [p, replica] : replicas_) {
    if (!cluster_.sim().network().alive(p)) continue;
    if (!replica->in_primary()) continue;
    groups[*replica->service_.primary()].push_back(replica.get());
  }
  for (auto& [session, members] : groups) {
    for (LogReplica* a : members) {
      for (LogReplica* b : members) {
        if (a != b) a->sync_from(*b);
      }
    }
  }
}

std::vector<LogDivergence> ReplicatedLog::audit() const {
  std::vector<LogDivergence> out;

  // (a) Position collisions with different content.
  for (auto a = replicas_.begin(); a != replicas_.end(); ++a) {
    for (auto b = std::next(a); b != replicas_.end(); ++b) {
      const auto& ea = a->second->entries();
      const auto& eb = b->second->entries();
      std::size_t i = 0, j = 0;
      while (i < ea.size() && j < eb.size()) {
        if (ea[i].position < eb[j].position) {
          ++i;
        } else if (eb[j].position < ea[i].position) {
          ++j;
        } else {
          if (ea[i].payload != eb[j].payload) {
            out.push_back({a->first, b->first,
                           "position " + ea[i].position.to_string() +
                               " holds '" + ea[i].payload + "' (epoch of " +
                               ea[i].epoch_members.to_string() + ") vs '" +
                               eb[j].payload + "' (epoch of " +
                               eb[j].epoch_members.to_string() + ")"});
          }
          ++i;
          ++j;
        }
      }
    }
  }

  // (b) Appends acknowledged while a disjoint primary was live.
  const ConsistencyChecker& checker = cluster_.checker();
  for (const AppendRecord& record : log_times_) {
    for (const Session& other : checker.formed_sessions()) {
      if (other == record.session) continue;
      if (other.members.intersects(record.session.members)) continue;
      if (checker.session_live_at(other, record.time)) {
        out.push_back({ProcessId(0), ProcessId(0),
                       "append " + record.position.to_string() +
                           " acknowledged in " + record.session.to_string() +
                           " while disjoint primary " + other.to_string() +
                           " was live"});
      }
    }
  }
  return out;
}

}  // namespace dynvote::app
