// ReplicatedKv: a replicated key-value store built on the
// primary-component service — the paper's intended integration (its
// introduction lists replication algorithms [16, 9] as the canonical
// consumers of this service).
//
// Model (one replica per process):
//
//   * a write is accepted only while the local process is in the primary
//     component; the value is stamped (primary session number, local
//     write sequence) — a version that grows along the ≺ order of
//     primary components;
//   * when a new primary forms, the replicas inside it synchronize:
//     every key converges to the highest-versioned value among the
//     members (state transfer);
//   * an auditor compares ALL replicas (both sides of any partition):
//     with a consistent protocol, any two values for one key are
//     version-ordered, so synchronization never loses an acknowledged
//     write to a conflicting one; with the inconsistent baselines, two
//     primaries accept conflicting writes under incomparable versions,
//     and the audit reports divergence.
//
// This deliberately implements *primary-copy replication*, not total
// order broadcast: it exercises exactly the guarantee the paper's
// service provides, nothing stronger.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dv/service.hpp"
#include "harness/cluster.hpp"

namespace dynvote::app {

/// A version stamp: (primary session number, per-primary sequence,
/// writer). Within one primary component the (sequence, writer) pair is
/// unique; across primaries the session number orders stamps exactly
/// when the primaries themselves are ≺-ordered. Two replicas holding the
/// SAME stamp with different values is therefore unambiguous split-brain
/// evidence: two "primaries" minted the same session number.
struct Version {
  SessionNumber primary_number = -1;
  std::uint64_t sequence = 0;
  ProcessId writer;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version&, const Version&) = default;

  [[nodiscard]] std::string to_string() const;
};

struct VersionedValue {
  std::string value;
  Version version;
  /// The primary component's membership when the write was accepted —
  /// used by the audit to explain conflicts.
  ProcessSet written_in;
};

/// One replica, bound to one process's PrimaryComponentService.
class Replica : public PrimaryListener {
 public:
  explicit Replica(PrimaryComponentService service);

  /// Accepts the write iff this process is currently in the primary
  /// component. Returns the version on success.
  std::optional<Version> write(const std::string& key, std::string value);

  [[nodiscard]] std::optional<std::string> read(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, VersionedValue>& data() const {
    return data_;
  }

  [[nodiscard]] bool in_primary() const { return service_.in_primary(); }
  [[nodiscard]] ProcessId process() const { return service_.process(); }

  /// State transfer: pulls any higher-versioned entries from `donor`.
  void sync_from(const Replica& donor);

  // PrimaryListener:
  void on_primary_formed(const Session& session) override;
  void on_primary_lost() override;

 private:
  friend class KvStore;
  PrimaryComponentService service_;
  std::map<std::string, VersionedValue> data_;
  std::uint64_t next_sequence_ = 1;
  std::optional<Session> primary_;
};

/// A divergence found by the audit: one key, two replicas, two values
/// whose versions are equal-but-different or otherwise conflicting.
struct Divergence {
  std::string key;
  ProcessId replica_a;
  ProcessId replica_b;
  std::string detail;
};

/// The whole replicated store: one Replica per cluster process, plus the
/// synchronization and audit drivers. Owns the replicas; the cluster
/// outlives the store.
class KvStore {
 public:
  explicit KvStore(Cluster& cluster);

  [[nodiscard]] Replica& replica(ProcessId p);

  /// Writes through the replica at `p`; fails (nullopt) outside the
  /// primary.
  std::optional<Version> write(ProcessId p, const std::string& key,
                               std::string value);

  /// State transfer inside the current primary component: every member
  /// replica converges to the highest version per key. Call after the
  /// cluster settles on a new primary.
  void sync_primary();

  /// Audits the execution for application-visible split brain:
  ///
  ///  (a) two replicas hold the same version of a key with different
  ///      values (two primaries minted the same version stamp);
  ///  (b) a write was acknowledged in primary P while a *disjoint*
  ///      primary P' was also live (so P' could acknowledge conflicting
  ///      writes that state transfer will silently overwrite).
  ///
  /// Consistent protocols produce neither, ever.
  [[nodiscard]] std::vector<Divergence> audit() const;

  /// Total writes accepted across all replicas.
  [[nodiscard]] std::uint64_t accepted_writes() const noexcept {
    return static_cast<std::uint64_t>(log_.size());
  }

 private:
  struct LoggedWrite {
    SimTime time;
    std::string key;
    Version version;
    Session session;
    ProcessId replica;
  };

  Cluster& cluster_;
  std::map<ProcessId, std::unique_ptr<Replica>> replicas_;
  std::vector<LoggedWrite> log_;
};

}  // namespace dynvote::app
