// ReplicatedLog: a totally-ordered append-only log on the
// primary-component service — the group-communication use case the
// paper cites (message ordering in dynamic networks [16], the ISIS
// toolkit [5]).
//
// Model (one log replica per process):
//
//   * appends are accepted only while the local process is in the
//     primary component; an entry is stamped with its *epoch* (the
//     primary's session number) and its index within that epoch — the
//     index is assigned by the epoch's sequencer, which this driver
//     models as an instant per-epoch counter (a real deployment runs the
//     sequencer on a primary member, e.g. its lowest-ranked process);
//   * when a new primary forms, its members reconcile: everyone adopts
//     the longest prefix known inside the component, epoch by epoch
//     (state transfer), then appends continue in the new epoch;
//   * the correctness the service must deliver: the sequence of epochs
//     along any replica's log is non-decreasing and globally consistent
//     — two replicas never hold different entries at the same (epoch,
//     index) position. With a split brain, two primaries mint entries in
//     incomparable epochs or collide on positions, and the audit reports
//     it.
//
// Entries live at the driver level (like KvStore): the protocol under
// test provides exactly the primary-component guarantee, and this layer
// shows what a replication service builds from it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dv/service.hpp"
#include "harness/cluster.hpp"

namespace dynvote::app {

/// A position in the global order: epochs are primary session numbers,
/// indexes count appends within one epoch.
struct LogPosition {
  SessionNumber epoch = -1;
  std::uint64_t index = 0;

  friend bool operator==(const LogPosition&, const LogPosition&) = default;
  friend auto operator<=>(const LogPosition&, const LogPosition&) = default;

  [[nodiscard]] std::string to_string() const;
};

struct LogEntry {
  LogPosition position;
  std::string payload;
  ProcessSet epoch_members;  // the primary that accepted it (for audits)

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

/// One process's log replica.
class LogReplica : public PrimaryListener {
 public:
  explicit LogReplica(PrimaryComponentService service);

  [[nodiscard]] const std::vector<LogEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool in_primary() const { return service_.in_primary(); }
  [[nodiscard]] ProcessId process() const { return service_.process(); }

  /// State transfer: adopt from `donor` every entry this replica lacks,
  /// keeping positions sorted. Positions already present are kept
  /// (divergence at a shared position is the audit's business).
  void sync_from(const LogReplica& donor);

  // PrimaryListener:
  void on_primary_formed(const Session& session) override;
  void on_primary_lost() override;

 private:
  friend class ReplicatedLog;

  /// Stores a sequencer-stamped entry locally.
  void store(LogEntry entry);

  PrimaryComponentService service_;
  std::vector<LogEntry> entries_;  // sorted by position
  std::optional<Session> primary_;
};

struct LogDivergence {
  ProcessId replica_a;
  ProcessId replica_b;
  std::string detail;
};

/// The whole replicated log: one LogReplica per cluster process.
class ReplicatedLog {
 public:
  explicit ReplicatedLog(Cluster& cluster);

  [[nodiscard]] LogReplica& replica(ProcessId p);

  /// Appends through the replica at `p`.
  std::optional<LogPosition> append(ProcessId p, std::string payload);

  /// Reconciles the members of the current primary component.
  void sync_primary();

  /// Pairwise audit:
  ///   (a) two replicas disagree on the entry at one position;
  ///   (b) two entries appended at overlapping times by disjoint
  ///       primaries (the split-brain signature, via the checker).
  [[nodiscard]] std::vector<LogDivergence> audit() const;

  /// Total appends acknowledged.
  [[nodiscard]] std::uint64_t accepted_appends() const noexcept {
    return static_cast<std::uint64_t>(log_times_.size());
  }

 private:
  Cluster& cluster_;
  std::map<ProcessId, std::unique_ptr<LogReplica>> replicas_;
  /// The per-epoch sequencer state: next free index in each epoch.
  std::map<Session, std::uint64_t> epoch_counters_;
  struct AppendRecord {
    SimTime time;
    LogPosition position;
    Session session;
  };
  std::vector<AppendRecord> log_times_;
};

}  // namespace dynvote::app
