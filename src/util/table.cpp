#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/ensure.hpp"

namespace dynvote {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ensure(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  ensure(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(Row{false, std::move(row)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      if (c == 0) {
        out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      } else {
        out << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
      }
    }
    out << " |\n";
  };

  auto emit_separator = [&](std::ostringstream& out) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
  };

  std::ostringstream out;
  emit_row(out, header_);
  emit_separator(out);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator(out);
    } else {
      emit_row(out, row.cells);
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

}  // namespace dynvote
