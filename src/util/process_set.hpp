// ProcessSet: an ordered set of process identifiers with the set algebra
// the quorum calculus needs (intersection sizes, majorities, maxima under
// the linear order).
//
// Representation is hybrid. The sorted flat vector is always maintained —
// it gives deterministic iteration, lexicographic ordering, and the
// index_of positions the optimized protocol's knowledge arrays key on.
// When every member id is below kSmallIdLimit (true for every scenario
// the harness generates today), a 256-bit inline bitset shadows the
// vector, and the set predicates the Sub_Quorum hot path hammers —
// contains / intersection_size / is_subset_of / majority tests — run as
// a handful of AND+popcount word ops instead of O(n) merge walks. Sets
// with larger ids transparently fall back to the vector algorithms.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace dynvote {

/// An immutable-by-convention, sorted, duplicate-free set of ProcessIds.
///
/// This is the "membership" type used everywhere: views, quorums, session
/// memberships, and the W / A participant sets of paper section 6.
class ProcessSet {
 public:
  using const_iterator = std::vector<ProcessId>::const_iterator;

  /// Ids below this bound are tracked in the inline bitset (one 64-bit
  /// word per 64 ids).
  static constexpr std::uint32_t kSmallIdLimit = 256;

  ProcessSet() = default;

  /// Builds a set from any list of ids; duplicates are collapsed.
  ProcessSet(std::initializer_list<ProcessId> ids);
  explicit ProcessSet(std::vector<ProcessId> ids);

  /// Convenience: {ProcessId(0), ..., ProcessId(n-1)}.
  [[nodiscard]] static ProcessSet range(std::uint32_t n);

  /// Convenience for tests/examples: build from raw integer ids.
  [[nodiscard]] static ProcessSet of(std::initializer_list<std::uint32_t> raw);

  [[nodiscard]] bool contains(ProcessId p) const {
    if (small_) {
      if (p.value() >= kSmallIdLimit) return false;
      return (bits_[p.value() >> 6] >> (p.value() & 63)) & 1;
    }
    return contains_slow(p);
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Adds a member; returns true if it was not already present.
  bool insert(ProcessId p);
  /// Removes a member; returns true if it was present.
  bool erase(ProcessId p);

  [[nodiscard]] ProcessSet set_union(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_intersection(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_difference(const ProcessSet& other) const;

  // The Sub_Quorum hot-path predicates are defined inline so the bitset
  // fast path compiles down to a few word ops at the call site.

  [[nodiscard]] std::size_t intersection_size(const ProcessSet& other) const {
    if (small_ && other.small_) {
      std::size_t count = 0;
      for (std::size_t w = 0; w < kWords; ++w) {
        count += static_cast<std::size_t>(
            std::popcount(bits_[w] & other.bits_[w]));
      }
      return count;
    }
    return intersection_size_slow(other);
  }

  [[nodiscard]] bool intersects(const ProcessSet& other) const {
    if (small_ && other.small_) {
      std::uint64_t any = 0;
      for (std::size_t w = 0; w < kWords; ++w) any |= bits_[w] & other.bits_[w];
      return any != 0;
    }
    return intersects_slow(other);
  }

  [[nodiscard]] bool is_subset_of(const ProcessSet& other) const {
    if (small_ && other.small_) {
      std::uint64_t stray = 0;
      for (std::size_t w = 0; w < kWords; ++w) {
        stray |= bits_[w] & ~other.bits_[w];
      }
      return stray == 0;
    }
    return is_subset_of_slow(other);
  }

  /// True iff this set contains a strict majority of `of`.
  [[nodiscard]] bool contains_majority_of(const ProcessSet& of) const {
    return 2 * intersection_size(of) > of.size();
  }

  /// True iff this set contains exactly half of `of` (|of| even).
  [[nodiscard]] bool contains_exact_half_of(const ProcessSet& of) const {
    return 2 * intersection_size(of) == of.size();
  }

  /// The highest-ranked member under the natural linear order, if any.
  /// Paper 4.1 uses the maximum of the *previous quorum* to break ties.
  [[nodiscard]] std::optional<ProcessId> max_member() const;

  /// Position of `p` in the sorted membership list; this is the i_M(q)
  /// index the optimized protocol's knowledge arrays are keyed by
  /// (paper 5.1). Precondition: contains(p).
  [[nodiscard]] std::size_t index_of(ProcessId p) const;

  [[nodiscard]] const std::vector<ProcessId>& members() const noexcept {
    return members_;
  }

  [[nodiscard]] const_iterator begin() const noexcept { return members_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return members_.end(); }

  friend bool operator==(const ProcessSet& a, const ProcessSet& b) {
    return a.members_ == b.members_;
  }

  /// Deterministic total order (lexicographic on the sorted members), so
  /// ProcessSets can key ordered containers.
  friend auto operator<=>(const ProcessSet& a, const ProcessSet& b) {
    return a.members_ <=> b.members_;
  }

  /// Renders as "{p0,p1,p4}".
  [[nodiscard]] std::string to_string() const;

  /// True iff the inline-bitset fast path covers this set (every member
  /// id < kSmallIdLimit). Exposed for the property tests that pin the
  /// bitset and vector paths to each other.
  [[nodiscard]] bool uses_bitset() const noexcept { return small_; }

 private:
  static constexpr std::size_t kWords = kSmallIdLimit / 64;

  /// Recomputes small_ and bits_ from members_ (after bulk mutation).
  void rebuild_bits();
  // Sorted-vector fallbacks for sets with ids >= kSmallIdLimit.
  [[nodiscard]] bool contains_slow(ProcessId p) const;
  [[nodiscard]] std::size_t intersection_size_slow(const ProcessSet& other) const;
  [[nodiscard]] bool intersects_slow(const ProcessSet& other) const;
  [[nodiscard]] bool is_subset_of_slow(const ProcessSet& other) const;
  /// Builds a set from an already sorted, duplicate-free vector.
  [[nodiscard]] static ProcessSet from_sorted(std::vector<ProcessId> ids);
  /// Appends the members encoded in `bits` (sorted ascending) to a set.
  static void expand_bits(const std::array<std::uint64_t, kWords>& bits,
                          ProcessSet& out);

  std::vector<ProcessId> members_;
  // Shadow bitset of members_, valid iff small_. All-zero when !small_ so
  // value semantics (copies, moves) never expose stale words.
  std::array<std::uint64_t, kWords> bits_{};
  bool small_ = true;
};

[[nodiscard]] inline std::string to_string(const ProcessSet& s) {
  return s.to_string();
}

}  // namespace dynvote
