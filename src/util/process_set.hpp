// ProcessSet: an ordered set of process identifiers with the set algebra
// the quorum calculus needs (intersection sizes, majorities, maxima under
// the linear order).
//
// Memberships in this protocol are small (tens of processes), so a sorted
// flat vector beats node-based containers and gives deterministic
// iteration order for free.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace dynvote {

/// An immutable-by-convention, sorted, duplicate-free set of ProcessIds.
///
/// This is the "membership" type used everywhere: views, quorums, session
/// memberships, and the W / A participant sets of paper section 6.
class ProcessSet {
 public:
  using const_iterator = std::vector<ProcessId>::const_iterator;

  ProcessSet() = default;

  /// Builds a set from any list of ids; duplicates are collapsed.
  ProcessSet(std::initializer_list<ProcessId> ids);
  explicit ProcessSet(std::vector<ProcessId> ids);

  /// Convenience: {ProcessId(0), ..., ProcessId(n-1)}.
  [[nodiscard]] static ProcessSet range(std::uint32_t n);

  /// Convenience for tests/examples: build from raw integer ids.
  [[nodiscard]] static ProcessSet of(std::initializer_list<std::uint32_t> raw);

  [[nodiscard]] bool contains(ProcessId p) const;
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Adds a member; returns true if it was not already present.
  bool insert(ProcessId p);
  /// Removes a member; returns true if it was present.
  bool erase(ProcessId p);

  [[nodiscard]] ProcessSet set_union(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_intersection(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_difference(const ProcessSet& other) const;

  [[nodiscard]] std::size_t intersection_size(const ProcessSet& other) const;
  [[nodiscard]] bool intersects(const ProcessSet& other) const;
  [[nodiscard]] bool is_subset_of(const ProcessSet& other) const;

  /// True iff this set contains a strict majority of `of`.
  [[nodiscard]] bool contains_majority_of(const ProcessSet& of) const;

  /// True iff this set contains exactly half of `of` (|of| even).
  [[nodiscard]] bool contains_exact_half_of(const ProcessSet& of) const;

  /// The highest-ranked member under the natural linear order, if any.
  /// Paper 4.1 uses the maximum of the *previous quorum* to break ties.
  [[nodiscard]] std::optional<ProcessId> max_member() const;

  /// Position of `p` in the sorted membership list; this is the i_M(q)
  /// index the optimized protocol's knowledge arrays are keyed by
  /// (paper 5.1). Precondition: contains(p).
  [[nodiscard]] std::size_t index_of(ProcessId p) const;

  [[nodiscard]] const std::vector<ProcessId>& members() const noexcept {
    return members_;
  }

  [[nodiscard]] const_iterator begin() const noexcept { return members_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return members_.end(); }

  friend bool operator==(const ProcessSet&, const ProcessSet&) = default;

  /// Deterministic total order (lexicographic on the sorted members), so
  /// ProcessSets can key ordered containers.
  friend auto operator<=>(const ProcessSet& a, const ProcessSet& b) {
    return a.members_ <=> b.members_;
  }

  /// Renders as "{p0,p1,p4}".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<ProcessId> members_;
};

[[nodiscard]] inline std::string to_string(const ProcessSet& s) {
  return s.to_string();
}

}  // namespace dynvote
