// ProcessSet: an ordered set of process identifiers with the set algebra
// the quorum calculus needs (intersection sizes, majorities, maxima under
// the linear order).
//
// Representation is hybrid. The sorted flat vector is always maintained —
// it gives deterministic iteration, lexicographic ordering, and the
// index_of positions the optimized protocol's knowledge arrays key on.
// A bitset shadows the vector: ids below kSmallIdLimit live in a 256-bit
// inline array (no heap traffic for every scenario the single-group
// harness generates), and ids in [kSmallIdLimit, kDynamicIdLimit) live in
// a dynamically sized extension word vector, so the set predicates the
// Sub_Quorum hot path hammers — contains / intersection_size /
// is_subset_of / majority tests — run as AND+popcount word ops at any
// four-digit fleet size, including MIXED pairs where one operand spills
// past the inline limit and the other does not. Only sets holding an id
// >= kDynamicIdLimit (2^20 — far past any simulated fleet) fall back to
// the O(n) sorted-vector merge walks.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace dynvote {

namespace detail {

/// Sum of popcount(a[i] & b[i]) over two word ranges (the inline words
/// and the extension words of a ProcessSet pair). Dispatched once at
/// startup: an AVX2 nibble-LUT kernel where the CPU supports it, a
/// multi-accumulator scalar walk otherwise. Scalar popcount is
/// single-port throughput-bound, so wide walks (four-digit fleets) need
/// the vector kernel to stay near the small-set latency.
using IntersectPopcountFn = std::size_t (*)(const std::uint64_t* a1,
                                            const std::uint64_t* b1,
                                            std::size_t n1,
                                            const std::uint64_t* a2,
                                            const std::uint64_t* b2,
                                            std::size_t n2);
extern IntersectPopcountFn intersect_popcount;

}  // namespace detail

/// An immutable-by-convention, sorted, duplicate-free set of ProcessIds.
///
/// This is the "membership" type used everywhere: views, quorums, session
/// memberships, and the W / A participant sets of paper section 6.
class ProcessSet {
 public:
  using const_iterator = std::vector<ProcessId>::const_iterator;

  /// Ids below this bound are tracked in the inline bitset (one 64-bit
  /// word per 64 ids, no heap allocation).
  static constexpr std::uint32_t kSmallIdLimit = 256;

  /// Ids below this bound are tracked word-wise (inline words below
  /// kSmallIdLimit, heap extension words above it). A set holding an id
  /// at or past this limit would need a pathologically wide bitset
  /// (the width is max_id / 64 words), so it degrades to the
  /// sorted-vector merge walks instead.
  static constexpr std::uint32_t kDynamicIdLimit = 1u << 20;

  ProcessSet() = default;

  /// Builds a set from any list of ids; duplicates are collapsed.
  ProcessSet(std::initializer_list<ProcessId> ids);
  explicit ProcessSet(std::vector<ProcessId> ids);

  /// Convenience: {ProcessId(0), ..., ProcessId(n-1)}.
  [[nodiscard]] static ProcessSet range(std::uint32_t n);

  /// Convenience for tests/examples: build from raw integer ids.
  [[nodiscard]] static ProcessSet of(std::initializer_list<std::uint32_t> raw);

  [[nodiscard]] bool contains(ProcessId p) const {
    if (huge_) return contains_slow(p);
    const std::uint32_t v = p.value();
    if (v < kSmallIdLimit) return (bits_[v >> 6] >> (v & 63)) & 1;
    const std::size_t w = (v - kSmallIdLimit) >> 6;
    if (w >= ext_bits_.size()) return false;
    return (ext_bits_[w] >> (v & 63)) & 1;
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Adds a member; returns true if it was not already present.
  bool insert(ProcessId p);
  /// Removes a member; returns true if it was present.
  bool erase(ProcessId p);

  [[nodiscard]] ProcessSet set_union(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_intersection(const ProcessSet& other) const;
  [[nodiscard]] ProcessSet set_difference(const ProcessSet& other) const;

  // The Sub_Quorum hot-path predicates are defined inline so the bitset
  // fast path compiles down to word ops at the call site. Each one walks
  // the inline words of both operands and then the common prefix of the
  // extension words; a pure-inline pair never touches the heap vectors.

  [[nodiscard]] std::size_t intersection_size(const ProcessSet& other) const {
    if (huge_ || other.huge_) return intersection_size_slow(other);
    const std::size_t common =
        ext_bits_.size() < other.ext_bits_.size() ? ext_bits_.size()
                                                  : other.ext_bits_.size();
    if (common >= kSimdWordThreshold) {
      return detail::intersect_popcount(bits_.data(), other.bits_.data(),
                                        kWords, ext_bits_.data(),
                                        other.ext_bits_.data(), common);
    }
    // Four independent accumulators: popcount has multi-cycle latency, so
    // a single `count +=` chain serializes the walk and a 1024-id set
    // pays ~4x the 256-id latency instead of ~4x the throughput cost.
    std::size_t c0 = 0;
    std::size_t c1 = 0;
    std::size_t c2 = 0;
    std::size_t c3 = 0;
    static_assert(kWords == 4);
    c0 = static_cast<std::size_t>(std::popcount(bits_[0] & other.bits_[0]));
    c1 = static_cast<std::size_t>(std::popcount(bits_[1] & other.bits_[1]));
    c2 = static_cast<std::size_t>(std::popcount(bits_[2] & other.bits_[2]));
    c3 = static_cast<std::size_t>(std::popcount(bits_[3] & other.bits_[3]));
    const std::uint64_t* a = ext_bits_.data();
    const std::uint64_t* b = other.ext_bits_.data();
    std::size_t w = 0;
    for (; w + 4 <= common; w += 4) {
      c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
      c1 += static_cast<std::size_t>(std::popcount(a[w + 1] & b[w + 1]));
      c2 += static_cast<std::size_t>(std::popcount(a[w + 2] & b[w + 2]));
      c3 += static_cast<std::size_t>(std::popcount(a[w + 3] & b[w + 3]));
    }
    for (; w < common; ++w) {
      c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
    return (c0 + c1) + (c2 + c3);
  }

  [[nodiscard]] bool intersects(const ProcessSet& other) const {
    if (huge_ || other.huge_) return intersects_slow(other);
    std::uint64_t any0 = (bits_[0] & other.bits_[0]) | (bits_[1] & other.bits_[1]);
    std::uint64_t any1 = (bits_[2] & other.bits_[2]) | (bits_[3] & other.bits_[3]);
    const std::size_t common =
        ext_bits_.size() < other.ext_bits_.size() ? ext_bits_.size()
                                                  : other.ext_bits_.size();
    const std::uint64_t* a = ext_bits_.data();
    const std::uint64_t* b = other.ext_bits_.data();
    std::size_t w = 0;
    for (; w + 2 <= common; w += 2) {
      any0 |= a[w] & b[w];
      any1 |= a[w + 1] & b[w + 1];
    }
    if (w < common) any0 |= a[w] & b[w];
    return (any0 | any1) != 0;
  }

  [[nodiscard]] bool is_subset_of(const ProcessSet& other) const {
    if (huge_ || other.huge_) return is_subset_of_slow(other);
    // Extension words are trimmed (no trailing zeros), so a wider
    // extension means a member beyond anything `other` can hold.
    if (ext_bits_.size() > other.ext_bits_.size()) return false;
    std::uint64_t stray = 0;
    for (std::size_t w = 0; w < kWords; ++w) {
      stray |= bits_[w] & ~other.bits_[w];
    }
    for (std::size_t w = 0; w < ext_bits_.size(); ++w) {
      stray |= ext_bits_[w] & ~other.ext_bits_[w];
    }
    return stray == 0;
  }

  /// True iff this set contains a strict majority of `of`. An empty `of`
  /// has no majority to contain: the predicate is false (0 > 0 fails),
  /// matching the paper-4.1 reading that succession clauses apply to a
  /// real previous quorum.
  [[nodiscard]] bool contains_majority_of(const ProcessSet& of) const {
    return 2 * intersection_size(of) > of.size();
  }

  /// True iff this set contains exactly half of `of` (|of| even and
  /// nonzero). The tie-break clause 2b of paper 4.1 splits a REAL
  /// previous quorum into halves; an empty `of` must not satisfy it
  /// vacuously (2*0 == 0), so it is guarded to false.
  [[nodiscard]] bool contains_exact_half_of(const ProcessSet& of) const {
    if (of.empty()) return false;
    return 2 * intersection_size(of) == of.size();
  }

  /// The highest-ranked member under the natural linear order, if any.
  /// Paper 4.1 uses the maximum of the *previous quorum* to break ties.
  [[nodiscard]] std::optional<ProcessId> max_member() const;

  /// Position of `p` in the sorted membership list; this is the i_M(q)
  /// index the optimized protocol's knowledge arrays are keyed by
  /// (paper 5.1). Precondition: contains(p).
  [[nodiscard]] std::size_t index_of(ProcessId p) const;

  [[nodiscard]] const std::vector<ProcessId>& members() const noexcept {
    return members_;
  }

  [[nodiscard]] const_iterator begin() const noexcept { return members_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return members_.end(); }

  friend bool operator==(const ProcessSet& a, const ProcessSet& b) {
    return a.members_ == b.members_;
  }

  /// Deterministic total order (lexicographic on the sorted members), so
  /// ProcessSets can key ordered containers.
  friend auto operator<=>(const ProcessSet& a, const ProcessSet& b) {
    return a.members_ <=> b.members_;
  }

  /// Renders as "{p0,p1,p4}".
  [[nodiscard]] std::string to_string() const;

  /// True iff the word-wise fast path covers this set (every member id
  /// < kDynamicIdLimit). Exposed for the property tests that pin the
  /// bitset and vector paths to each other.
  [[nodiscard]] bool uses_bitset() const noexcept { return !huge_; }

  /// True iff the set fits the inline words alone (every member id
  /// < kSmallIdLimit): no heap storage behind the bitset. Erasing the
  /// last id >= kSmallIdLimit restores this state.
  [[nodiscard]] bool uses_inline_bits() const noexcept {
    return !huge_ && ext_bits_.empty();
  }

 private:
  static constexpr std::size_t kWords = kSmallIdLimit / 64;

  /// Extension width (in words) at which intersection_size hands the
  /// whole walk to the dispatched detail::intersect_popcount kernel.
  /// Below it, the inline multi-accumulator walk wins: the indirect call
  /// plus the vector horizontal reduction cost about as much as the
  /// scalar walk saves until the set spans several thousand ids
  /// (measured crossover ~32 words on AVX2 hardware).
  static constexpr std::size_t kSimdWordThreshold = 32;

  /// Recomputes huge_, bits_ and ext_bits_ from members_ (after bulk
  /// mutation).
  void rebuild_bits();
  /// Drops trailing all-zero extension words so ext_bits_.size() encodes
  /// the highest occupied word (the is_subset_of width shortcut and
  /// uses_inline_bits depend on this invariant).
  void trim_ext_bits();
  /// Rebuilds members_ (ascending) from bits_ + ext_bits_.
  void rebuild_members_from_bits();
  // Sorted-vector fallbacks for sets with ids >= kDynamicIdLimit.
  [[nodiscard]] bool contains_slow(ProcessId p) const;
  [[nodiscard]] std::size_t intersection_size_slow(const ProcessSet& other) const;
  [[nodiscard]] bool intersects_slow(const ProcessSet& other) const;
  [[nodiscard]] bool is_subset_of_slow(const ProcessSet& other) const;
  /// Builds a set from an already sorted, duplicate-free vector.
  [[nodiscard]] static ProcessSet from_sorted(std::vector<ProcessId> ids);

  std::vector<ProcessId> members_;
  // Shadow bitset of members_, valid iff !huge_. bits_ holds ids below
  // kSmallIdLimit; ext_bits_[w] holds ids [kSmallIdLimit + 64w,
  // kSmallIdLimit + 64(w+1)), trimmed of trailing zero words. Both are
  // all-zero/empty when huge_ so value semantics (copies, moves) never
  // expose stale words.
  std::array<std::uint64_t, kWords> bits_{};
  std::vector<std::uint64_t> ext_bits_;
  bool huge_ = false;
};

[[nodiscard]] inline std::string to_string(const ProcessSet& s) {
  return s.to_string();
}

}  // namespace dynvote
