#include "util/process_set.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace dynvote {

namespace {

void normalize(std::vector<ProcessId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

ProcessSet::ProcessSet(std::initializer_list<ProcessId> ids) : members_(ids) {
  normalize(members_);
}

ProcessSet::ProcessSet(std::vector<ProcessId> ids) : members_(std::move(ids)) {
  normalize(members_);
}

ProcessSet ProcessSet::range(std::uint32_t n) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.emplace_back(i);
  return ProcessSet(std::move(ids));
}

ProcessSet ProcessSet::of(std::initializer_list<std::uint32_t> raw) {
  std::vector<ProcessId> ids;
  ids.reserve(raw.size());
  for (std::uint32_t r : raw) ids.emplace_back(r);
  return ProcessSet(std::move(ids));
}

bool ProcessSet::contains(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool ProcessSet::insert(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it != members_.end() && *it == p) return false;
  members_.insert(it, p);
  return true;
}

bool ProcessSet::erase(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) return false;
  members_.erase(it);
  return true;
}

ProcessSet ProcessSet::set_union(const ProcessSet& other) const {
  std::vector<ProcessId> out;
  out.reserve(members_.size() + other.members_.size());
  std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                 other.members_.end(), std::back_inserter(out));
  ProcessSet result;
  result.members_ = std::move(out);
  return result;
}

ProcessSet ProcessSet::set_intersection(const ProcessSet& other) const {
  std::vector<ProcessId> out;
  std::set_intersection(members_.begin(), members_.end(), other.members_.begin(),
                        other.members_.end(), std::back_inserter(out));
  ProcessSet result;
  result.members_ = std::move(out);
  return result;
}

ProcessSet ProcessSet::set_difference(const ProcessSet& other) const {
  std::vector<ProcessId> out;
  std::set_difference(members_.begin(), members_.end(), other.members_.begin(),
                      other.members_.end(), std::back_inserter(out));
  ProcessSet result;
  result.members_ = std::move(out);
  return result;
}

std::size_t ProcessSet::intersection_size(const ProcessSet& other) const {
  std::size_t count = 0;
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

bool ProcessSet::intersects(const ProcessSet& other) const {
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

bool ProcessSet::is_subset_of(const ProcessSet& other) const {
  return std::includes(other.members_.begin(), other.members_.end(),
                       members_.begin(), members_.end());
}

bool ProcessSet::contains_majority_of(const ProcessSet& of) const {
  return 2 * intersection_size(of) > of.size();
}

bool ProcessSet::contains_exact_half_of(const ProcessSet& of) const {
  return 2 * intersection_size(of) == of.size();
}

std::optional<ProcessId> ProcessSet::max_member() const {
  if (members_.empty()) return std::nullopt;
  return members_.back();
}

std::size_t ProcessSet::index_of(ProcessId p) const {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  ensure(it != members_.end() && *it == p,
         "index_of: " + dynvote::to_string(p) + " not in " + to_string());
  return static_cast<std::size_t>(it - members_.begin());
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) out += ",";
    out += dynvote::to_string(members_[i]);
  }
  out += "}";
  return out;
}

}  // namespace dynvote
