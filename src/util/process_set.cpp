#include "util/process_set.hpp"

#include <algorithm>
#include <bit>

#include "util/ensure.hpp"

namespace dynvote {

namespace {

void normalize(std::vector<ProcessId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

void ProcessSet::rebuild_bits() {
  bits_.fill(0);
  // members_ is sorted, so one comparison against the back decides the
  // representation.
  small_ = members_.empty() || members_.back().value() < kSmallIdLimit;
  if (!small_) return;
  for (const ProcessId p : members_) {
    bits_[p.value() >> 6] |= std::uint64_t{1} << (p.value() & 63);
  }
}

ProcessSet ProcessSet::from_sorted(std::vector<ProcessId> ids) {
  ProcessSet out;
  out.members_ = std::move(ids);
  out.rebuild_bits();
  return out;
}

void ProcessSet::expand_bits(const std::array<std::uint64_t, kWords>& bits,
                             ProcessSet& out) {
  std::size_t count = 0;
  for (const std::uint64_t w : bits) count += std::popcount(w);
  out.members_.reserve(count);
  for (std::size_t w = 0; w < kWords; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      out.members_.emplace_back(static_cast<std::uint32_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  out.bits_ = bits;
  out.small_ = true;
}

ProcessSet::ProcessSet(std::initializer_list<ProcessId> ids) : members_(ids) {
  normalize(members_);
  rebuild_bits();
}

ProcessSet::ProcessSet(std::vector<ProcessId> ids) : members_(std::move(ids)) {
  normalize(members_);
  rebuild_bits();
}

ProcessSet ProcessSet::range(std::uint32_t n) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.emplace_back(i);
  return from_sorted(std::move(ids));
}

ProcessSet ProcessSet::of(std::initializer_list<std::uint32_t> raw) {
  std::vector<ProcessId> ids;
  ids.reserve(raw.size());
  for (std::uint32_t r : raw) ids.emplace_back(r);
  return ProcessSet(std::move(ids));
}

bool ProcessSet::contains_slow(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool ProcessSet::insert(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it != members_.end() && *it == p) return false;
  members_.insert(it, p);
  if (p.value() >= kSmallIdLimit) {
    if (small_) bits_.fill(0);
    small_ = false;
  } else if (small_) {
    bits_[p.value() >> 6] |= std::uint64_t{1} << (p.value() & 63);
  }
  return true;
}

bool ProcessSet::erase(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) return false;
  members_.erase(it);
  if (small_) {
    bits_[p.value() >> 6] &= ~(std::uint64_t{1} << (p.value() & 63));
  } else if (members_.empty() || members_.back().value() < kSmallIdLimit) {
    // Removing the last big id drops the set back onto the fast path.
    rebuild_bits();
  }
  return true;
}

ProcessSet ProcessSet::set_union(const ProcessSet& other) const {
  if (small_ && other.small_) {
    std::array<std::uint64_t, kWords> bits;
    for (std::size_t w = 0; w < kWords; ++w) bits[w] = bits_[w] | other.bits_[w];
    ProcessSet result;
    expand_bits(bits, result);
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(members_.size() + other.members_.size());
  std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                 other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

ProcessSet ProcessSet::set_intersection(const ProcessSet& other) const {
  if (small_ && other.small_) {
    std::array<std::uint64_t, kWords> bits;
    for (std::size_t w = 0; w < kWords; ++w) bits[w] = bits_[w] & other.bits_[w];
    ProcessSet result;
    expand_bits(bits, result);
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(std::min(members_.size(), other.members_.size()));
  std::set_intersection(members_.begin(), members_.end(), other.members_.begin(),
                        other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

ProcessSet ProcessSet::set_difference(const ProcessSet& other) const {
  if (small_ && other.small_) {
    std::array<std::uint64_t, kWords> bits;
    for (std::size_t w = 0; w < kWords; ++w) bits[w] = bits_[w] & ~other.bits_[w];
    ProcessSet result;
    expand_bits(bits, result);
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(members_.size());
  std::set_difference(members_.begin(), members_.end(), other.members_.begin(),
                      other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

std::size_t ProcessSet::intersection_size_slow(const ProcessSet& other) const {
  std::size_t count = 0;
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

bool ProcessSet::intersects_slow(const ProcessSet& other) const {
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

bool ProcessSet::is_subset_of_slow(const ProcessSet& other) const {
  if (!small_ && other.small_) return false;  // we hold an id other cannot
  return std::includes(other.members_.begin(), other.members_.end(),
                       members_.begin(), members_.end());
}

std::optional<ProcessId> ProcessSet::max_member() const {
  if (members_.empty()) return std::nullopt;
  return members_.back();
}

std::size_t ProcessSet::index_of(ProcessId p) const {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  ensure(it != members_.end() && *it == p,
         "index_of: " + dynvote::to_string(p) + " not in " + to_string());
  return static_cast<std::size_t>(it - members_.begin());
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) out += ",";
    out += dynvote::to_string(members_[i]);
  }
  out += "}";
  return out;
}

}  // namespace dynvote
