#include "util/process_set.hpp"

#include <algorithm>
#include <bit>

#include "util/ensure.hpp"

namespace dynvote {

namespace detail {

namespace {

std::size_t intersect_popcount_scalar(const std::uint64_t* a1,
                                      const std::uint64_t* b1, std::size_t n1,
                                      const std::uint64_t* a2,
                                      const std::uint64_t* b2, std::size_t n2) {
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  std::size_t c3 = 0;
  const auto run = [&](const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
      c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
      c1 += static_cast<std::size_t>(std::popcount(a[w + 1] & b[w + 1]));
      c2 += static_cast<std::size_t>(std::popcount(a[w + 2] & b[w + 2]));
      c3 += static_cast<std::size_t>(std::popcount(a[w + 3] & b[w + 3]));
    }
    for (; w < n; ++w) {
      c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
  };
  run(a1, b1, n1);
  run(a2, b2, n2);
  return (c0 + c1) + (c2 + c3);
}

}  // namespace

// Constant-initialized to the scalar kernel so the pointer is valid even
// during other translation units' static initialization; upgraded to the
// AVX2 kernel (when compiled in and the CPU supports it) by the dynamic
// initializer below.
constinit IntersectPopcountFn intersect_popcount = &intersect_popcount_scalar;

#if defined(DYNVOTE_SIMD_AVX2)
std::size_t intersect_popcount_avx2(const std::uint64_t* a1,
                                    const std::uint64_t* b1, std::size_t n1,
                                    const std::uint64_t* a2,
                                    const std::uint64_t* b2, std::size_t n2);

namespace {
struct SimdDispatch {
  SimdDispatch() {
    if (__builtin_cpu_supports("avx2")) {
      intersect_popcount = &intersect_popcount_avx2;
    }
  }
} simd_dispatch;
}  // namespace
#endif

}  // namespace detail

namespace {

void normalize(std::vector<ProcessId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// Appends the ids encoded in `word` (offset by `base`) to `out`,
/// ascending.
void append_word_members(std::uint64_t word, std::uint32_t base,
                         std::vector<ProcessId>& out) {
  while (word != 0) {
    const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
    out.emplace_back(base + bit);
    word &= word - 1;
  }
}

}  // namespace

void ProcessSet::rebuild_bits() {
  bits_.fill(0);
  ext_bits_.clear();
  // members_ is sorted, so one comparison against the back decides the
  // representation.
  huge_ = !members_.empty() && members_.back().value() >= kDynamicIdLimit;
  if (huge_) return;
  if (!members_.empty() && members_.back().value() >= kSmallIdLimit) {
    ext_bits_.resize(((members_.back().value() - kSmallIdLimit) >> 6) + 1, 0);
  }
  for (const ProcessId p : members_) {
    const std::uint32_t v = p.value();
    if (v < kSmallIdLimit) {
      bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
    } else {
      ext_bits_[(v - kSmallIdLimit) >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
}

void ProcessSet::trim_ext_bits() {
  while (!ext_bits_.empty() && ext_bits_.back() == 0) ext_bits_.pop_back();
}

void ProcessSet::rebuild_members_from_bits() {
  std::size_t count = 0;
  for (const std::uint64_t w : bits_) count += std::popcount(w);
  for (const std::uint64_t w : ext_bits_) count += std::popcount(w);
  members_.clear();
  members_.reserve(count);
  for (std::size_t w = 0; w < kWords; ++w) {
    append_word_members(bits_[w], static_cast<std::uint32_t>(w * 64),
                        members_);
  }
  for (std::size_t w = 0; w < ext_bits_.size(); ++w) {
    append_word_members(ext_bits_[w],
                        kSmallIdLimit + static_cast<std::uint32_t>(w * 64),
                        members_);
  }
}

ProcessSet ProcessSet::from_sorted(std::vector<ProcessId> ids) {
  ProcessSet out;
  out.members_ = std::move(ids);
  out.rebuild_bits();
  return out;
}

ProcessSet::ProcessSet(std::initializer_list<ProcessId> ids) : members_(ids) {
  normalize(members_);
  rebuild_bits();
}

ProcessSet::ProcessSet(std::vector<ProcessId> ids) : members_(std::move(ids)) {
  normalize(members_);
  rebuild_bits();
}

ProcessSet ProcessSet::range(std::uint32_t n) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.emplace_back(i);
  return from_sorted(std::move(ids));
}

ProcessSet ProcessSet::of(std::initializer_list<std::uint32_t> raw) {
  std::vector<ProcessId> ids;
  ids.reserve(raw.size());
  for (std::uint32_t r : raw) ids.emplace_back(r);
  return ProcessSet(std::move(ids));
}

bool ProcessSet::contains_slow(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool ProcessSet::insert(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it != members_.end() && *it == p) return false;
  members_.insert(it, p);
  const std::uint32_t v = p.value();
  if (v >= kDynamicIdLimit) {
    if (!huge_) {
      bits_.fill(0);
      ext_bits_.clear();
    }
    huge_ = true;
  } else if (!huge_) {
    if (v < kSmallIdLimit) {
      bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
    } else {
      const std::size_t w = (v - kSmallIdLimit) >> 6;
      if (w >= ext_bits_.size()) ext_bits_.resize(w + 1, 0);
      ext_bits_[w] |= std::uint64_t{1} << (v & 63);
    }
  }
  return true;
}

bool ProcessSet::erase(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) return false;
  members_.erase(it);
  const std::uint32_t v = p.value();
  if (!huge_) {
    if (v < kSmallIdLimit) {
      bits_[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
    } else {
      ext_bits_[(v - kSmallIdLimit) >> 6] &= ~(std::uint64_t{1} << (v & 63));
      trim_ext_bits();
    }
  } else if (members_.empty() || members_.back().value() < kDynamicIdLimit) {
    // Removing the last huge id drops the set back onto the word-wise
    // fast path.
    rebuild_bits();
  }
  return true;
}

ProcessSet ProcessSet::set_union(const ProcessSet& other) const {
  if (!huge_ && !other.huge_) {
    ProcessSet result;
    for (std::size_t w = 0; w < kWords; ++w) {
      result.bits_[w] = bits_[w] | other.bits_[w];
    }
    const ProcessSet& wide =
        ext_bits_.size() >= other.ext_bits_.size() ? *this : other;
    const ProcessSet& narrow =
        ext_bits_.size() >= other.ext_bits_.size() ? other : *this;
    result.ext_bits_ = wide.ext_bits_;
    for (std::size_t w = 0; w < narrow.ext_bits_.size(); ++w) {
      result.ext_bits_[w] |= narrow.ext_bits_[w];
    }
    result.rebuild_members_from_bits();
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(members_.size() + other.members_.size());
  std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                 other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

ProcessSet ProcessSet::set_intersection(const ProcessSet& other) const {
  if (!huge_ && !other.huge_) {
    ProcessSet result;
    for (std::size_t w = 0; w < kWords; ++w) {
      result.bits_[w] = bits_[w] & other.bits_[w];
    }
    const std::size_t common =
        std::min(ext_bits_.size(), other.ext_bits_.size());
    result.ext_bits_.resize(common);
    for (std::size_t w = 0; w < common; ++w) {
      result.ext_bits_[w] = ext_bits_[w] & other.ext_bits_[w];
    }
    result.trim_ext_bits();
    result.rebuild_members_from_bits();
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(std::min(members_.size(), other.members_.size()));
  std::set_intersection(members_.begin(), members_.end(), other.members_.begin(),
                        other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

ProcessSet ProcessSet::set_difference(const ProcessSet& other) const {
  if (!huge_ && !other.huge_) {
    ProcessSet result;
    for (std::size_t w = 0; w < kWords; ++w) {
      result.bits_[w] = bits_[w] & ~other.bits_[w];
    }
    result.ext_bits_ = ext_bits_;
    const std::size_t common =
        std::min(ext_bits_.size(), other.ext_bits_.size());
    for (std::size_t w = 0; w < common; ++w) {
      result.ext_bits_[w] &= ~other.ext_bits_[w];
    }
    result.trim_ext_bits();
    result.rebuild_members_from_bits();
    return result;
  }
  std::vector<ProcessId> out;
  out.reserve(members_.size());
  std::set_difference(members_.begin(), members_.end(), other.members_.begin(),
                      other.members_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

std::size_t ProcessSet::intersection_size_slow(const ProcessSet& other) const {
  std::size_t count = 0;
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

bool ProcessSet::intersects_slow(const ProcessSet& other) const {
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

bool ProcessSet::is_subset_of_slow(const ProcessSet& other) const {
  if (members_.size() > other.members_.size()) return false;
  return std::includes(other.members_.begin(), other.members_.end(),
                       members_.begin(), members_.end());
}

std::optional<ProcessId> ProcessSet::max_member() const {
  if (members_.empty()) return std::nullopt;
  return members_.back();
}

std::size_t ProcessSet::index_of(ProcessId p) const {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  ensure(it != members_.end() && *it == p,
         "index_of: " + dynvote::to_string(p) + " not in " + to_string());
  return static_cast<std::size_t>(it - members_.begin());
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) out += ",";
    out += dynvote::to_string(members_[i]);
  }
  out += "}";
  return out;
}

}  // namespace dynvote
