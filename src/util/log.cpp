#include "util/log.hpp"

#include <cstdio>
#include <iomanip>

namespace dynvote {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::enable_stderr() {
  add_sink([](const LogRecord& record) {
    std::fprintf(stderr, "%s\n", format(record).c_str());
  });
}

void Logger::add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

void Logger::log(SimTime time, LogLevel level, std::string component,
                 std::string message) {
  if (level < level_) return;
  LogRecord record{time, level, std::move(component), std::move(message)};
  for (const auto& sink : sinks_) sink(record);
  if (capture_) records_.push_back(std::move(record));
}

std::string format(const LogRecord& record) {
  std::ostringstream out;
  out << "[" << std::setw(8) << record.time << "us] " << std::left
      << std::setw(5) << to_string(record.level) << " " << std::setw(10)
      << record.component << " | " << record.message;
  return out.str();
}

}  // namespace dynvote
