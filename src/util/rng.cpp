#include "util/rng.hpp"

#include <cmath>

namespace dynvote {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit seed, as
// recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) noexcept {
  // Inverse CDF; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

Rng Rng::split() noexcept { return Rng(next()); }

}  // namespace dynvote
