#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dynvote {
namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  fail("json: not a bool");
}

std::int64_t JsonValue::as_int() const {
  switch (kind()) {
    case Kind::kInt:
      return std::get<std::int64_t>(value_);
    case Kind::kUint: {
      const std::uint64_t u = std::get<std::uint64_t>(value_);
      if (u > static_cast<std::uint64_t>(INT64_MAX)) {
        fail("json: uint out of int64 range");
      }
      return static_cast<std::int64_t>(u);
    }
    case Kind::kDouble: {
      const double d = std::get<double>(value_);
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) != d) fail("json: non-integral double");
      return i;
    }
    default:
      fail("json: not a number");
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (kind()) {
    case Kind::kUint:
      return std::get<std::uint64_t>(value_);
    case Kind::kInt: {
      const std::int64_t i = std::get<std::int64_t>(value_);
      if (i < 0) fail("json: negative int as uint");
      return static_cast<std::uint64_t>(i);
    }
    case Kind::kDouble: {
      const double d = std::get<double>(value_);
      if (d < 0) fail("json: negative double as uint");
      const auto u = static_cast<std::uint64_t>(d);
      if (static_cast<double>(u) != d) fail("json: non-integral double");
      return u;
    }
    default:
      fail("json: not a number");
  }
}

double JsonValue::as_double() const {
  switch (kind()) {
    case Kind::kDouble:
      return std::get<double>(value_);
    case Kind::kInt:
      return static_cast<double>(std::get<std::int64_t>(value_));
    case Kind::kUint:
      return static_cast<double>(std::get<std::uint64_t>(value_));
    default:
      fail("json: not a number");
  }
}

const std::string& JsonValue::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  fail("json: not a string");
}

const JsonValue::Array& JsonValue::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  fail("json: not an array");
}

const JsonValue::Object& JsonValue::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  fail("json: not an object");
}

void JsonValue::push_back(JsonValue v) {
  Array* a = std::get_if<Array>(&value_);
  if (a == nullptr) fail("json: push_back on non-array");
  a->push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) fail("json: set on non-object");
  o->emplace_back(std::move(key), std::move(v));
}

void JsonValue::reserve(std::size_t n) {
  if (Array* a = std::get_if<Array>(&value_)) {
    a->reserve(n);
    return;
  }
  if (Object* o = std::get_if<Object>(&value_)) {
    o->reserve(n);
    return;
  }
  fail("json: reserve on non-container");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  for (const auto& [k, v] : *o) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) fail("json: missing key '" + std::string(key) + "'");
  return *v;
}

namespace {

[[nodiscard]] constexpr bool needs_escape(char c) {
  return c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
}

}  // namespace

void json_escape(std::string& out, std::string_view s) {
  out.push_back('"');
  std::size_t i = 0;
  while (i < s.size()) {
    // Bulk-copy the (overwhelmingly common) run of plain characters.
    std::size_t run = i;
    while (run < s.size() && !needs_escape(s[run])) ++run;
    out.append(s.data() + i, run - i);
    i = run;
    if (i >= s.size()) break;
    const char c = s[i++];
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      }
    }
  }
  out.push_back('"');
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind()) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      const auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), std::get<std::int64_t>(value_));
      if (ec != std::errc{}) fail("json: int format");
      out.append(buf, end);
      break;
    }
    case Kind::kUint: {
      char buf[24];
      const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf),
                                           std::get<std::uint64_t>(value_));
      if (ec != std::errc{}) fail("json: uint format");
      out.append(buf, end);
      break;
    }
    case Kind::kDouble: {
      const double d = std::get<double>(value_);
      if (!std::isfinite(d)) fail("json: non-finite double");
      // Shortest round-trip representation; deterministic across runs.
      char buf[32];
      const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
      if (ec != std::errc{}) fail("json: double format");
      out.append(buf, end);
      break;
    }
    case Kind::kString:
      json_escape(out, std::get<std::string>(value_));
      break;
    case Kind::kArray: {
      const Array& array = std::get<Array>(value_);
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        array[i].write(out, indent, depth + 1);
      }
      if (!array.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      const Object& object = std::get<Object>(value_);
      out.push_back('{');
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        json_escape(out, object[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object[i].second.write(out, indent, depth + 1);
      }
      if (!object.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("json: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("json: expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("json: bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("json: bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("json: bad literal");
        return JsonValue(nullptr);
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    // A trace document is thousands of small event objects; starting at
    // a realistic field count skips the 1->2->4->8 doubling growth.
    obj.reserve(8);
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    arr.reserve(4);  // most arrays here are short process-id lists
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      // Bulk-copy up to the next quote or escape; most strings contain
      // neither an escape nor a control character.
      std::size_t run = pos_;
      while (run < text_.size() && text_[run] != '"' && text_[run] != '\\') {
        ++run;
      }
      out.append(text_.data() + pos_, run - pos_);
      pos_ = run;
      if (pos_ >= text_.size()) fail("json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (pos_ >= text_.size()) fail("json: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("json: bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("json: bad \\u escape");
            }
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("json: bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = is_float || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("json: bad number");
    if (!is_float) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec != std::errc{} || p != token.data() + token.size()) {
          fail("json: bad number");
        }
        return JsonValue(v);
      }
      std::uint64_t v = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec != std::errc{} || p != token.data() + token.size()) {
        fail("json: bad number");
      }
      return JsonValue(v);
    }
    double v = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      fail("json: bad number");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dynvote
