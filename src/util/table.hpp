// Aligned plain-text tables for benchmark output.
//
// Every reproduction bench prints its results as a table in the style of
// the paper's worked-example tables (e.g. section 4.6). Columns are
// auto-sized; the first column is left-aligned, the rest right-aligned.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dynvote {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace dynvote
