// Strong identifier types used throughout the library.
//
// The C++ Core Guidelines (I.4, Con.1) advise strongly-typed interfaces;
// we wrap raw integers so a ProcessId cannot be confused with a ViewId or
// a session number at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace dynvote {

/// A process (site) identifier. Processes are named by small integers in
/// the simulator; the protocol itself only requires a total "linear order"
/// over identifiers (paper section 4.1), which operator<=> provides.
class ProcessId {
 public:
  constexpr ProcessId() noexcept = default;
  constexpr explicit ProcessId(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  constexpr auto operator<=>(const ProcessId&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A membership-view identifier. Views are produced by the membership
/// oracle with globally increasing ids; protocol messages carry the view
/// id they were sent in so stale traffic can be discarded (paper 3.1).
class ViewId {
 public:
  constexpr ViewId() noexcept = default;
  constexpr explicit ViewId(std::uint64_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  constexpr auto operator<=>(const ViewId&) const noexcept = default;

 private:
  std::uint64_t value_ = 0;  // 0 means "no view yet".
};

/// Session numbers as used by the protocol (paper 4.2). They start at 0
/// for core members, -1 for late joiners, and only ever increase
/// (paper Lemma 1).
using SessionNumber = std::int64_t;

/// Session number of a process outside the core group before it joins.
inline constexpr SessionNumber kNoSessionNumber = -1;

/// Simulated time, in integer "ticks" (interpreted as microseconds by the
/// latency models; the unit is irrelevant to correctness).
using SimTime = std::uint64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

[[nodiscard]] inline std::string to_string(ProcessId p) {
  return "p" + std::to_string(p.value());
}

[[nodiscard]] inline std::string to_string(ViewId v) {
  return "v" + std::to_string(v.value());
}

}  // namespace dynvote

template <>
struct std::hash<dynvote::ProcessId> {
  std::size_t operator()(const dynvote::ProcessId& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value());
  }
};

template <>
struct std::hash<dynvote::ViewId> {
  std::size_t operator()(const dynvote::ViewId& v) const noexcept {
    return std::hash<std::uint64_t>{}(v.value());
  }
};
