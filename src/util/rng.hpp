// Deterministic pseudo-random number generation.
//
// Everything stochastic in the library (message latencies, failure
// schedules, Monte-Carlo availability runs) draws from one seeded Rng so
// that a seed fully determines an execution. This is what makes the
// paired protocol comparisons in the benchmarks meaningful: every
// protocol is replayed against bit-identical failure schedules.
#pragma once

#include <cstdint>
#include <vector>

namespace dynvote {

/// xoshiro256** by Blackman & Vigna: fast, high quality, tiny state, and
/// — unlike std::mt19937 + distributions — identical output on every
/// platform and standard library, which reproducible simulation needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform on [0, 2^64).
  std::uint64_t next() noexcept;

  /// Uniform on [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform on [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform on [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Exponentially distributed with the given mean (> 0); used for
  /// failure inter-arrival times in the availability harness.
  double next_exponential(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give subsystems
  /// their own streams without correlating them.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace dynvote
