// Invariant checking.
//
// The library throws InvariantViolation instead of aborting so that tests
// can assert on broken invariants and the consistency checker can report
// them as measurements (the inconsistent baseline protocols are *supposed*
// to misbehave; we observe, we don't crash).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dynvote {

/// Thrown when an internal invariant is violated. Indicates a bug in the
/// library (or a deliberately broken baseline doing something the correct
/// protocol never would).
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

/// Checks `condition`; throws InvariantViolation annotated with the call
/// site otherwise. Used for preconditions and internal invariants alike.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantViolation(std::string(loc.file_name()) + ":" +
                             std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace dynvote
