// Lightweight leveled logging.
//
// Simulations emit traces through a per-simulator Logger rather than a
// global one, so concurrent tests don't interleave and scenario benches
// can capture a narrative trace for their output tables.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace dynvote {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// A single log record: simulated timestamp, level, component tag, text.
struct LogRecord {
  SimTime time = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

/// Collects records above a threshold and forwards them to sinks.
/// Default configuration is silent collection (no stderr noise in tests);
/// enable_stderr() turns on human-readable output for examples.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Keep an in-memory copy of each record (on by default; used by tests
  /// and by scenario benches to print traces).
  void set_capture(bool capture) noexcept { capture_ = capture; }

  void enable_stderr();
  void add_sink(Sink sink);

  void log(SimTime time, LogLevel level, std::string component,
           std::string message);

  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  LogLevel level_ = LogLevel::kWarn;
  bool capture_ = true;
  std::vector<LogRecord> records_;
  std::vector<Sink> sinks_;
};

/// Formats a record as "[   123us] INFO  net | message".
[[nodiscard]] std::string format(const LogRecord& record);

}  // namespace dynvote
