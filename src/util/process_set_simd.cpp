// AVX2 kernel for ProcessSet's intersection popcount. Compiled with
// -mavx2 (this file only — see src/CMakeLists.txt); selected at startup
// by the runtime dispatcher in process_set.cpp iff the CPU supports
// AVX2, so the library binary stays runnable on baseline x86-64.
//
// The kernel is the nibble-LUT popcount (Mula): two vpshufb table
// lookups per 256-bit lane plus vpsadbw to widen byte counts to 64-bit
// accumulators. Scalar popcnt retires one word per cycle on a single
// port; this retires four words per op, which is what keeps the
// widest walks (several thousand ids) near the small-set throughput.
#include "util/process_set.hpp"

#if defined(DYNVOTE_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace dynvote::detail {

namespace {

/// Per-byte popcount of `v` via the 16-entry nibble lookup table.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

}  // namespace

std::size_t intersect_popcount_avx2(const std::uint64_t* a1,
                                    const std::uint64_t* b1, std::size_t n1,
                                    const std::uint64_t* a2,
                                    const std::uint64_t* b2, std::size_t n2) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t tail = 0;
  const auto run = [&](const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
      const __m256i bytes = popcount_bytes(_mm256_and_si256(va, vb));
      // vpsadbw collapses every 8 byte-counts into a 64-bit lane each
      // iteration, so the byte accumulator can never saturate.
      acc = _mm256_add_epi64(acc,
                             _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
    }
    for (; w < n; ++w) {
      tail += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
  };
  run(a1, b1, n1);
  run(a2, b2, n2);
  const __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                       _mm256_extracti128_si256(acc, 1));
  const std::uint64_t lanes =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(halves)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(halves, 1));
  return tail + static_cast<std::size_t>(lanes);
}

}  // namespace dynvote::detail

#endif  // DYNVOTE_SIMD_AVX2 && __AVX2__
