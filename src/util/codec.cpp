#include "util/codec.hpp"

namespace dynvote {

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Encoder::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Encoder::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_bool(bool v) { put_u8(v ? 1 : 0); }

void Encoder::put_string(std::string_view s) {
  put_varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::put_process_id(ProcessId p) { put_varint(p.value()); }

void Encoder::put_process_set(const ProcessSet& s) {
  // One byte per id below 128 plus the count prefix; reserving up front
  // spares the byte-at-a-time growth for the common small-id sets.
  buffer_.reserve(buffer_.size() + s.size() + 2);
  put_varint(s.size());
  for (ProcessId p : s) put_process_id(p);
}

void Decoder::need(std::size_t n) const {
  if (size_ - pos_ < n) throw CodecError("decode past end of buffer");
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Decoder::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::int64_t Decoder::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7F) > 1)) {
      throw CodecError("varint overflow");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

bool Decoder::get_bool() {
  std::uint8_t b = get_u8();
  if (b > 1) throw CodecError("invalid bool byte");
  return b == 1;
}

std::string Decoder::get_string() {
  std::uint64_t n = get_varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

ProcessId Decoder::get_process_id() {
  std::uint64_t v = get_varint();
  if (v > 0xFFFFFFFFULL) throw CodecError("process id out of range");
  return ProcessId(static_cast<std::uint32_t>(v));
}

ProcessSet Decoder::get_process_set() {
  std::uint64_t n = get_varint();
  if (n > remaining()) throw CodecError("process set length prefix too large");
  std::vector<ProcessId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(get_process_id());
  return ProcessSet(std::move(ids));
}

}  // namespace dynvote
