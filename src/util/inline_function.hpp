// InlineFunction: a move-only callable wrapper with a small-buffer
// optimization sized for the simulator's hot path.
//
// std::function heap-allocates any capture larger than ~two pointers; the
// event queue schedules millions of delivery closures per bench, each
// capturing a full Envelope (~64 bytes). InlineFunction stores callables
// up to InlineSize bytes in place and falls back to a heap box above
// that, so the common scheduling path performs no allocation at all.
//
// The default capacity is 88 bytes: with the three dispatch pointers
// that makes sizeof(InlineFunction) == 112, and an EventQueue entry
// (time + token + action) exactly two cache lines (128 bytes). The
// largest hot closure — the network's delivery capture of {Network*,
// Envelope, epoch} — is 64 bytes and stays inline; anything bigger
// (the membership oracle's view closure, cold path) takes the box.
// tests/perf_structures_test.cpp pins these sizes.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote {

inline constexpr std::size_t kInlineFunctionDefaultCapacity = 88;

template <typename Signature,
          std::size_t InlineSize = kInlineFunctionDefaultCapacity>
class InlineFunction;  // primary template; only R(Args...) is defined

template <typename R, typename... Args, std::size_t InlineSize>
class InlineFunction<R(Args...), InlineSize> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) {
    ensure(invoke_ != nullptr, "calling an empty InlineFunction");
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(&storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  using Invoke = R (*)(void*, Args&&...);
  /// Move-constructs the callable at `dst` from `src` and destroys `src`.
  using Relocate = void (*)(void* dst, void* src);
  using Destroy = void (*)(void*);

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= InlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      install<D>(std::forward<F>(f));
    } else {
      // Too big (or throwing move): box it; the unique_ptr itself is the
      // inline callable.
      install<Box<D>>(Box<D>{std::make_unique<D>(std::forward<F>(f))});
    }
  }

  template <typename D, typename F>
  void install(F&& f) {
    ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s, Args&&... args) -> R {
      return (*std::launder(reinterpret_cast<D*>(s)))(
          std::forward<Args>(args)...);
    };
    relocate_ = [](void* dst, void* src) {
      D* from = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    };
    destroy_ = [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); };
  }

  template <typename D>
  struct Box {
    std::unique_ptr<D> fn;
    R operator()(Args... args) { return (*fn)(std::forward<Args>(args)...); }
  };

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(&storage_, &other.storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[InlineSize];
  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  Destroy destroy_ = nullptr;
};

}  // namespace dynvote
