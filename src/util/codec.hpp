// A small binary codec.
//
// Protocol state is serialized through this codec before it reaches the
// simulated stable storage — the paper requires every variable change to
// be "written to a stable storage before responding to the message that
// caused the change" (section 4.4) — and protocol messages are encoded
// through it to account for on-the-wire bytes in the communication
// benchmarks (experiment E4).
//
// Format: little-endian fixed-width integers, LEB128 varints for sizes,
// length-prefixed strings and sequences. Decoding is bounds-checked and
// throws CodecError on malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"
#include "util/process_set.hpp"

namespace dynvote {

/// Thrown when decoding runs off the end of the buffer or reads a value
/// that violates the format (e.g. an oversized length prefix).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only binary writer.
class Encoder {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);
  void put_bool(bool v);
  void put_string(std::string_view s);
  void put_process_id(ProcessId p);
  void put_process_set(const ProcessSet& s);

  /// Encodes an optional by a presence byte followed by the payload.
  template <typename T, typename PutFn>
  void put_optional(const std::optional<T>& v, PutFn put) {
    put_bool(v.has_value());
    if (v) put(*v);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  /// Drops the content but keeps the capacity: a persist-path Encoder can
  /// be reused across writes without re-growing its buffer every time.
  void clear() noexcept { buffer_.clear(); }
  void reserve(std::size_t n) { buffer_.reserve(n); }

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked binary reader over a borrowed buffer.
class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  std::uint64_t get_varint();
  bool get_bool();
  std::string get_string();
  ProcessId get_process_id();
  ProcessSet get_process_set();

  template <typename T, typename GetFn>
  std::optional<T> get_optional(GetFn get) {
    if (!get_bool()) return std::nullopt;
    return get();
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dynvote
