#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/ensure.hpp"

namespace dynvote {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Summary::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

double Summary::sum() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const noexcept {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

void Summary::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::percentile(double q) const {
  ensure(q >= 0.0 && q <= 1.0, "percentile rank out of [0,1]");
  ensure(!samples_.empty(), "percentile of empty summary");
  sort_if_needed();
  if (samples_.size() == 1) return samples_.front();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace dynvote
