// A minimal deterministic JSON tree, writer, and parser.
//
// The observability layer (src/obs/) exports traces and bench results as
// JSON, and the trace-replay checker reads them back. Determinism is a
// hard requirement — two runs with the same RNG seed must serialize to
// byte-identical output — so objects preserve insertion order (a sorted
// map would also be deterministic, but insertion order keeps the schema
// readable) and doubles are printed with a fixed shortest-round-trip
// format. The parser is bounds-checked and throws JsonError on malformed
// input; it exists so replay can work from the exported file alone.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dynvote {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON value. Objects are ordered vectors of (key, value) pairs;
/// duplicate keys are not rejected but lookup returns the first match.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool v) : value_(v) {}
  JsonValue(std::int64_t v) : value_(v) {}
  JsonValue(int v) : value_(std::int64_t{v}) {}
  JsonValue(std::uint64_t v) : value_(v) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(std::string v) : value_(std::move(v)) {}
  JsonValue(std::string_view v) : value_(std::string(v)) {}
  JsonValue(const char* v) : value_(std::string(v)) {}
  JsonValue(Array v) : value_(std::move(v)) {}
  JsonValue(Object v) : value_(std::move(v)) {}

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  [[nodiscard]] Kind kind() const noexcept {
    return static_cast<Kind>(value_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind() == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind() == Kind::kArray; }

  // Checked accessors — throw JsonError on kind mismatch (numbers convert
  // between signed/unsigned/double when the value fits).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Appends to an array value.
  void push_back(JsonValue v);
  /// Appends a key to an object value (no de-duplication).
  void set(std::string key, JsonValue v);
  /// Reserves capacity in an array or object value. Builders with a known
  /// field count (the trace exporter emits thousands of small objects)
  /// use this to skip the doubling reallocations.
  void reserve(std::size_t n);

  /// First value under `key`, or nullptr if absent / not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// First value under `key`; throws JsonError if absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Compact serialization (no whitespace). Deterministic: preserves
  /// object insertion order, fixed number formatting.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with two-space indentation (still deterministic).
  [[nodiscard]] std::string dump_pretty() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static JsonValue parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  // One compact alternative per Kind, in Kind order (kind() reads the
  // variant index). A scalar node costs 48 bytes instead of carrying an
  // always-constructed string and two vectors — the JSON layer's cost is
  // dominated by tree construction/destruction in the trace pipeline.
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_;
};

/// Escapes `s` into a quoted JSON string literal appended to `out`.
void json_escape(std::string& out, std::string_view s);

}  // namespace dynvote
