// A minimal deterministic JSON tree, writer, and parser.
//
// The observability layer (src/obs/) exports traces and bench results as
// JSON, and the trace-replay checker reads them back. Determinism is a
// hard requirement — two runs with the same RNG seed must serialize to
// byte-identical output — so objects preserve insertion order (a sorted
// map would also be deterministic, but insertion order keeps the schema
// readable) and doubles are printed with a fixed shortest-round-trip
// format. The parser is bounds-checked and throws JsonError on malformed
// input; it exists so replay can work from the exported file alone.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynvote {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON value. Objects are ordered vectors of (key, value) pairs;
/// duplicate keys are not rejected but lookup returns the first match.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}
  JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  JsonValue(std::string_view v) : kind_(Kind::kString), string_(v) {}
  JsonValue(const char* v) : kind_(Kind::kString), string_(v) {}
  JsonValue(Array v) : kind_(Kind::kArray), array_(std::move(v)) {}
  JsonValue(Object v) : kind_(Kind::kObject), object_(std::move(v)) {}

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  // Checked accessors — throw JsonError on kind mismatch (numbers convert
  // between signed/unsigned/double when the value fits).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Appends to an array value.
  void push_back(JsonValue v);
  /// Appends a key to an object value (no de-duplication).
  void set(std::string key, JsonValue v);

  /// First value under `key`, or nullptr if absent / not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// First value under `key`; throws JsonError if absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Compact serialization (no whitespace). Deterministic: preserves
  /// object insertion order, fixed number formatting.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with two-space indentation (still deterministic).
  [[nodiscard]] std::string dump_pretty() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static JsonValue parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `s` into a quoted JSON string literal appended to `out`.
void json_escape(std::string& out, std::string_view s);

}  // namespace dynvote
