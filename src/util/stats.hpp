// Summary statistics for benchmark output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dynvote {

/// Accumulates samples and reports the usual summary statistics.
/// Percentiles use linear interpolation between closest ranks.
class Summary {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// q in [0, 1].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Formats a double with the given precision, trimming trailing zeros is
/// deliberately *not* done so table columns stay aligned.
[[nodiscard]] std::string format_double(double value, int precision = 2);

/// Formats a ratio as a percentage string, e.g. "93.41%".
[[nodiscard]] std::string format_percent(double ratio, int precision = 2);

}  // namespace dynvote
