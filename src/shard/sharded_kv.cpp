#include "shard/sharded_kv.hpp"

#include "util/ensure.hpp"

namespace dynvote::shard {

ShardedKv::ShardedKv(ShardedFleet& fleet)
    : fleet_(fleet), map_(fleet.num_groups()) {
  replicas_.resize(fleet_.num_groups());
  for (std::uint32_t g = 0; g < fleet_.num_groups(); ++g) {
    replicas_[g].reserve(fleet_.group_size());
    for (std::uint32_t i = 0; i < fleet_.group_size(); ++i) {
      replicas_[g].push_back(
          std::make_unique<app::Replica>(fleet_.service(g, i)));
    }
  }
}

app::Replica* ShardedKv::primary_replica(std::uint32_t group) const {
  for (const auto& replica : replicas_[group]) {
    if (replica->in_primary()) return replica.get();
  }
  return nullptr;
}

std::optional<app::Version> ShardedKv::write(const std::string& key,
                                             std::string value) {
  app::Replica* replica = primary_replica(group_of(key));
  if (replica == nullptr) {
    ++rejected_;
    return std::nullopt;
  }
  auto version = replica->write(key, std::move(value));
  if (version) ++accepted_;
  return version;
}

std::optional<std::string> ShardedKv::read(const std::string& key) const {
  const app::Replica* replica = primary_replica(group_of(key));
  if (replica == nullptr) return std::nullopt;
  return replica->read(key);
}

app::Replica& ShardedKv::replica(std::uint32_t group, std::uint32_t index) {
  ensure(group < replicas_.size() && index < replicas_[group].size(),
         "replica out of range");
  return *replicas_[group][index];
}

void ShardedKv::sync_primaries() {
  for (auto& group : replicas_) {
    // All-pairs inside the (small) primary membership: after one round
    // every member holds the per-key maximum version.
    for (auto& target : group) {
      if (!target->in_primary()) continue;
      for (const auto& donor : group) {
        if (donor.get() == target.get() || !donor->in_primary()) continue;
        target->sync_from(*donor);
      }
    }
  }
}

std::vector<app::Divergence> ShardedKv::audit() const {
  std::vector<app::Divergence> out;
  for (const auto& group : replicas_) {
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        for (const auto& [key, mine] : group[a]->data()) {
          const auto& theirs_map = group[b]->data();
          const auto it = theirs_map.find(key);
          if (it == theirs_map.end()) continue;
          if (mine.version == it->second.version &&
              mine.value != it->second.value) {
            out.push_back(app::Divergence{
                key, group[a]->process(), group[b]->process(),
                "same version " + mine.version.to_string() +
                    " with different values (split-brain stamp)"});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dynvote::shard
