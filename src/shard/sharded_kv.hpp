// ShardedKv: the replicated key-value store spread over many groups.
//
// The paper's intended integration (app/replicated_kv) binds one
// primary-copy replica group to one primary-component service; this
// layer runs one such group per key range: a ShardMap routes each key to
// a group of the ShardedFleet, and the group's app::Replica instances
// accept the write iff that group currently has a primary component.
//
// The guarantee is exactly the per-group one — writes to one key range
// are totally ordered by that range's primary components — and the
// audit checks it per group: with a consistent protocol no two replicas
// of a group ever hold the same version stamp with different values, no
// matter how many correlated fleet faults hit all groups at once.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/replicated_kv.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_fleet.hpp"

namespace dynvote::shard {

class ShardedKv {
 public:
  /// One replica per (group, member) of the fleet; routes by a ShardMap
  /// over the fleet's group count. The fleet outlives the store.
  explicit ShardedKv(ShardedFleet& fleet);

  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }

  /// The group (= shard) serving `key`.
  [[nodiscard]] std::uint32_t group_of(const std::string& key) const {
    return map_.shard_of(key);
  }

  /// Writes through the first in-primary replica of the key's group;
  /// nullopt when the group currently has no primary (the shard is
  /// unavailable, not inconsistent).
  std::optional<app::Version> write(const std::string& key, std::string value);

  /// Reads from the first in-primary replica of the key's group.
  [[nodiscard]] std::optional<std::string> read(const std::string& key) const;

  [[nodiscard]] app::Replica& replica(std::uint32_t group,
                                      std::uint32_t index);

  /// State transfer inside every group's current primary component:
  /// member replicas converge to the highest version per key. Call after
  /// the fleet settles on new primaries.
  void sync_primaries();

  /// Split-brain audit over every group: two replicas of one group
  /// holding the same version of a key with different values means two
  /// primaries minted the same stamp. Consistent protocols produce none.
  [[nodiscard]] std::vector<app::Divergence> audit() const;

  [[nodiscard]] std::uint64_t accepted_writes() const noexcept {
    return accepted_;
  }
  [[nodiscard]] std::uint64_t rejected_writes() const noexcept {
    return rejected_;
  }

 private:
  [[nodiscard]] app::Replica* primary_replica(std::uint32_t group) const;

  ShardedFleet& fleet_;
  ShardMap map_;
  // replicas_[group][member index]
  std::vector<std::vector<std::unique_ptr<app::Replica>>> replicas_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dynvote::shard
