// ShardMap: deterministic key -> group routing for the sharded service.
//
// The production deployment the paper's service targets (ROADMAP north
// star) runs one primary-component group per key range. This map
// partitions the 64-bit hash space of keys into `num_shards` equal
// contiguous ranges; a key belongs to the shard whose range contains its
// routing hash. Range partitioning (rather than `hash % n`) keeps the
// mapping monotone in the hash, which is what lets shard counts be
// documented as key *ranges* and compared across configurations.
//
// Everything here is pure and deterministic: the same key maps to the
// same shard on every platform and every run.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

namespace dynvote::shard {

/// The routing hash: FNV-1a 64 followed by a 64-bit avalanche
/// finalizer. Raw FNV-1a values are numerically clustered for short
/// keys (the high bits barely move), which starves equal hash ranges;
/// the finalizer spreads keys uniformly across the 64-bit space.
/// Exposed so tests can pin routing expectations.
[[nodiscard]] std::uint64_t key_hash64(std::string_view data) noexcept;

class ShardMap {
 public:
  explicit ShardMap(std::uint32_t num_shards);

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return num_shards_;
  }

  /// The shard whose hash range contains `key`.
  [[nodiscard]] std::uint32_t shard_of(std::string_view key) const noexcept;

  /// The hash range [first, last] covered by `shard` (inclusive upper
  /// bound so the top shard can cover 2^64 - 1).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> range_of(
      std::uint32_t shard) const;

 private:
  std::uint32_t num_shards_;
};

}  // namespace dynvote::shard
