#include "shard/sharded_fleet.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"
#include "util/ensure.hpp"

namespace dynvote::shard {

/// Per-group observer that closes the group's open reconfiguration
/// window on the first formation after a fleet fault.
struct ShardedFleet::GroupFormationObserver final : ProtocolObserver {
  GroupFormationObserver(ShardedFleet* fleet, std::uint32_t group)
      : fleet(fleet), group(group) {}

  void on_formed(SimTime time, ProcessId, const Session&, int) override {
    fleet->note_formed(group, time);
  }

  ShardedFleet* fleet;
  std::uint32_t group;
};

ShardedFleet::~ShardedFleet() = default;

ShardedFleet::ShardedFleet(ShardedFleetOptions options)
    : options_(options), sim_(options.sim) {
  ensure(options_.num_groups > 0, "ShardedFleet: need at least one group");
  ensure(options_.group_size > 0, "ShardedFleet: need group_size >= 1");
  ensure(options_.group_size <= options_.num_machines,
         "ShardedFleet: a group's replicas must fit on distinct machines");
  sim_.trace().set_capacity(options_.trace_capacity);
  machine_replicas_.resize(options_.num_machines);

  if (options_.telemetry.enabled) {
    hub_ = std::make_unique<obs::MetricsHub>(options_.num_groups);
    flight_ = std::make_unique<obs::FlightRecorder>(obs::FlightRecorderOptions{
        options_.num_groups, options_.group_size,
        options_.telemetry.flight_recorder_capacity});
    sim_.trace().set_flight_recorder(flight_.get());
  } else {
    metrics_observer_ = std::make_unique<MetricsObserver>(sim_.metrics());
  }

  groups_.reserve(options_.num_groups);
  for (std::uint32_t g = 0; g < options_.num_groups; ++g) {
    Group group;
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      const ProcessId p = replica_id(g, i);
      group.members.insert(p);
      machine_replicas_[machine_of(g, i)].push_back(p);
    }
    group.checker = std::make_unique<ConsistencyChecker>(
        group.members,
        /*seed_initial=*/options_.kind != ProtocolKind::kStaticMajority);
    group.formation_observer =
        std::make_unique<GroupFormationObserver>(this, g);
    group.observers = std::make_unique<MultiObserver>();
    group.observers->add(group.checker.get());
    group.observers->add(group.formation_observer.get());

    DvConfig config;
    config.core = group.members;
    config.min_quorum = options_.min_quorum;
    config.persistence.cross_check = options_.persistence_cross_check;
    if (hub_ != nullptr) {
      // Attributable telemetry: this group's protocol events and WAL
      // counters land in its own hub child, not the fleet-global pile.
      obs::MetricsRegistry& registry = hub_->group(g);
      group.metrics = std::make_unique<MetricsObserver>(registry);
      group.observers->add(group.metrics.get());
      group.reconfig_hist = &registry.histogram("shard.reconfig_latency_ticks");
      group.reconfigs = &registry.counter("shard.reconfigs");
      config.registry = &registry;
    } else {
      group.observers->add(metrics_observer_.get());
    }
    for (ProcessId p : group.members) {
      auto node = make_protocol(options_.kind, sim_.transport(), p, config);
      node->set_observer(group.observers.get());
      sim_.add_node(std::move(node));
    }
    groups_.push_back(std::move(group));
  }
  if (hub_ != nullptr) {
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        *hub_, obs::TimeSeriesOptions{options_.telemetry.timeseries_tick,
                                      options_.telemetry.timeseries_capacity});
    sampler_->track_counter("dv.formed");
    sampler_->track_counter("dv.rejected");
    sampler_->track_counter("dv.storage.wal_bytes");
    sampler_->track_gauge("dv.ambiguous_recorded");
  }
  // The oracle must subscribe after every node exists, so each view it
  // announces finds a registered receiver.
  oracle_ = std::make_unique<MembershipOracle>(sim_, options_.membership);
}

ProcessId ShardedFleet::replica_id(std::uint32_t group,
                                   std::uint32_t index) const {
  ensure(group < options_.num_groups && index < options_.group_size,
         "replica_id out of range");
  return ProcessId{group * options_.group_size + index};
}

std::uint32_t ShardedFleet::machine_of(std::uint32_t group,
                                       std::uint32_t index) const {
  // Rotating placement: member i of group g lands on machine (g + i) mod
  // M. Within one group the machines are distinct (group_size <= M), and
  // consecutive groups are shifted by one, so any machine cut splits
  // different groups at different member offsets — the correlated but
  // non-identical failure pattern a real fleet produces.
  return (group + index) % options_.num_machines;
}

const ProcessSet& ShardedFleet::group_members(std::uint32_t group) const {
  ensure(group < groups_.size(), "group out of range");
  return groups_[group].members;
}

const std::vector<ProcessId>& ShardedFleet::machine_replicas(
    std::uint32_t machine) const {
  ensure(machine < machine_replicas_.size(), "machine out of range");
  return machine_replicas_[machine];
}

void ShardedFleet::start() {
  merge_fleet();
  settle();
}

void ShardedFleet::partition_fleet(const MachinePartition& sides) {
  std::vector<bool> seen(options_.num_machines, false);
  std::size_t covered = 0;
  for (const auto& side : sides) {
    for (const std::uint32_t m : side) {
      ensure(m < options_.num_machines, "partition_fleet: unknown machine");
      ensure(!seen[m], "partition_fleet: machine on two sides");
      seen[m] = true;
      ++covered;
    }
  }
  ensure(covered == options_.num_machines,
         "partition_fleet: sides must cover every machine");

  // side_of[machine] -> side index.
  std::vector<std::uint32_t> side_of(options_.num_machines, 0);
  for (std::uint32_t s = 0; s < sides.size(); ++s) {
    for (const std::uint32_t m : sides[s]) side_of[m] = s;
  }

  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    std::vector<ProcessSet> components(sides.size());
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      components[side_of[machine_of(g, i)]].insert(replica_id(g, i));
    }
    for (ProcessSet& component : components) {
      if (!component.empty()) per_group[g].push_back(std::move(component));
    }
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::merge_fleet() {
  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    per_group[g].push_back(groups_[g].members);
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::apply_components(
    std::vector<std::vector<ProcessSet>> per_group) {
  // One network call for the whole correlated fault: every group's
  // components land in the same topology change, exactly as one fleet
  // event would. Components never span groups, so the shared oracle
  // announces views drawn from single groups only.
  std::vector<ProcessSet> all;
  for (const auto& components : per_group) {
    all.insert(all.end(), components.begin(), components.end());
  }
  const SimTime now = sim_.now();
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].last_components != per_group[g]) {
      groups_[g].reconfig_pending_since = now;
      groups_[g].last_components = std::move(per_group[g]);
    }
  }
  sim_.set_components(all);
}

void ShardedFleet::mark_groups_on_machine_pending(std::uint32_t machine) {
  const SimTime now = sim_.now();
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      if (machine_of(g, i) == machine) {
        groups_[g].reconfig_pending_since = now;
        break;
      }
    }
  }
}

void ShardedFleet::crash_machine(std::uint32_t machine) {
  ensure(machine < options_.num_machines, "unknown machine");
  mark_groups_on_machine_pending(machine);
  for (const ProcessId p : machine_replicas_[machine]) sim_.crash(p);
}

void ShardedFleet::recover_machine(std::uint32_t machine) {
  ensure(machine < options_.num_machines, "unknown machine");
  mark_groups_on_machine_pending(machine);
  for (const ProcessId p : machine_replicas_[machine]) sim_.recover(p);
  // A recovered replica comes back in its own singleton component;
  // reapply every group's intended layout so it rejoins its group
  // (unchanged groups diff equal and stay out of the latency sample).
  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    per_group[g] = groups_[g].last_components;
    if (per_group[g].empty()) per_group[g].push_back(groups_[g].members);
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::settle(std::size_t max_events) {
  sim_.run_to_quiescence(max_events);
  ensure(sim_.queue().empty(),
         "settle: event budget exhausted with events still pending "
         "(runaway schedule)");
  // Opportunistic sampling: settle() brackets every fault in a fleet
  // scenario, and the sampler's own tick spacing bounds retention.
  if (sampler_ != nullptr) sampler_->sample(sim_.now());
}

ProtocolNode& ShardedFleet::protocol(std::uint32_t group,
                                     std::uint32_t index) {
  auto* node = dynamic_cast<ProtocolNode*>(&sim_.node(replica_id(group, index)));
  ensure(node != nullptr, "node is not a protocol instance");
  return *node;
}

ConsistencyChecker& ShardedFleet::checker(std::uint32_t group) {
  ensure(group < groups_.size(), "group out of range");
  return *groups_[group].checker;
}

std::uint64_t ShardedFleet::total_formed_sessions() const {
  std::uint64_t total = 0;
  for (const Group& group : groups_) {
    total += group.checker->formed_session_count();
  }
  return total;
}

std::uint32_t ShardedFleet::groups_with_live_primary() {
  std::uint32_t count = 0;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      const ProcessId p = replica_id(g, i);
      if (sim_.network().alive(p) && protocol(g, i).is_primary()) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<Violation> ShardedFleet::check_all_groups(
    std::size_t order_check_limit) const {
  std::vector<Violation> out;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (Violation v : groups_[g].checker->check_all(order_check_limit)) {
      v.detail = "group " + std::to_string(g) + ": " + v.detail;
      out.push_back(std::move(v));
    }
  }
  return out;
}

void ShardedFleet::note_formed(std::uint32_t group, SimTime time) {
  Group& g = groups_[group];
  if (!g.reconfig_pending_since) return;
  const SimTime fault = *g.reconfig_pending_since;
  const SimTime ticks = time - fault;
  reconfig_latencies_.push_back(static_cast<double>(ticks));
  g.reconfig_pending_since.reset();
  if (hub_ == nullptr) return;
  g.reconfig_hist->observe(ticks);
  g.reconfigs->add(1);
  reconfig_samples_.push_back(ReconfigSample{group, fault, time});
  if (options_.telemetry.reconfig_outlier_ticks != 0 &&
      ticks > options_.telemetry.reconfig_outlier_ticks &&
      postmortems_.size() < options_.telemetry.max_postmortems) {
    postmortems_.push_back(flight_->postmortem_json(
        group,
        "reconfig-latency-outlier: " + std::to_string(ticks) + " ticks (> " +
            std::to_string(options_.telemetry.reconfig_outlier_ticks) + ")",
        time));
  }
}

obs::MetricsHub& ShardedFleet::hub() {
  ensure(hub_ != nullptr, "ShardedFleet: telemetry is disabled");
  return *hub_;
}

const obs::MetricsHub& ShardedFleet::hub() const {
  ensure(hub_ != nullptr, "ShardedFleet: telemetry is disabled");
  return *hub_;
}

const obs::FlightRecorder& ShardedFleet::flight_recorder() const {
  ensure(flight_ != nullptr, "ShardedFleet: telemetry is disabled");
  return *flight_;
}

std::size_t ShardedFleet::check_and_record_postmortems(
    std::size_t order_check_limit) {
  ensure(flight_ != nullptr, "ShardedFleet: telemetry is disabled");
  std::size_t recorded = 0;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    const std::vector<Violation> violations =
        groups_[g].checker->check_all(order_check_limit);
    if (violations.empty()) continue;
    if (postmortems_.size() >= options_.telemetry.max_postmortems) break;
    postmortems_.push_back(flight_->postmortem_json(
        g,
        "consistency-violation " + violations.front().kind + ": " +
            violations.front().detail,
        sim_.now()));
    ++recorded;
  }
  return recorded;
}

JsonValue ShardedFleet::telemetry_json() const {
  ensure(hub_ != nullptr, "ShardedFleet: telemetry is disabled");
  JsonValue out = JsonValue::object();
  out.reserve(11);
  out.set("schema_version",
          JsonValue(static_cast<std::int64_t>(kFleetTelemetrySchemaVersion)));
  out.set("num_groups",
          JsonValue(static_cast<std::uint64_t>(options_.num_groups)));
  out.set("group_size",
          JsonValue(static_cast<std::uint64_t>(options_.group_size)));
  out.set("num_machines",
          JsonValue(static_cast<std::uint64_t>(options_.num_machines)));
  out.set("protocol", JsonValue(to_string(options_.kind)));
  out.set("rollup", hub_->rollup().to_json());

  JsonValue groups = JsonValue::array();
  groups.reserve(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    groups.push_back(hub_->group(g).to_json());
  }
  out.set("groups", std::move(groups));

  // Top-k slowest reconfigurations, latency-descending with formation
  // order as the tie-break (stable_sort over the formation-ordered
  // samples), so the ranking is deterministic.
  std::vector<std::size_t> order(reconfig_samples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return reconfig_samples_[a].latency() >
                            reconfig_samples_[b].latency();
                   });
  constexpr std::size_t kTopK = 8;
  if (order.size() > kTopK) order.resize(kTopK);
  JsonValue slowest = JsonValue::array();
  slowest.reserve(order.size());
  for (const std::size_t i : order) {
    const ReconfigSample& s = reconfig_samples_[i];
    JsonValue entry = JsonValue::object();
    entry.reserve(4);
    entry.set("group", JsonValue(static_cast<std::uint64_t>(s.group)));
    entry.set("fault_time", JsonValue(s.fault_time));
    entry.set("formed_time", JsonValue(s.formed_time));
    entry.set("latency_ticks", JsonValue(s.latency()));
    slowest.push_back(std::move(entry));
  }
  out.set("slowest_reconfigs", std::move(slowest));

  out.set("timeseries", sampler_->to_json());

  JsonValue postmortems = JsonValue::array();
  postmortems.reserve(postmortems_.size());
  for (const JsonValue& pm : postmortems_) postmortems.push_back(pm);
  out.set("postmortems", std::move(postmortems));
  return out;
}

}  // namespace dynvote::shard
