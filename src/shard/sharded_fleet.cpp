#include "shard/sharded_fleet.hpp"

#include <utility>

#include "util/ensure.hpp"

namespace dynvote::shard {

/// Per-group observer that closes the group's open reconfiguration
/// window on the first formation after a fleet fault.
struct ShardedFleet::GroupFormationObserver final : ProtocolObserver {
  GroupFormationObserver(ShardedFleet* fleet, std::uint32_t group)
      : fleet(fleet), group(group) {}

  void on_formed(SimTime time, ProcessId, const Session&, int) override {
    fleet->note_formed(group, time);
  }

  ShardedFleet* fleet;
  std::uint32_t group;
};

ShardedFleet::~ShardedFleet() = default;

ShardedFleet::ShardedFleet(ShardedFleetOptions options)
    : options_(options), sim_(options.sim) {
  ensure(options_.num_groups > 0, "ShardedFleet: need at least one group");
  ensure(options_.group_size > 0, "ShardedFleet: need group_size >= 1");
  ensure(options_.group_size <= options_.num_machines,
         "ShardedFleet: a group's replicas must fit on distinct machines");
  sim_.trace().set_capacity(options_.trace_capacity);
  metrics_observer_ = std::make_unique<MetricsObserver>(sim_.metrics());
  machine_replicas_.resize(options_.num_machines);

  groups_.reserve(options_.num_groups);
  for (std::uint32_t g = 0; g < options_.num_groups; ++g) {
    Group group;
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      const ProcessId p = replica_id(g, i);
      group.members.insert(p);
      machine_replicas_[machine_of(g, i)].push_back(p);
    }
    group.checker = std::make_unique<ConsistencyChecker>(
        group.members,
        /*seed_initial=*/options_.kind != ProtocolKind::kStaticMajority);
    group.formation_observer =
        std::make_unique<GroupFormationObserver>(this, g);
    group.observers = std::make_unique<MultiObserver>();
    group.observers->add(group.checker.get());
    group.observers->add(group.formation_observer.get());
    group.observers->add(metrics_observer_.get());

    DvConfig config;
    config.core = group.members;
    config.min_quorum = options_.min_quorum;
    config.persistence.cross_check = options_.persistence_cross_check;
    for (ProcessId p : group.members) {
      auto node = make_protocol(options_.kind, sim_, p, config);
      node->set_observer(group.observers.get());
      sim_.add_node(std::move(node));
    }
    groups_.push_back(std::move(group));
  }
  // The oracle must subscribe after every node exists, so each view it
  // announces finds a registered receiver.
  oracle_ = std::make_unique<MembershipOracle>(sim_, options_.membership);
}

ProcessId ShardedFleet::replica_id(std::uint32_t group,
                                   std::uint32_t index) const {
  ensure(group < options_.num_groups && index < options_.group_size,
         "replica_id out of range");
  return ProcessId{group * options_.group_size + index};
}

std::uint32_t ShardedFleet::machine_of(std::uint32_t group,
                                       std::uint32_t index) const {
  // Rotating placement: member i of group g lands on machine (g + i) mod
  // M. Within one group the machines are distinct (group_size <= M), and
  // consecutive groups are shifted by one, so any machine cut splits
  // different groups at different member offsets — the correlated but
  // non-identical failure pattern a real fleet produces.
  return (group + index) % options_.num_machines;
}

const ProcessSet& ShardedFleet::group_members(std::uint32_t group) const {
  ensure(group < groups_.size(), "group out of range");
  return groups_[group].members;
}

const std::vector<ProcessId>& ShardedFleet::machine_replicas(
    std::uint32_t machine) const {
  ensure(machine < machine_replicas_.size(), "machine out of range");
  return machine_replicas_[machine];
}

void ShardedFleet::start() {
  merge_fleet();
  settle();
}

void ShardedFleet::partition_fleet(const MachinePartition& sides) {
  std::vector<bool> seen(options_.num_machines, false);
  std::size_t covered = 0;
  for (const auto& side : sides) {
    for (const std::uint32_t m : side) {
      ensure(m < options_.num_machines, "partition_fleet: unknown machine");
      ensure(!seen[m], "partition_fleet: machine on two sides");
      seen[m] = true;
      ++covered;
    }
  }
  ensure(covered == options_.num_machines,
         "partition_fleet: sides must cover every machine");

  // side_of[machine] -> side index.
  std::vector<std::uint32_t> side_of(options_.num_machines, 0);
  for (std::uint32_t s = 0; s < sides.size(); ++s) {
    for (const std::uint32_t m : sides[s]) side_of[m] = s;
  }

  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    std::vector<ProcessSet> components(sides.size());
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      components[side_of[machine_of(g, i)]].insert(replica_id(g, i));
    }
    for (ProcessSet& component : components) {
      if (!component.empty()) per_group[g].push_back(std::move(component));
    }
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::merge_fleet() {
  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    per_group[g].push_back(groups_[g].members);
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::apply_components(
    std::vector<std::vector<ProcessSet>> per_group) {
  // One network call for the whole correlated fault: every group's
  // components land in the same topology change, exactly as one fleet
  // event would. Components never span groups, so the shared oracle
  // announces views drawn from single groups only.
  std::vector<ProcessSet> all;
  for (const auto& components : per_group) {
    all.insert(all.end(), components.begin(), components.end());
  }
  const SimTime now = sim_.now();
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].last_components != per_group[g]) {
      groups_[g].reconfig_pending_since = now;
      groups_[g].last_components = std::move(per_group[g]);
    }
  }
  sim_.set_components(all);
}

void ShardedFleet::mark_groups_on_machine_pending(std::uint32_t machine) {
  const SimTime now = sim_.now();
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      if (machine_of(g, i) == machine) {
        groups_[g].reconfig_pending_since = now;
        break;
      }
    }
  }
}

void ShardedFleet::crash_machine(std::uint32_t machine) {
  ensure(machine < options_.num_machines, "unknown machine");
  mark_groups_on_machine_pending(machine);
  for (const ProcessId p : machine_replicas_[machine]) sim_.crash(p);
}

void ShardedFleet::recover_machine(std::uint32_t machine) {
  ensure(machine < options_.num_machines, "unknown machine");
  mark_groups_on_machine_pending(machine);
  for (const ProcessId p : machine_replicas_[machine]) sim_.recover(p);
  // A recovered replica comes back in its own singleton component;
  // reapply every group's intended layout so it rejoins its group
  // (unchanged groups diff equal and stay out of the latency sample).
  std::vector<std::vector<ProcessSet>> per_group(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    per_group[g] = groups_[g].last_components;
    if (per_group[g].empty()) per_group[g].push_back(groups_[g].members);
  }
  apply_components(std::move(per_group));
}

void ShardedFleet::settle(std::size_t max_events) {
  sim_.run_to_quiescence(max_events);
  ensure(sim_.queue().empty(),
         "settle: event budget exhausted with events still pending "
         "(runaway schedule)");
}

ProtocolNode& ShardedFleet::protocol(std::uint32_t group,
                                     std::uint32_t index) {
  auto* node = dynamic_cast<ProtocolNode*>(&sim_.node(replica_id(group, index)));
  ensure(node != nullptr, "node is not a protocol instance");
  return *node;
}

ConsistencyChecker& ShardedFleet::checker(std::uint32_t group) {
  ensure(group < groups_.size(), "group out of range");
  return *groups_[group].checker;
}

std::uint64_t ShardedFleet::total_formed_sessions() const {
  std::uint64_t total = 0;
  for (const Group& group : groups_) {
    total += group.checker->formed_session_count();
  }
  return total;
}

std::uint32_t ShardedFleet::groups_with_live_primary() {
  std::uint32_t count = 0;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (std::uint32_t i = 0; i < options_.group_size; ++i) {
      const ProcessId p = replica_id(g, i);
      if (sim_.network().alive(p) && protocol(g, i).is_primary()) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<Violation> ShardedFleet::check_all_groups(
    std::size_t order_check_limit) const {
  std::vector<Violation> out;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (Violation v : groups_[g].checker->check_all(order_check_limit)) {
      v.detail = "group " + std::to_string(g) + ": " + v.detail;
      out.push_back(std::move(v));
    }
  }
  return out;
}

void ShardedFleet::note_formed(std::uint32_t group, SimTime time) {
  Group& g = groups_[group];
  if (!g.reconfig_pending_since) return;
  reconfig_latencies_.push_back(
      static_cast<double>(time - *g.reconfig_pending_since));
  g.reconfig_pending_since.reset();
}

}  // namespace dynvote::shard
