#include "shard/shard_map.hpp"

#include "util/ensure.hpp"

namespace dynvote::shard {

namespace {

/// ceil(s * 2^32 / n) in plain 64-bit arithmetic: the smallest value of
/// the hash's top 32 bits that lands in shard s.
std::uint64_t first_top_of(std::uint64_t s, std::uint32_t n) {
  const std::uint64_t scaled = s << 32;
  return scaled / n + (scaled % n != 0 ? 1 : 0);
}

}  // namespace

std::uint64_t key_hash64(std::string_view data) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  // Avalanche finalizer (xor-shift / multiply): without it, short keys
  // leave the high bits of FNV-1a nearly constant and whole hash ranges
  // receive no keys at all.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

ShardMap::ShardMap(std::uint32_t num_shards) : num_shards_(num_shards) {
  ensure(num_shards_ > 0, "ShardMap: need at least one shard");
}

std::uint32_t ShardMap::shard_of(std::string_view key) const noexcept {
  // Scale the hash's top 32 bits into [0, num_shards): monotone in the
  // hash, so shard boundaries are the equal division points of the hash
  // space (at 2^32 granularity), and no 128-bit arithmetic is needed.
  const std::uint64_t top = key_hash64(key) >> 32;
  return static_cast<std::uint32_t>((top * num_shards_) >> 32);
}

std::pair<std::uint64_t, std::uint64_t> ShardMap::range_of(
    std::uint32_t shard) const {
  ensure(shard < num_shards_, "ShardMap: shard out of range");
  const std::uint64_t first = first_top_of(shard, num_shards_) << 32;
  const std::uint64_t last =
      shard + 1 == num_shards_
          ? ~std::uint64_t{0}
          : (first_top_of(shard + 1, num_shards_) << 32) - 1;
  return {first, last};
}

}  // namespace dynvote::shard
