// ShardedFleet: many primary-component groups over one shared simulator.
//
// The paper maintains one consistent primary component per group; a
// deployment (ROADMAP north star, open item 1) runs hundreds of such
// groups — one per key range — over a shared fleet of machines, each
// machine participating in many groups at once. This class is that
// composition root:
//
//   * one sim::Simulator carries every group's traffic and one
//     MembershipOracle serves them all — the oracle announces views per
//     changed component, and fleet faults are always translated to
//     per-group component lists, so a component never spans groups and
//     every view a protocol node sees is drawn from its own group;
//   * each group is an independent protocol instance set (one
//     ProtocolNode per replica, its own DvConfig core and its own
//     ConsistencyChecker) — the consistency guarantee is per group, the
//     simulation substrate is shared;
//   * a *machine* hosts one replica of every group placed on it; fleet
//     faults (partition, crash) hit machines, and therefore hit all
//     hosted groups at once — the correlated-failure regime the
//     multi-group evaluations in PAPERS.md use;
//   * replica ProcessIds are assigned densely in registration order
//     (group-major), which keeps ProcessSet bitset widths proportional
//     to the fleet size and the network's compact-slot tables exact.
//
// Reconfiguration latency: whenever a fleet fault changes a group's
// component layout, the group is marked pending; the first subsequent
// session formation in that group closes the window and records
// (formation time - fault time) as one latency sample. bench_shards
// reports the p99 of these samples across all groups and seeds.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dv/service.hpp"
#include "harness/checker.hpp"
#include "harness/events.hpp"
#include "membership/membership_oracle.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace dynvote::obs {
class FlightRecorder;
class MetricsHub;
class TimeSeriesSampler;
}  // namespace dynvote::obs

namespace dynvote::shard {

/// Version stamped into telemetry_json(); bump on any incompatible
/// change to the fleet-telemetry payload shape.
/// v2: exported histograms carry explicit "unit" metadata
/// ("ticks" | "ns" | "us" | "bytes", inferred from the _<unit> name
/// suffix) so consumers stop guessing units from names.
inline constexpr int kFleetTelemetrySchemaVersion = 2;

/// The fleet-scale telemetry layer (obs/hub, obs/timeseries,
/// obs/flight_recorder) wired through a ShardedFleet. Telemetry never
/// perturbs the simulation: enabled or not, the event schedule and every
/// protocol decision are identical (bench_shards asserts digest equality
/// between modes and measures the overhead against a 5% budget).
struct FleetTelemetryOptions {
  bool enabled = true;
  /// Sim-time spacing of retained time-series samples (microticks).
  SimTime timeseries_tick = 2'000;
  /// Ring bound on retained time-series samples.
  std::size_t timeseries_capacity = 512;
  /// Per-group flight-recorder ring bound (protocol events only).
  std::size_t flight_recorder_capacity = 64;
  /// Reconfiguration latency (ticks) above which the group's flight
  /// recorder dumps an outlier post-mortem. 0 = no outlier capture.
  SimTime reconfig_outlier_ticks = 0;
  /// Cap on post-mortems retained per run (outliers + violations).
  std::size_t max_postmortems = 16;
};

struct ShardedFleetOptions {
  /// Number of independent primary-component groups (= shards).
  std::uint32_t num_groups = 16;
  /// Replicas per group. Must not exceed num_machines, so a group's
  /// replicas land on distinct machines.
  std::uint32_t group_size = 3;
  /// Physical hosts. Fleet faults (partitions, crashes) are expressed in
  /// machines; every group with replicas on both sides of a cut splits.
  std::uint32_t num_machines = 8;
  ProtocolKind kind = ProtocolKind::kOptimized;
  /// Min_Quorum applied to every group's DvConfig.
  std::size_t min_quorum = 1;
  sim::SimulatorOptions sim;
  MembershipOptions membership;
  /// Ring-buffer capacity of the structured trace. Bounded by default:
  /// every fleet fault records one topology event per live component,
  /// and a sharded fleet has hundreds of those.
  std::size_t trace_capacity = 4096;
  /// Debug replay audit of the persistence layer (expensive; off for
  /// fleet-scale runs, bench_persistence measures its cost).
  bool persistence_cross_check = false;
  FleetTelemetryOptions telemetry;
};

class ShardedFleet {
 public:
  /// A fleet-level partition: disjoint sets of machine indices. Must
  /// cover every machine exactly once (so the induced per-group
  /// component lists are total and deterministic).
  using MachinePartition = std::vector<std::vector<std::uint32_t>>;

  explicit ShardedFleet(ShardedFleetOptions options);
  ~ShardedFleet();  // out of line: GroupFormationObserver is incomplete here

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return options_.num_groups;
  }
  [[nodiscard]] std::uint32_t group_size() const noexcept {
    return options_.group_size;
  }
  [[nodiscard]] std::uint32_t num_machines() const noexcept {
    return options_.num_machines;
  }
  /// Total replica processes (= num_groups * group_size).
  [[nodiscard]] std::uint32_t fleet_n() const noexcept {
    return options_.num_groups * options_.group_size;
  }

  // -- topology of the fleet ---------------------------------------------------

  /// The replica ProcessId of member `index` of `group`.
  [[nodiscard]] ProcessId replica_id(std::uint32_t group,
                                     std::uint32_t index) const;
  /// The machine hosting member `index` of `group`.
  [[nodiscard]] std::uint32_t machine_of(std::uint32_t group,
                                         std::uint32_t index) const;
  [[nodiscard]] const ProcessSet& group_members(std::uint32_t group) const;
  /// All replicas hosted on `machine`, across groups.
  [[nodiscard]] const std::vector<ProcessId>& machine_replicas(
      std::uint32_t machine) const;

  // -- fleet faults ------------------------------------------------------------

  /// Connects every group into one component and settles: the usual way
  /// to start (never merges across groups).
  void start();

  /// Applies a machine-level cut: every group is split into one
  /// component per side that hosts at least one of its replicas.
  void partition_fleet(const MachinePartition& sides);

  /// Heals the fleet: every group back to one full component.
  void merge_fleet();

  void crash_machine(std::uint32_t machine);
  void recover_machine(std::uint32_t machine);

  /// Runs until no events remain; throws if the event budget trips.
  void settle(std::size_t max_events = sim::EventQueue::kDefaultMaxEvents);

  // -- queries -----------------------------------------------------------------

  [[nodiscard]] ProtocolNode& protocol(std::uint32_t group,
                                       std::uint32_t index);
  [[nodiscard]] PrimaryComponentService service(std::uint32_t group,
                                                std::uint32_t index) {
    return PrimaryComponentService(protocol(group, index));
  }
  [[nodiscard]] ConsistencyChecker& checker(std::uint32_t group);

  /// Distinct formed sessions summed over all groups.
  [[nodiscard]] std::uint64_t total_formed_sessions() const;

  /// Groups that currently have at least one member with Is_Primary.
  [[nodiscard]] std::uint32_t groups_with_live_primary();

  /// Consistency violations across all groups, each prefixed with its
  /// group id. Empty for the consistent protocols, always.
  [[nodiscard]] std::vector<Violation> check_all_groups(
      std::size_t order_check_limit = 400) const;

  /// Reconfiguration-latency samples (virtual ticks), in the order the
  /// formations closed them. Deterministic for a fixed seed.
  [[nodiscard]] const std::vector<double>& reconfig_latencies() const noexcept {
    return reconfig_latencies_;
  }

  // -- telemetry ---------------------------------------------------------------

  /// One closed reconfiguration window, attributable to its group (the
  /// latency in reconfig_latencies() loses the group id).
  struct ReconfigSample {
    std::uint32_t group = 0;
    SimTime fault_time = 0;
    SimTime formed_time = 0;
    [[nodiscard]] SimTime latency() const noexcept {
      return formed_time - fault_time;
    }
  };

  [[nodiscard]] bool telemetry_enabled() const noexcept {
    return hub_ != nullptr;
  }
  /// The per-group metrics hub. Requires options.telemetry.enabled.
  [[nodiscard]] obs::MetricsHub& hub();
  [[nodiscard]] const obs::MetricsHub& hub() const;
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const;

  /// Reconfiguration samples with group attribution, formation order.
  [[nodiscard]] const std::vector<ReconfigSample>& reconfig_samples()
      const noexcept {
    return reconfig_samples_;
  }

  /// Runs every group's consistency check; each violating group dumps
  /// its flight-recorder ring as a post-mortem (reason = the first
  /// violation), subject to the max_postmortems cap. Returns how many
  /// post-mortems were recorded. Requires telemetry.
  std::size_t check_and_record_postmortems(std::size_t order_check_limit = 400);

  /// Post-mortems recorded so far (latency outliers and violations).
  [[nodiscard]] const std::vector<JsonValue>& postmortems() const noexcept {
    return postmortems_;
  }

  /// The full fleet-telemetry document: shape, deterministic rollup,
  /// per-group registries, top-k slowest reconfigurations, time series,
  /// post-mortems. Byte-identical across runs of the same seed and at
  /// any DYNVOTE_THREADS. Requires telemetry.
  [[nodiscard]] JsonValue telemetry_json() const;

 private:
  friend struct GroupFormationObserver;

  struct GroupFormationObserver;

  struct Group {
    ProcessSet members;
    std::unique_ptr<ConsistencyChecker> checker;
    std::unique_ptr<GroupFormationObserver> formation_observer;
    std::unique_ptr<MultiObserver> observers;
    /// Telemetry mode: this group's protocol events land in its own hub
    /// child registry instead of the fleet-global one.
    std::unique_ptr<MetricsObserver> metrics;
    /// Cached hub-child instruments (telemetry mode only): formation
    /// closes a window on the protocol hot path.
    obs::Histogram* reconfig_hist = nullptr;
    obs::Counter* reconfigs = nullptr;
    /// Component layout last applied for this group (what the next
    /// fault is diffed against to detect a reconfiguration).
    std::vector<ProcessSet> last_components;
    std::optional<SimTime> reconfig_pending_since;
  };

  /// Applies per-group component lists in ONE network call (so one
  /// topology change covers the whole correlated fault) and opens a
  /// reconfiguration window for every group whose layout changed.
  void apply_components(std::vector<std::vector<ProcessSet>> per_group);
  void mark_groups_on_machine_pending(std::uint32_t machine);
  void note_formed(std::uint32_t group, SimTime time);

  ShardedFleetOptions options_;
  sim::Simulator sim_;
  /// Fleet-global MetricsObserver (non-telemetry mode only; telemetry
  /// mode gives every group its own, feeding its hub child).
  std::unique_ptr<MetricsObserver> metrics_observer_;
  std::unique_ptr<obs::MetricsHub> hub_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::vector<Group> groups_;
  std::vector<std::vector<ProcessId>> machine_replicas_;
  std::vector<double> reconfig_latencies_;
  std::vector<ReconfigSample> reconfig_samples_;
  std::vector<JsonValue> postmortems_;
  std::unique_ptr<MembershipOracle> oracle_;
};

}  // namespace dynvote::shard
