#include "obs/hub.hpp"

#include "util/ensure.hpp"

namespace dynvote::obs {

MetricsHub::MetricsHub(std::size_t num_groups) {
  ensure(num_groups > 0, "MetricsHub: need at least one group");
  groups_.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    groups_.push_back(std::make_unique<MetricsRegistry>());
  }
}

MetricsRegistry& MetricsHub::group(std::size_t group) {
  ensure(group < groups_.size(), "MetricsHub: group out of range");
  return *groups_[group];
}

const MetricsRegistry& MetricsHub::group(std::size_t group) const {
  ensure(group < groups_.size(), "MetricsHub: group out of range");
  return *groups_[group];
}

MetricsRegistry MetricsHub::rollup() const {
  MetricsRegistry out;
  for (const auto& child : groups_) out.merge_from(*child);
  return out;
}

std::uint64_t MetricsHub::group_counter_sum(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& child : groups_) total += child->counter_value(name);
  return total;
}

JsonValue MetricsHub::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("num_groups", JsonValue(std::uint64_t{groups_.size()}));
  out.set("rollup", rollup().to_json());
  JsonValue groups = JsonValue::array();
  groups.reserve(groups_.size());
  for (const auto& child : groups_) groups.push_back(child->to_json());
  out.set("groups", std::move(groups));
  return out;
}

}  // namespace dynvote::obs
