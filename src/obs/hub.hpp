// MetricsHub: per-group child registries with a deterministic rollup.
//
// A sharded fleet (shard/sharded_fleet.hpp) runs hundreds of independent
// primary-component groups; one flat MetricsRegistry can say "the fleet
// formed X quorums" but not *which shard* stalled. The hub owns one
// child registry per group, indexed by group id, so instrumented code
// resolves its group's registry once at wiring time and pays the usual
// cheap instrument-handle increments on the hot path.
//
// Rollup determinism: rollup() merges the children into a fresh registry
// strictly in group-index order — counters summed, gauges max-merged,
// histograms merged bucket-wise (so fleet p50/p99 come from merged
// buckets, not averaged percentiles). Group registries are only ever
// mutated by the simulation that owns them, and sweep-pool cells own
// their whole fleet, so the rolled-up JSON is byte-identical at any
// DYNVOTE_THREADS through the pool's index-order reduction.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace dynvote::obs {

class MetricsHub {
 public:
  explicit MetricsHub(std::size_t num_groups);

  [[nodiscard]] std::size_t num_groups() const noexcept {
    return groups_.size();
  }

  /// The child registry of `group`. References stay valid for the hub's
  /// lifetime (children are heap-allocated once, never reallocated).
  [[nodiscard]] MetricsRegistry& group(std::size_t group);
  [[nodiscard]] const MetricsRegistry& group(std::size_t group) const;

  /// Cross-group rollup, merged in group-index order: counters summed,
  /// gauges max-merged, histograms merged bucket-wise.
  [[nodiscard]] MetricsRegistry rollup() const;

  /// Sum of one counter across every group (0 where unregistered) —
  /// cheaper than a full rollup when one fleet total is needed.
  [[nodiscard]] std::uint64_t group_counter_sum(std::string_view name) const;

  /// {"num_groups": G, "rollup": {...}, "groups": [{...} per group]}.
  /// Deterministic: children serialize in index order, instruments in
  /// name order.
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::vector<std::unique_ptr<MetricsRegistry>> groups_;
};

}  // namespace dynvote::obs
