// Counters, gauges, and histograms for the simulator and protocol stack.
//
// MetricsRegistry replaces the ad-hoc counter structs that used to live
// in sim::Network and the harness: instrumented code asks the registry
// for a named instrument once (cheap name lookup at wiring time, plain
// integer increments on the hot path) and the harness/benches export the
// whole registry as JSON.
//
// Determinism: instruments live in a std::map keyed by name, so both
// iteration order and the JSON export are independent of registration
// order; node-based storage keeps instrument pointers stable across
// later registrations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace dynvote::obs {

/// A monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  void increment() noexcept { ++value_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

  /// Rollup semantics: counts from independent groups add up.
  void merge_from(const Counter& other) noexcept { value_ += other.value_; }

  friend bool operator==(const Counter&, const Counter&) = default;

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (e.g. currently recorded ambiguous sessions).
/// Tracks the maximum it ever held, which is what the Theorem-1 bound
/// constrains.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_ = value;
    if (value > max_) max_ = value;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  void reset() noexcept { value_ = 0; max_ = 0; }

  /// Rollup semantics: a fleet-level gauge reports the worst (highest)
  /// group, both for the current level and the high-water mark.
  void merge_from(const Gauge& other) noexcept {
    if (other.value_ > value_) value_ = other.value_;
    if (other.max_ > max_) max_ = other.max_;
  }

  friend bool operator==(const Gauge&, const Gauge&) = default;

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Quantile estimate over power-of-two buckets (the Histogram layout:
/// bucket 0 covers [0, 1], bucket i covers (2^(i-1), 2^i]) by linear
/// interpolation inside the bucket holding the target rank. Exposed as a
/// free function so offline consumers (dvtrace fleet) can recompute
/// quantiles from exported bucket counts without a Histogram instance.
/// `min`/`max` clamp the estimate to the observed range; `q` in [0, 1].
[[nodiscard]] double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                                        std::uint64_t count, std::uint64_t min,
                                        std::uint64_t max, double q);

/// A distribution summarized by count/sum/min/max plus fixed power-of-two
/// buckets (upper bounds 1, 2, 4, ... 2^62, +inf). Good enough for round
/// counts and latencies without per-metric configuration.
class Histogram {
 public:
  Histogram();

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest observed value; 0 while no observations exist (internally
  /// the no-observations state is the kNoMin sentinel, so merging an
  /// empty histogram never poisons the target's minimum).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// power-of-two bucket holding the target rank, clamped to the
  /// observed [min, max]. 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;

  /// Rollup semantics: the merged histogram is exactly the histogram of
  /// the concatenated sample streams — counts/sums add, buckets add
  /// element-wise, min/max extend (sentinel-aware, so empty sources are
  /// no-ops).
  void merge_from(const Histogram& other);

  void reset() noexcept;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  /// min_ while count_ == 0: any first observation is below it.
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = kNoMin;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;  // 64 entries; bucket i counts
                                        // values v with 2^(i-1) < v <= 2^i
                                        // (bucket 0: v <= 1).
};

/// Named instruments. Lookup creates on first use; references stay valid
/// for the registry's lifetime. The maps use transparent comparators, so
/// lookups by string_view (or string literal) never materialize a
/// temporary std::string unless the instrument is genuinely new.
class MetricsRegistry {
 public:
  template <typename T>
  using InstrumentMap = std::map<std::string, T, std::less<>>;

  Counter& counter(std::string_view name) { return lookup(counters_, name); }
  Gauge& gauge(std::string_view name) { return lookup(gauges_, name); }
  Histogram& histogram(std::string_view name) {
    return lookup(histograms_, name);
  }

  [[nodiscard]] const InstrumentMap<Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const InstrumentMap<Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const InstrumentMap<Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Counter value, or 0 when the counter was never touched (does not
  /// create the instrument — safe on a const registry).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Zeroes every registered instrument (registrations survive, so cached
  /// instrument pointers stay valid).
  void reset();

  /// Merges every instrument of `other` into this registry by name
  /// (creating absent instruments): counters summed, gauges max-merged,
  /// histograms merged bucket-wise. The cross-group rollup primitive —
  /// deterministic because instrument maps iterate in name order and the
  /// hub merges groups in index order.
  void merge_from(const MetricsRegistry& other);

  /// {"counters": {...}, "gauges": {name: {"value","max"}},
  ///  "histograms": {name: {"count","sum","min","max","mean","buckets"}}}.
  /// "buckets" lists only non-zero buckets as [index, count] pairs (so
  /// offline consumers can recompute quantiles) and is omitted, like the
  /// whole histogram's samples, when the histogram is empty.
  [[nodiscard]] JsonValue to_json() const;

  friend bool operator==(const MetricsRegistry&, const MetricsRegistry&) =
      default;

 private:
  template <typename T>
  static T& lookup(InstrumentMap<T>& instruments, std::string_view name) {
    const auto it = instruments.find(name);
    if (it != instruments.end()) return it->second;
    return instruments.emplace(std::string(name), T{}).first->second;
  }

  InstrumentMap<Counter> counters_;
  InstrumentMap<Gauge> gauges_;
  InstrumentMap<Histogram> histograms_;
};

}  // namespace dynvote::obs
