// Counters, gauges, and histograms for the simulator and protocol stack.
//
// MetricsRegistry replaces the ad-hoc counter structs that used to live
// in sim::Network and the harness: instrumented code asks the registry
// for a named instrument once (cheap name lookup at wiring time, plain
// integer increments on the hot path) and the harness/benches export the
// whole registry as JSON.
//
// Determinism: instruments live in a std::map keyed by name, so both
// iteration order and the JSON export are independent of registration
// order; node-based storage keeps instrument pointers stable across
// later registrations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dynvote::obs {

/// A monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  void increment() noexcept { ++value_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (e.g. currently recorded ambiguous sessions).
/// Tracks the maximum it ever held, which is what the Theorem-1 bound
/// constrains.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_ = value;
    if (value > max_) max_ = value;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  void reset() noexcept { value_ = 0; max_ = 0; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// A distribution summarized by count/sum/min/max plus fixed power-of-two
/// buckets (upper bounds 1, 2, 4, ... 2^62, +inf). Good enough for round
/// counts and latencies without per-metric configuration.
class Histogram {
 public:
  Histogram();

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  void reset() noexcept;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;  // 64 entries; bucket i counts
                                        // values v with 2^(i-1) < v <= 2^i
                                        // (bucket 0: v <= 1).
};

/// Named instruments. Lookup creates on first use; references stay valid
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Counter value, or 0 when the counter was never touched (does not
  /// create the instrument — safe on a const registry).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Zeroes every registered instrument (registrations survive, so cached
  /// instrument pointers stay valid).
  void reset();

  /// {"counters": {...}, "gauges": {name: {"value","max"}},
  ///  "histograms": {name: {"count","sum","min","max","mean"}}}.
  /// Empty buckets are omitted to keep exports small.
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dynvote::obs
