// Counters, gauges, and histograms for the simulator and protocol stack.
//
// MetricsRegistry replaces the ad-hoc counter structs that used to live
// in sim::Network and the harness: instrumented code asks the registry
// for a named instrument once (cheap name lookup at wiring time, plain
// integer increments on the hot path) and the harness/benches export the
// whole registry as JSON.
//
// Determinism: instruments live in a std::map keyed by name, so both
// iteration order and the JSON export are independent of registration
// order; node-based storage keeps instrument pointers stable across
// later registrations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace dynvote::obs {

/// A monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  void increment() noexcept { ++value_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (e.g. currently recorded ambiguous sessions).
/// Tracks the maximum it ever held, which is what the Theorem-1 bound
/// constrains.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_ = value;
    if (value > max_) max_ = value;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  void reset() noexcept { value_ = 0; max_ = 0; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// A distribution summarized by count/sum/min/max plus fixed power-of-two
/// buckets (upper bounds 1, 2, 4, ... 2^62, +inf). Good enough for round
/// counts and latencies without per-metric configuration.
class Histogram {
 public:
  Histogram();

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  void reset() noexcept;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;  // 64 entries; bucket i counts
                                        // values v with 2^(i-1) < v <= 2^i
                                        // (bucket 0: v <= 1).
};

/// Named instruments. Lookup creates on first use; references stay valid
/// for the registry's lifetime. The maps use transparent comparators, so
/// lookups by string_view (or string literal) never materialize a
/// temporary std::string unless the instrument is genuinely new.
class MetricsRegistry {
 public:
  template <typename T>
  using InstrumentMap = std::map<std::string, T, std::less<>>;

  Counter& counter(std::string_view name) { return lookup(counters_, name); }
  Gauge& gauge(std::string_view name) { return lookup(gauges_, name); }
  Histogram& histogram(std::string_view name) {
    return lookup(histograms_, name);
  }

  [[nodiscard]] const InstrumentMap<Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const InstrumentMap<Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const InstrumentMap<Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Counter value, or 0 when the counter was never touched (does not
  /// create the instrument — safe on a const registry).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Zeroes every registered instrument (registrations survive, so cached
  /// instrument pointers stay valid).
  void reset();

  /// {"counters": {...}, "gauges": {name: {"value","max"}},
  ///  "histograms": {name: {"count","sum","min","max","mean"}}}.
  /// Empty buckets are omitted to keep exports small.
  [[nodiscard]] JsonValue to_json() const;

 private:
  template <typename T>
  static T& lookup(InstrumentMap<T>& instruments, std::string_view name) {
    const auto it = instruments.find(name);
    if (it != instruments.end()) return it->second;
    return instruments.emplace(std::string(name), T{}).first->second;
  }

  InstrumentMap<Counter> counters_;
  InstrumentMap<Gauge> gauges_;
  InstrumentMap<Histogram> histograms_;
};

}  // namespace dynvote::obs
