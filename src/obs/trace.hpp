// Structured, deterministic event tracing with causal links.
//
// The TraceSink is the machine-readable counterpart of the narrative
// TraceRecorder in harness/events.hpp: instead of prose it records flat
// TraceEvent structs — message send/drop/deliver with cause, session
// attempt/form/abort with the eligibility verdict, topology changes,
// crashes and recoveries, ambiguous-record high-water marks, and the
// optimized protocol's ambiguity resolutions/adoptions. The harness
// replays these events through the consistency checker
// (harness/trace_replay.hpp) to re-verify C1 and the Theorem-1 ambiguity
// bound from an exported trace alone, and obs/spans.hpp folds the stream
// into causal spans (session lifecycles, ambiguity lifetimes, primary
// tenures).
//
// Causality: the sink assigns every recorded event a monotonically
// increasing event id (eid, starting at 1), producers stamp each event
// with the recording process's Lamport clock (carried across messages by
// sim::Network), and `cause` links an effect to the eid of the event
// that produced it — a delivery to its send, a session form/abort to its
// attempt, a view install to the topology change that triggered it.
// Walking `cause` links back to an event with cause 0 yields the root
// cause of any effect (see dvtrace explain-abort).
//
// Determinism guarantee: events are recorded synchronously from the
// single-threaded simulator, ordered by the event queue; two runs with
// the same RNG seed record identical sequences (ids, clocks and causal
// links included), and the JSON export is byte-identical (see
// util/json.hpp).
//
// Memory: the sink is ring-buffered. Protocol/topology events are always
// recorded; per-message events are opt-in (set_messages_enabled) because
// long availability sweeps exchange millions of messages. Eviction never
// reuses ids, so causal links stay unambiguous (they may dangle — a
// chain walk reports the truncation instead of resolving wrongly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "util/ids.hpp"
#include "util/json.hpp"
#include "util/process_set.hpp"

namespace dynvote::obs {

class FlightRecorder;
class Gauge;
class MetricsRegistry;

enum class TraceEventKind : std::uint8_t {
  kMessageSend,        // a = from, b = to, detail = payload type
  kMessageDrop,        // a = from, b = to, value = DropCause, detail = type
  kMessageDeliver,     // a = from, b = to, detail = payload type
  kTopologyChange,     // members = one component (one event per component)
  kProcessCrash,       // a = process
  kProcessRecover,     // a = process
  kViewInstalled,      // a = process, number = view id, members = view
  kSessionAttempt,     // a = process, number = session, members = attempt set
  kSessionFormed,      // a = process, number = session, members, value = rounds
  kSessionAbort,       // a = process, number = view id, members, detail = reason
  kPrimaryLost,        // a = process
  kAmbiguityRecord,    // a = process, value = #ambiguous sessions now recorded
  kAmbiguityResolved,  // a = process, number = session, members,
                       //   detail = the §5 rule that deleted the record
  kAmbiguityAdopted,   // a = process, number = session, members,
                       //   detail = the §5 rule that adopted the record
};

/// Why a message never reached its destination.
enum class DropCause : std::uint8_t {
  kFilter = 0,        // fault-injection drop filter at send time
  kDisconnected = 1,  // sender and receiver not connected at send time
  kLinkEpoch = 2,     // link was cut (or endpoint crashed) while in flight
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind);
[[nodiscard]] std::string_view to_string(DropCause cause);

/// Inverse of to_string(TraceEventKind); throws JsonError on unknown
/// names (the parse-side failure mode of the trace schema).
[[nodiscard]] TraceEventKind trace_event_kind_from_string(std::string_view s);

/// One flat trace record. Field meaning depends on `kind` (see the enum
/// comments); unused fields keep their zero defaults and are omitted from
/// the JSON export.
struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kMessageSend;
  ProcessId a;
  ProcessId b;
  std::int64_t number = 0;
  std::uint64_t value = 0;
  ProcessSet members;
  std::string detail;
  /// Event id, assigned by TraceSink::record (1-based; 0 = unrecorded).
  std::uint64_t eid = 0;
  /// Lamport clock of the acting process at the event (0 for global
  /// events such as topology changes, which no single process performs).
  std::uint64_t lamport = 0;
  /// eid of the event that caused this one (0 = root cause / unlinked).
  std::uint64_t cause = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// One event in the compact trace.json schema: single-letter keys
/// (t, k, a, b, n, v, m, d, e, l, c), zero-valued fields omitted. Both
/// the trace exporters (harness/trace_replay) and flight-recorder
/// post-mortems serialize events through here, so every consumer parses
/// one format.
[[nodiscard]] JsonValue to_json(const TraceEvent& event);

/// Inverse of to_json(TraceEvent). Throws JsonError when a required
/// field (t, k, a, e) is missing.
[[nodiscard]] TraceEvent trace_event_from_json(const JsonValue& value);

/// Run-level context exported alongside the events so a trace file is
/// self-describing: replay needs the core set, Min_Quorum, and whether
/// the Theorem-1 ambiguity bound applies to the traced protocol.
struct TraceMeta {
  std::string protocol;
  std::uint32_t n = 0;
  std::size_t min_quorum = 0;
  std::uint64_t seed = 0;
  ProcessSet core;
  /// Theorem-1 bound on simultaneously recorded ambiguous sessions
  /// (n − Min_Quorum + 1); 0 disables the check (protocols that do not
  /// garbage-collect, or runs with dynamic membership).
  std::size_t ambiguity_bound = 0;
  /// Events evicted by the sink's ring bound before export. Nonzero means
  /// the event stream is a suffix of the execution; consumers must either
  /// reject the file or explicitly downgrade their verdicts (see
  /// check_trace's TruncationPolicy).
  std::uint64_t overwritten = 0;
  /// Sharded-fleet shape (0 = not a sharded trace). When set, replica
  /// ProcessIds are dense group-major (group = pid / group_size), which
  /// is what dvtrace's --group filter keys on. Omitted from the JSON
  /// export when zero, so single-group traces are byte-unchanged.
  std::uint32_t num_groups = 0;
  std::uint32_t group_size = 0;
};

/// Ring buffer of TraceEvents.
class TraceSink {
 public:
  /// `capacity` 0 means unbounded.
  explicit TraceSink(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Records `event`, assigning it the next event id. Returns the id, or
  /// 0 when the event was skipped (per-message events while disabled) —
  /// skipped events consume no id, so ids stay dense over recorded ones.
  std::uint64_t record(TraceEvent event);

  /// Per-message events (send/drop/deliver) are skipped unless enabled.
  void set_messages_enabled(bool enabled) noexcept { messages_ = enabled; }
  [[nodiscard]] bool messages_enabled() const noexcept { return messages_; }

  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Mirrors size/overwritten into the registry's "trace.events" /
  /// "trace.overwritten" gauges, so ring-buffer pressure is visible in
  /// bench JSON without touching the sink. Call once at wiring time; the
  /// registry must outlive the sink.
  void bind_metrics(MetricsRegistry& registry);

  /// Tees every retained event into a per-group flight recorder
  /// (obs/flight_recorder.hpp) after it lands in the ring. The recorder
  /// keeps its own bounds; eviction here never touches it. Pass nullptr
  /// to detach. The recorder must outlive the sink (or be detached).
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    flight_ = recorder;
  }

  void clear();

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Events evicted by the ring bound since the last clear().
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return overwritten_;
  }
  /// Id of the most recently recorded event (0 = none yet).
  [[nodiscard]] std::uint64_t last_eid() const noexcept { return next_eid_; }

 private:
  void update_gauges();

  std::size_t capacity_;
  bool messages_ = false;
  std::deque<TraceEvent> events_;
  std::uint64_t overwritten_ = 0;
  std::uint64_t next_eid_ = 0;
  Gauge* events_gauge_ = nullptr;
  Gauge* overwritten_gauge_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace dynvote::obs
