// Causal spans: folding the flat trace-event stream into lifecycles.
//
// A TraceSink records point events (obs/trace.hpp). This layer derives
// the three span families the paper's narrative is about:
//
//   SessionSpan    one per (process, installed view): view install ->
//                  attempt -> formed / aborted / crashed / superseded.
//   AmbiguitySpan  the lifetime of one ambiguous-session record at one
//                  process: recorded at the attempt, closed when the
//                  session forms, a section-5 rule resolves or adopts
//                  it, the disk is lost, or a same-membership re-attempt
//                  overwrites it (paper figure 1 step 2).
//   PrimarySpan    one primary-component tenure at one process:
//                  kSessionFormed -> kPrimaryLost.
//
// The builder also computes derived metrics from the trace alone —
// rounds-to-form histogram, primary-availability time, time spent with
// at least one ambiguous record outstanding — which
// cross_check_with_registry compares against the live MetricsRegistry:
// the trace file and the in-process instruments must tell the same
// story, or one of them is lying.
//
// Determinism: build_spans is a pure fold over the event vector; with
// the byte-identical trace of a fixed seed, spans_to_json and
// chrome_trace_json are byte-identical too.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/ids.hpp"
#include "util/json.hpp"
#include "util/process_set.hpp"

namespace dynvote::obs {

class MetricsRegistry;

/// One session lifecycle at one process. Opens at kViewInstalled and
/// closes at the first of: kSessionFormed, kSessionAbort, kProcessCrash,
/// or the next kViewInstalled (outcome "superseded"). Spans still open
/// when the trace ends keep outcome "open" and close_eid 0, with `end`
/// set to the trace horizon so durations stay meaningful.
struct SessionSpan {
  ProcessId process;
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t open_eid = 0;     // the kViewInstalled event
  std::uint64_t attempt_eid = 0;  // 0 = ended before attempting
  std::uint64_t close_eid = 0;    // 0 = still open at end of trace
  std::int64_t view_id = 0;
  std::int64_t number = -1;  // session number once attempted, else -1
  ProcessSet members;        // attempt set once attempted, else the view
  int rounds = 0;            // communication rounds (formed spans only)
  std::string outcome = "open";  // formed|aborted|crashed|superseded|open
  std::string reason;            // abort reason (aborted spans only)
};

/// The lifetime of one ambiguous-session record at one process.
/// `resolution` is "formed" (the session itself formed, clearing the
/// list), "overwritten" (same-membership re-attempt), "open", or the
/// rule string carried by the closing kAmbiguityResolved /
/// kAmbiguityAdopted event (see docs/OBSERVABILITY.md for the
/// vocabulary).
struct AmbiguitySpan {
  ProcessId process;
  std::int64_t number = 0;
  ProcessSet members;
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t open_eid = 0;   // the kSessionAttempt event
  std::uint64_t close_eid = 0;  // 0 = still open at end of trace
  bool adopted = false;         // closed by kAmbiguityAdopted
  std::string resolution = "open";
};

/// One primary-component tenure at one process.
struct PrimarySpan {
  ProcessId process;
  std::int64_t number = 0;
  ProcessSet members;
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t open_eid = 0;   // the kSessionFormed event
  std::uint64_t close_eid = 0;  // the kPrimaryLost event; 0 = still open
  bool open = false;            // still primary at end of trace
};

/// Aggregates recomputed from the trace alone. Counter and uptime
/// conventions match harness MetricsObserver exactly, so cross-checks
/// compare equals.
struct DerivedMetrics {
  std::uint64_t views_installed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t formed = 0;
  std::uint64_t aborts = 0;
  std::uint64_t primary_lost = 0;

  /// rounds -> number of formations (the kSessionFormed round counts).
  std::map<std::uint64_t, std::uint64_t> rounds_to_form;
  std::uint64_t rounds_sum = 0;
  std::uint64_t rounds_min = 0;
  std::uint64_t rounds_max = 0;

  /// Virtual time with >= 1 process primary (union over processes;
  /// intervals still open at the end of the trace are excluded, matching
  /// the registry's dv.primary_uptime_ticks counter).
  std::uint64_t primary_uptime_ticks = 0;
  /// Virtual time with >= 1 ambiguous record open anywhere. Unlike
  /// uptime, an interval still open at the end of the trace counts up to
  /// the horizon — unresolved ambiguity is the case worth measuring.
  std::uint64_t time_in_ambiguity_ticks = 0;

  /// Highest level any kAmbiguityRecord event reported.
  std::uint64_t max_ambiguity_level = 0;
  /// Highest simultaneous open-AmbiguitySpan count at a single process —
  /// the quantity Theorem 1 bounds by n - Min_Quorum + 1.
  std::uint64_t max_open_ambiguity = 0;

  /// Timestamp of the last event (0 for an empty trace).
  SimTime horizon = 0;

  /// Fraction of the horizon with a live primary component.
  [[nodiscard]] double primary_availability() const noexcept {
    return horizon == 0 ? 0.0
                        : static_cast<double>(primary_uptime_ticks) /
                              static_cast<double>(horizon);
  }
};

struct SpanReport {
  std::vector<SessionSpan> sessions;
  std::vector<AmbiguitySpan> ambiguity;
  std::vector<PrimarySpan> primaries;
  DerivedMetrics derived;
};

/// Folds the event stream (in recorded order) into spans and derived
/// metrics. Pure and deterministic.
[[nodiscard]] SpanReport build_spans(const std::vector<TraceEvent>& events);

/// Deterministic JSON rendering of a SpanReport:
/// {"sessions": [...], "ambiguity": [...], "primaries": [...],
///  "derived": {...}}.
[[nodiscard]] JsonValue spans_to_json(const SpanReport& report);

/// Chrome trace-event ("Trace Event Format") JSON, loadable in
/// chrome://tracing and Perfetto: one track (tid) per process plus a
/// network track; sessions and primary tenures as complete ("X") slices,
/// ambiguity lifetimes as async ("b"/"e") pairs so overlapping records
/// stack, drops/topology/crash/recover as instants.
[[nodiscard]] JsonValue chrome_trace_json(const TraceMeta& meta,
                                          const std::vector<TraceEvent>& events,
                                          const SpanReport& report);

/// Walks `cause` links from the event with id `eid` back to a root.
/// Returns the chain ordered root-first (the queried event is last), or
/// an empty vector when `eid` is not in `events`. If the first entry
/// still has a nonzero cause, the chain is truncated: the cause was
/// evicted by the ring bound.
[[nodiscard]] std::vector<const TraceEvent*> causal_chain(
    const std::vector<TraceEvent>& events, std::uint64_t eid);

/// Compares the trace-derived metrics against the live registry the run
/// maintained (dv.* counters, dv.rounds_per_form, dv.primary_uptime_ticks,
/// the dv.ambiguous_recorded gauge). Returns one human-readable line per
/// mismatch; empty means the two accounts agree exactly.
[[nodiscard]] std::vector<std::string> cross_check_with_registry(
    const SpanReport& report, const MetricsRegistry& registry);

}  // namespace dynvote::obs
