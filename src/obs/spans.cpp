#include "obs/spans.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"

namespace dynvote::obs {

namespace {

/// Per-process fold state while sweeping the event stream.
struct ProcessFold {
  std::size_t open_session = kNone;
  std::size_t open_primary = kNone;
  std::vector<std::size_t> open_ambiguity;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

}  // namespace

SpanReport build_spans(const std::vector<TraceEvent>& events) {
  SpanReport report;
  DerivedMetrics& d = report.derived;
  std::map<ProcessId, ProcessFold> folds;

  // Union-interval accounting, mirroring harness MetricsObserver: an
  // interval opens on the 0 -> nonzero transition and is only counted
  // once it closes.
  std::set<ProcessId> primary_procs;
  SimTime uptime_open = 0;
  std::size_t ambiguity_open_total = 0;
  SimTime ambiguity_open_at = 0;

  auto close_session = [&](ProcessFold& fold, const TraceEvent& event,
                           std::string outcome) {
    if (fold.open_session == ProcessFold::kNone) return;
    SessionSpan& span = report.sessions[fold.open_session];
    span.end = event.time;
    span.close_eid = event.eid;
    span.outcome = std::move(outcome);
    fold.open_session = ProcessFold::kNone;
  };

  auto close_ambiguity = [&](ProcessFold& fold, std::size_t index,
                             const TraceEvent& event, std::string resolution,
                             bool adopted) {
    AmbiguitySpan& span = report.ambiguity[index];
    span.end = event.time;
    span.close_eid = event.eid;
    span.resolution = std::move(resolution);
    span.adopted = adopted;
    std::erase(fold.open_ambiguity, index);
    if (--ambiguity_open_total == 0) {
      d.time_in_ambiguity_ticks += event.time - ambiguity_open_at;
    }
  };

  auto open_ambiguity = [&](ProcessFold& fold, const TraceEvent& event) {
    AmbiguitySpan span;
    span.process = event.a;
    span.number = event.number;
    span.members = event.members;
    span.start = event.time;
    span.open_eid = event.eid;
    fold.open_ambiguity.push_back(report.ambiguity.size());
    report.ambiguity.push_back(std::move(span));
    if (ambiguity_open_total++ == 0) ambiguity_open_at = event.time;
    d.max_open_ambiguity =
        std::max(d.max_open_ambiguity,
                 static_cast<std::uint64_t>(fold.open_ambiguity.size()));
  };

  for (const TraceEvent& event : events) {
    d.horizon = std::max(d.horizon, event.time);
    switch (event.kind) {
      case TraceEventKind::kViewInstalled: {
        ++d.views_installed;
        ProcessFold& fold = folds[event.a];
        close_session(fold, event, "superseded");
        SessionSpan span;
        span.process = event.a;
        span.start = event.time;
        span.open_eid = event.eid;
        span.view_id = event.number;
        span.members = event.members;
        fold.open_session = report.sessions.size();
        report.sessions.push_back(std::move(span));
        break;
      }
      case TraceEventKind::kSessionAttempt: {
        ++d.attempts;
        ProcessFold& fold = folds[event.a];
        if (fold.open_session != ProcessFold::kNone) {
          SessionSpan& span = report.sessions[fold.open_session];
          span.attempt_eid = event.eid;
          span.number = event.number;
          span.members = event.members;
        }
        // Figure 1 step 2: a same-membership re-attempt overwrites the
        // recorded ambiguous session.
        for (std::size_t i = fold.open_ambiguity.size(); i-- > 0;) {
          const std::size_t index = fold.open_ambiguity[i];
          if (report.ambiguity[index].members == event.members) {
            close_ambiguity(fold, index, event, "overwritten", false);
          }
        }
        open_ambiguity(fold, event);
        break;
      }
      case TraceEventKind::kSessionFormed: {
        ++d.formed;
        const auto rounds = event.value;
        ++d.rounds_to_form[rounds];
        d.rounds_sum += rounds;
        if (d.formed == 1) {
          d.rounds_min = rounds;
          d.rounds_max = rounds;
        } else {
          d.rounds_min = std::min(d.rounds_min, rounds);
          d.rounds_max = std::max(d.rounds_max, rounds);
        }

        ProcessFold& fold = folds[event.a];
        if (fold.open_session != ProcessFold::kNone) {
          report.sessions[fold.open_session].rounds =
              static_cast<int>(event.value);
        }
        close_session(fold, event, "formed");
        // apply_form clears the whole ambiguous list.
        while (!fold.open_ambiguity.empty()) {
          close_ambiguity(fold, fold.open_ambiguity.back(), event, "formed",
                          false);
        }
        PrimarySpan primary;
        primary.process = event.a;
        primary.number = event.number;
        primary.members = event.members;
        primary.start = event.time;
        primary.open_eid = event.eid;
        fold.open_primary = report.primaries.size();
        report.primaries.push_back(std::move(primary));
        if (primary_procs.empty()) uptime_open = event.time;
        primary_procs.insert(event.a);
        break;
      }
      case TraceEventKind::kPrimaryLost: {
        ++d.primary_lost;
        ProcessFold& fold = folds[event.a];
        if (fold.open_primary != ProcessFold::kNone) {
          PrimarySpan& span = report.primaries[fold.open_primary];
          span.end = event.time;
          span.close_eid = event.eid;
          fold.open_primary = ProcessFold::kNone;
        }
        if (primary_procs.erase(event.a) != 0 && primary_procs.empty()) {
          d.primary_uptime_ticks += event.time - uptime_open;
        }
        break;
      }
      case TraceEventKind::kSessionAbort: {
        ++d.aborts;
        ProcessFold& fold = folds[event.a];
        if (fold.open_session != ProcessFold::kNone) {
          report.sessions[fold.open_session].reason = event.detail;
        }
        close_session(fold, event, "aborted");
        break;
      }
      case TraceEventKind::kProcessCrash: {
        // kPrimaryLost precedes the crash event, so only the session
        // span can still be open here.
        close_session(folds[event.a], event, "crashed");
        break;
      }
      case TraceEventKind::kAmbiguityResolved:
      case TraceEventKind::kAmbiguityAdopted: {
        const bool adopted = event.kind == TraceEventKind::kAmbiguityAdopted;
        ProcessFold& fold = folds[event.a];
        for (std::size_t i = fold.open_ambiguity.size(); i-- > 0;) {
          const std::size_t index = fold.open_ambiguity[i];
          if (report.ambiguity[index].number == event.number) {
            close_ambiguity(fold, index, event, event.detail, adopted);
          }
        }
        break;
      }
      case TraceEventKind::kAmbiguityRecord:
        d.max_ambiguity_level = std::max(d.max_ambiguity_level, event.value);
        break;
      default:
        break;  // message/topology/recover events open no spans
    }
  }

  // The ambiguity union interval counts its open tail up to the horizon:
  // "time in ambiguity" would read 0 for exactly the runs where a record
  // is never resolved, which is the interesting case. (primary_uptime
  // keeps the strict closed-interval convention — it must equal the
  // registry's dv.primary_uptime_ticks counter.)
  if (ambiguity_open_total > 0) {
    d.time_in_ambiguity_ticks += d.horizon - ambiguity_open_at;
  }

  // Spans still open when the trace ends keep outcome "open" but get a
  // horizon end so durations are usable.
  for (SessionSpan& span : report.sessions) {
    if (span.close_eid == 0) span.end = d.horizon;
  }
  for (AmbiguitySpan& span : report.ambiguity) {
    if (span.close_eid == 0) span.end = d.horizon;
  }
  for (PrimarySpan& span : report.primaries) {
    if (span.close_eid == 0) {
      span.end = d.horizon;
      span.open = true;
    }
  }
  return report;
}

namespace {

JsonValue members_json(const ProcessSet& set) {
  JsonValue arr = JsonValue::array();
  for (const ProcessId p : set) {
    arr.push_back(JsonValue(static_cast<std::uint64_t>(p.value())));
  }
  return arr;
}

}  // namespace

JsonValue spans_to_json(const SpanReport& report) {
  JsonValue sessions = JsonValue::array();
  for (const SessionSpan& span : report.sessions) {
    JsonValue s = JsonValue::object();
    s.set("p", JsonValue(static_cast<std::uint64_t>(span.process.value())));
    s.set("start", JsonValue(span.start));
    s.set("end", JsonValue(span.end));
    s.set("open_eid", JsonValue(span.open_eid));
    if (span.attempt_eid != 0) s.set("attempt_eid", JsonValue(span.attempt_eid));
    if (span.close_eid != 0) s.set("close_eid", JsonValue(span.close_eid));
    s.set("view", JsonValue(span.view_id));
    if (span.number >= 0) s.set("n", JsonValue(span.number));
    s.set("m", members_json(span.members));
    if (span.rounds != 0) s.set("rounds", JsonValue(span.rounds));
    s.set("outcome", JsonValue(span.outcome));
    if (!span.reason.empty()) s.set("reason", JsonValue(span.reason));
    sessions.push_back(std::move(s));
  }

  JsonValue ambiguity = JsonValue::array();
  for (const AmbiguitySpan& span : report.ambiguity) {
    JsonValue s = JsonValue::object();
    s.set("p", JsonValue(static_cast<std::uint64_t>(span.process.value())));
    s.set("n", JsonValue(span.number));
    s.set("m", members_json(span.members));
    s.set("start", JsonValue(span.start));
    s.set("end", JsonValue(span.end));
    s.set("open_eid", JsonValue(span.open_eid));
    if (span.close_eid != 0) s.set("close_eid", JsonValue(span.close_eid));
    if (span.adopted) s.set("adopted", JsonValue(true));
    s.set("resolution", JsonValue(span.resolution));
    ambiguity.push_back(std::move(s));
  }

  JsonValue primaries = JsonValue::array();
  for (const PrimarySpan& span : report.primaries) {
    JsonValue s = JsonValue::object();
    s.set("p", JsonValue(static_cast<std::uint64_t>(span.process.value())));
    s.set("n", JsonValue(span.number));
    s.set("m", members_json(span.members));
    s.set("start", JsonValue(span.start));
    s.set("end", JsonValue(span.end));
    s.set("open_eid", JsonValue(span.open_eid));
    if (span.close_eid != 0) s.set("close_eid", JsonValue(span.close_eid));
    if (span.open) s.set("open", JsonValue(true));
    primaries.push_back(std::move(s));
  }

  const DerivedMetrics& d = report.derived;
  JsonValue rounds = JsonValue::object();
  for (const auto& [r, count] : d.rounds_to_form) {
    rounds.set(std::to_string(r), JsonValue(count));
  }
  JsonValue derived = JsonValue::object();
  derived.set("views_installed", JsonValue(d.views_installed));
  derived.set("attempts", JsonValue(d.attempts));
  derived.set("formed", JsonValue(d.formed));
  derived.set("aborts", JsonValue(d.aborts));
  derived.set("primary_lost", JsonValue(d.primary_lost));
  derived.set("rounds_to_form", std::move(rounds));
  derived.set("rounds_sum", JsonValue(d.rounds_sum));
  derived.set("rounds_min", JsonValue(d.rounds_min));
  derived.set("rounds_max", JsonValue(d.rounds_max));
  derived.set("primary_uptime_ticks", JsonValue(d.primary_uptime_ticks));
  derived.set("time_in_ambiguity_ticks", JsonValue(d.time_in_ambiguity_ticks));
  derived.set("max_ambiguity_level", JsonValue(d.max_ambiguity_level));
  derived.set("max_open_ambiguity", JsonValue(d.max_open_ambiguity));
  derived.set("horizon", JsonValue(d.horizon));
  derived.set("primary_availability", JsonValue(d.primary_availability()));

  JsonValue out = JsonValue::object();
  out.set("sessions", std::move(sessions));
  out.set("ambiguity", std::move(ambiguity));
  out.set("primaries", std::move(primaries));
  out.set("derived", std::move(derived));
  return out;
}

namespace {

JsonValue chrome_event(const char* name, const char* cat, const char* ph,
                       std::uint64_t tid, SimTime ts) {
  JsonValue e = JsonValue::object();
  e.set("name", JsonValue(name));
  e.set("cat", JsonValue(cat));
  e.set("ph", JsonValue(ph));
  e.set("pid", JsonValue(std::uint64_t{0}));
  e.set("tid", JsonValue(tid));
  e.set("ts", JsonValue(ts));
  return e;
}

std::string span_name(const char* prefix, std::int64_t number) {
  return std::string(prefix) + " " + std::to_string(number);
}

}  // namespace

JsonValue chrome_trace_json(const TraceMeta& meta,
                            const std::vector<TraceEvent>& events,
                            const SpanReport& report) {
  // One track per process; the network/topology track sits after the
  // highest process id seen anywhere.
  std::set<std::uint64_t> tids;
  for (const ProcessId p : meta.core) tids.insert(p.value());
  for (const SessionSpan& span : report.sessions) {
    tids.insert(span.process.value());
  }
  for (const TraceEvent& event : events) tids.insert(event.a.value());
  const std::uint64_t network_tid = tids.empty() ? 0 : *tids.rbegin() + 1;

  JsonValue trace_events = JsonValue::array();
  for (const std::uint64_t tid : tids) {
    JsonValue m = JsonValue::object();
    m.set("name", JsonValue("thread_name"));
    m.set("ph", JsonValue("M"));
    m.set("pid", JsonValue(std::uint64_t{0}));
    m.set("tid", JsonValue(tid));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue("p" + std::to_string(tid)));
    m.set("args", std::move(args));
    trace_events.push_back(std::move(m));
  }
  {
    JsonValue m = JsonValue::object();
    m.set("name", JsonValue("thread_name"));
    m.set("ph", JsonValue("M"));
    m.set("pid", JsonValue(std::uint64_t{0}));
    m.set("tid", JsonValue(network_tid));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue("network"));
    m.set("args", std::move(args));
    trace_events.push_back(std::move(m));
  }

  for (const SessionSpan& span : report.sessions) {
    JsonValue e = chrome_event(
        (span.number >= 0 ? span_name("session", span.number)
                          : span_name("view", span.view_id))
            .c_str(),
        "session", "X", span.process.value(), span.start);
    e.set("dur", JsonValue(span.end - span.start));
    JsonValue args = JsonValue::object();
    args.set("outcome", JsonValue(span.outcome));
    args.set("members", JsonValue(span.members.to_string()));
    if (span.rounds != 0) args.set("rounds", JsonValue(span.rounds));
    if (!span.reason.empty()) args.set("reason", JsonValue(span.reason));
    e.set("args", std::move(args));
    trace_events.push_back(std::move(e));
  }

  for (const PrimarySpan& span : report.primaries) {
    JsonValue e =
        chrome_event(span_name("primary", span.number).c_str(), "primary", "X",
                     span.process.value(), span.start);
    e.set("dur", JsonValue(span.end - span.start));
    JsonValue args = JsonValue::object();
    args.set("members", JsonValue(span.members.to_string()));
    if (span.open) args.set("open", JsonValue(true));
    e.set("args", std::move(args));
    trace_events.push_back(std::move(e));
  }

  // Ambiguity lifetimes overlap at one process, so they go out as async
  // begin/end pairs (Perfetto stacks those instead of rejecting the
  // overlap). The pair id is the opening eid — unique per span.
  for (const AmbiguitySpan& span : report.ambiguity) {
    JsonValue b =
        chrome_event(span_name("ambiguous", span.number).c_str(), "ambiguity",
                     "b", span.process.value(), span.start);
    b.set("id", JsonValue(std::to_string(span.open_eid)));
    trace_events.push_back(std::move(b));
    JsonValue e =
        chrome_event(span_name("ambiguous", span.number).c_str(), "ambiguity",
                     "e", span.process.value(), span.end);
    e.set("id", JsonValue(std::to_string(span.open_eid)));
    JsonValue args = JsonValue::object();
    args.set("resolution", JsonValue(span.resolution));
    e.set("args", std::move(args));
    trace_events.push_back(std::move(e));
  }

  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case TraceEventKind::kMessageDrop: {
        JsonValue e = chrome_event(
            ("drop p" + std::to_string(event.a.value()) + "->p" +
             std::to_string(event.b.value()))
                .c_str(),
            "network", "i", network_tid, event.time);
        e.set("s", JsonValue("t"));
        JsonValue args = JsonValue::object();
        args.set("cause",
                 JsonValue(to_string(static_cast<DropCause>(event.value))));
        if (!event.detail.empty()) args.set("payload", JsonValue(event.detail));
        e.set("args", std::move(args));
        trace_events.push_back(std::move(e));
        break;
      }
      case TraceEventKind::kTopologyChange: {
        JsonValue e = chrome_event(
            ("topology " + event.members.to_string()).c_str(), "network", "i",
            network_tid, event.time);
        e.set("s", JsonValue("g"));
        trace_events.push_back(std::move(e));
        break;
      }
      case TraceEventKind::kProcessCrash:
      case TraceEventKind::kProcessRecover: {
        const bool crash = event.kind == TraceEventKind::kProcessCrash;
        JsonValue e = chrome_event(crash ? "crash" : "recover", "process", "i",
                                   event.a.value(), event.time);
        e.set("s", JsonValue("t"));
        trace_events.push_back(std::move(e));
        break;
      }
      default:
        break;
    }
  }

  JsonValue out = JsonValue::object();
  out.set("displayTimeUnit", JsonValue("ms"));
  JsonValue other = JsonValue::object();
  other.set("protocol", JsonValue(meta.protocol));
  other.set("seed", JsonValue(meta.seed));
  other.set("n", JsonValue(static_cast<std::uint64_t>(meta.n)));
  out.set("otherData", std::move(other));
  out.set("traceEvents", std::move(trace_events));
  return out;
}

std::vector<const TraceEvent*> causal_chain(
    const std::vector<TraceEvent>& events, std::uint64_t eid) {
  std::map<std::uint64_t, const TraceEvent*> by_eid;
  for (const TraceEvent& event : events) {
    if (event.eid != 0) by_eid.emplace(event.eid, &event);
  }
  std::vector<const TraceEvent*> chain;
  std::uint64_t current = eid;
  while (current != 0 && chain.size() <= events.size()) {
    const auto it = by_eid.find(current);
    if (it == by_eid.end()) break;  // evicted by the ring bound: truncated
    chain.push_back(it->second);
    current = it->second->cause;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<std::string> cross_check_with_registry(
    const SpanReport& report, const MetricsRegistry& registry) {
  std::vector<std::string> mismatches;
  const DerivedMetrics& d = report.derived;

  const auto check_counter = [&](const char* name, std::uint64_t derived) {
    const std::uint64_t live = registry.counter_value(name);
    if (live != derived) {
      mismatches.push_back(std::string(name) + ": trace=" +
                           std::to_string(derived) + " registry=" +
                           std::to_string(live));
    }
  };
  check_counter("dv.views_installed", d.views_installed);
  check_counter("dv.attempts", d.attempts);
  check_counter("dv.formed", d.formed);
  check_counter("dv.rejected", d.aborts);
  check_counter("dv.primary_lost", d.primary_lost);
  check_counter("dv.primary_uptime_ticks", d.primary_uptime_ticks);

  const auto& histograms = registry.histograms();
  const auto rounds = histograms.find("dv.rounds_per_form");
  if (rounds == histograms.end()) {
    if (d.formed != 0) {
      mismatches.push_back("dv.rounds_per_form: trace has " +
                           std::to_string(d.formed) +
                           " formations, registry has no histogram");
    }
  } else {
    const Histogram& h = rounds->second;
    if (h.count() != d.formed || h.sum() != d.rounds_sum ||
        h.min() != d.rounds_min || h.max() != d.rounds_max) {
      mismatches.push_back(
          "dv.rounds_per_form: trace count/sum/min/max=" +
          std::to_string(d.formed) + "/" + std::to_string(d.rounds_sum) + "/" +
          std::to_string(d.rounds_min) + "/" + std::to_string(d.rounds_max) +
          " registry=" + std::to_string(h.count()) + "/" +
          std::to_string(h.sum()) + "/" + std::to_string(h.min()) + "/" +
          std::to_string(h.max()));
    }
  }

  const auto& gauges = registry.gauges();
  const auto level = gauges.find("dv.ambiguous_recorded");
  if (level != gauges.end()) {
    const auto live_max = static_cast<std::uint64_t>(
        level->second.max() < 0 ? 0 : level->second.max());
    if (live_max != d.max_ambiguity_level) {
      mismatches.push_back("dv.ambiguous_recorded.max: trace=" +
                           std::to_string(d.max_ambiguity_level) +
                           " registry=" + std::to_string(live_max));
    }
  }
  return mismatches;
}

}  // namespace dynvote::obs
