#include "obs/trace.hpp"

#include "obs/metrics.hpp"

namespace dynvote::obs {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMessageSend:
      return "send";
    case TraceEventKind::kMessageDrop:
      return "drop";
    case TraceEventKind::kMessageDeliver:
      return "deliver";
    case TraceEventKind::kTopologyChange:
      return "topology";
    case TraceEventKind::kProcessCrash:
      return "crash";
    case TraceEventKind::kProcessRecover:
      return "recover";
    case TraceEventKind::kViewInstalled:
      return "view";
    case TraceEventKind::kSessionAttempt:
      return "attempt";
    case TraceEventKind::kSessionFormed:
      return "formed";
    case TraceEventKind::kSessionAbort:
      return "abort";
    case TraceEventKind::kPrimaryLost:
      return "primary_lost";
    case TraceEventKind::kAmbiguityRecord:
      return "ambiguity";
    case TraceEventKind::kAmbiguityResolved:
      return "ambiguity_resolved";
    case TraceEventKind::kAmbiguityAdopted:
      return "ambiguity_adopted";
  }
  return "unknown";
}

std::string_view to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kFilter:
      return "filter";
    case DropCause::kDisconnected:
      return "disconnected";
    case DropCause::kLinkEpoch:
      return "link_epoch";
  }
  return "unknown";
}

std::uint64_t TraceSink::record(TraceEvent event) {
  switch (event.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDrop:
    case TraceEventKind::kMessageDeliver:
      if (!messages_) return 0;
      break;
    default:
      break;
  }
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++overwritten_;
  }
  event.eid = ++next_eid_;
  events_.push_back(std::move(event));
  update_gauges();
  return next_eid_;
}

void TraceSink::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++overwritten_;
    }
  }
  update_gauges();
}

void TraceSink::bind_metrics(MetricsRegistry& registry) {
  events_gauge_ = &registry.gauge("trace.events");
  overwritten_gauge_ = &registry.gauge("trace.overwritten");
  update_gauges();
}

void TraceSink::update_gauges() {
  if (events_gauge_ == nullptr) return;
  events_gauge_->set(static_cast<std::int64_t>(events_.size()));
  overwritten_gauge_->set(static_cast<std::int64_t>(overwritten_));
}

void TraceSink::clear() {
  events_.clear();
  overwritten_ = 0;
  next_eid_ = 0;
  update_gauges();
}

}  // namespace dynvote::obs
