#include "obs/trace.hpp"

namespace dynvote::obs {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMessageSend:
      return "send";
    case TraceEventKind::kMessageDrop:
      return "drop";
    case TraceEventKind::kMessageDeliver:
      return "deliver";
    case TraceEventKind::kTopologyChange:
      return "topology";
    case TraceEventKind::kProcessCrash:
      return "crash";
    case TraceEventKind::kProcessRecover:
      return "recover";
    case TraceEventKind::kViewInstalled:
      return "view";
    case TraceEventKind::kSessionAttempt:
      return "attempt";
    case TraceEventKind::kSessionFormed:
      return "formed";
    case TraceEventKind::kSessionAbort:
      return "abort";
    case TraceEventKind::kPrimaryLost:
      return "primary_lost";
    case TraceEventKind::kAmbiguityRecord:
      return "ambiguity";
  }
  return "unknown";
}

std::string_view to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kFilter:
      return "filter";
    case DropCause::kDisconnected:
      return "disconnected";
    case DropCause::kLinkEpoch:
      return "link_epoch";
  }
  return "unknown";
}

void TraceSink::record(TraceEvent event) {
  switch (event.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDrop:
    case TraceEventKind::kMessageDeliver:
      if (!messages_) return;
      break;
    default:
      break;
  }
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++overwritten_;
  }
  events_.push_back(std::move(event));
}

void TraceSink::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++overwritten_;
    }
  }
}

void TraceSink::clear() {
  events_.clear();
  overwritten_ = 0;
}

}  // namespace dynvote::obs
