#include "obs/trace.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace dynvote::obs {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMessageSend:
      return "send";
    case TraceEventKind::kMessageDrop:
      return "drop";
    case TraceEventKind::kMessageDeliver:
      return "deliver";
    case TraceEventKind::kTopologyChange:
      return "topology";
    case TraceEventKind::kProcessCrash:
      return "crash";
    case TraceEventKind::kProcessRecover:
      return "recover";
    case TraceEventKind::kViewInstalled:
      return "view";
    case TraceEventKind::kSessionAttempt:
      return "attempt";
    case TraceEventKind::kSessionFormed:
      return "formed";
    case TraceEventKind::kSessionAbort:
      return "abort";
    case TraceEventKind::kPrimaryLost:
      return "primary_lost";
    case TraceEventKind::kAmbiguityRecord:
      return "ambiguity";
    case TraceEventKind::kAmbiguityResolved:
      return "ambiguity_resolved";
    case TraceEventKind::kAmbiguityAdopted:
      return "ambiguity_adopted";
  }
  return "unknown";
}

std::string_view to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kFilter:
      return "filter";
    case DropCause::kDisconnected:
      return "disconnected";
    case DropCause::kLinkEpoch:
      return "link_epoch";
  }
  return "unknown";
}

TraceEventKind trace_event_kind_from_string(std::string_view s) {
  using K = TraceEventKind;
  for (const K k :
       {K::kMessageSend, K::kMessageDrop, K::kMessageDeliver,
        K::kTopologyChange, K::kProcessCrash, K::kProcessRecover,
        K::kViewInstalled, K::kSessionAttempt, K::kSessionFormed,
        K::kSessionAbort, K::kPrimaryLost, K::kAmbiguityRecord,
        K::kAmbiguityResolved, K::kAmbiguityAdopted}) {
    if (to_string(k) == s) return k;
  }
  throw JsonError("trace: unknown event kind '" + std::string(s) + "'");
}

namespace {

JsonValue process_set_to_json(const ProcessSet& set) {
  JsonValue arr = JsonValue::array();
  arr.reserve(set.size());
  for (const ProcessId p : set) {
    arr.push_back(JsonValue(static_cast<std::uint64_t>(p.value())));
  }
  return arr;
}

ProcessSet process_set_from_json(const JsonValue& value) {
  std::vector<ProcessId> members;
  members.reserve(value.as_array().size());
  for (const JsonValue& entry : value.as_array()) {
    members.emplace_back(static_cast<std::uint32_t>(entry.as_uint()));
  }
  return ProcessSet(std::move(members));
}

}  // namespace

JsonValue to_json(const TraceEvent& event) {
  JsonValue e = JsonValue::object();
  e.reserve(10);  // t k a e + up to 7 optional fields, most absent
  e.set("t", JsonValue(event.time));
  e.set("k", JsonValue(to_string(event.kind)));
  e.set("a", JsonValue(static_cast<std::uint64_t>(event.a.value())));
  // Zero-valued fields are omitted: they are the defaults the loader
  // restores, and dropping them keeps big traces compact.
  if (event.b != ProcessId{}) {
    e.set("b", JsonValue(static_cast<std::uint64_t>(event.b.value())));
  }
  if (event.number != 0) e.set("n", JsonValue(event.number));
  if (event.value != 0) e.set("v", JsonValue(event.value));
  if (!event.members.empty()) e.set("m", process_set_to_json(event.members));
  if (!event.detail.empty()) e.set("d", JsonValue(event.detail));
  // Causal fields. "e" is always present (every recorded event has an
  // id); the clock and cause keep the zero-omitted convention.
  e.set("e", JsonValue(event.eid));
  if (event.lamport != 0) e.set("l", JsonValue(event.lamport));
  if (event.cause != 0) e.set("c", JsonValue(event.cause));
  return e;
}

TraceEvent trace_event_from_json(const JsonValue& value) {
  TraceEvent event;
  // One pass over the object instead of a find() per field: every key
  // is a single character, and a big trace has thousands of events.
  bool has_t = false, has_k = false, has_a = false, has_e = false;
  for (const auto& [key, field] : value.as_object()) {
    if (key.size() != 1) continue;
    switch (key[0]) {
      case 't': event.time = field.as_uint(); has_t = true; break;
      case 'k':
        event.kind = trace_event_kind_from_string(field.as_string());
        has_k = true;
        break;
      case 'a':
        event.a = ProcessId(static_cast<std::uint32_t>(field.as_uint()));
        has_a = true;
        break;
      case 'b':
        event.b = ProcessId(static_cast<std::uint32_t>(field.as_uint()));
        break;
      case 'n': event.number = field.as_int(); break;
      case 'v': event.value = field.as_uint(); break;
      case 'm': event.members = process_set_from_json(field); break;
      case 'd': event.detail = field.as_string(); break;
      case 'e': event.eid = field.as_uint(); has_e = true; break;
      case 'l': event.lamport = field.as_uint(); break;
      case 'c': event.cause = field.as_uint(); break;
      default: break;
    }
  }
  if (!has_t || !has_k || !has_a || !has_e) {
    throw JsonError("trace: event record is missing t, k, a, or e");
  }
  return event;
}

std::uint64_t TraceSink::record(TraceEvent event) {
  switch (event.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDrop:
    case TraceEventKind::kMessageDeliver:
      if (!messages_) return 0;
      break;
    default:
      break;
  }
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++overwritten_;
  }
  event.eid = ++next_eid_;
  events_.push_back(std::move(event));
  if (flight_ != nullptr) flight_->note(events_.back());
  update_gauges();
  return next_eid_;
}

void TraceSink::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++overwritten_;
    }
  }
  update_gauges();
}

void TraceSink::bind_metrics(MetricsRegistry& registry) {
  events_gauge_ = &registry.gauge("trace.events");
  overwritten_gauge_ = &registry.gauge("trace.overwritten");
  update_gauges();
}

void TraceSink::update_gauges() {
  if (events_gauge_ == nullptr) return;
  events_gauge_->set(static_cast<std::int64_t>(events_.size()));
  overwritten_gauge_->set(static_cast<std::int64_t>(overwritten_));
}

void TraceSink::clear() {
  events_.clear();
  overwritten_ = 0;
  next_eid_ = 0;
  update_gauges();
}

}  // namespace dynvote::obs
