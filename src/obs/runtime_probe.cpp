#include "obs/runtime_probe.hpp"

#include <algorithm>
#include <utility>

#include "util/ensure.hpp"

namespace dynvote::obs {

std::string_view to_string(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::kLinkPush:
      return "push";
    case ProbeKind::kLinkPushFailed:
      return "push_failed";
    case ProbeKind::kLinkPop:
      return "pop";
    case ProbeKind::kControlPush:
      return "ctl_push";
    case ProbeKind::kControlPop:
      return "ctl_pop";
    case ProbeKind::kParked:
      return "parked";
    case ProbeKind::kTimerSlop:
      return "sleep_slop";
    case ProbeKind::kWakeup:
      return "wakeup";
    case ProbeKind::kTimerSchedule:
      return "timer_sched";
    case ProbeKind::kTimerFire:
      return "timer_fire";
    case ProbeKind::kHandlerMessage:
      return "h_msg";
    case ProbeKind::kHandlerControl:
      return "h_ctl";
    case ProbeKind::kHandlerTimer:
      return "h_timer";
    case ProbeKind::kBatch:
      return "batch";
    case ProbeKind::kRunQueue:
      return "run_queue";
    case ProbeKind::kHandoff:
      return "handoff";
  }
  return "?";
}

ProbeKind probe_kind_from_string(std::string_view name) {
  for (const ProbeKind kind :
       {ProbeKind::kLinkPush, ProbeKind::kLinkPushFailed, ProbeKind::kLinkPop,
        ProbeKind::kControlPush, ProbeKind::kControlPop, ProbeKind::kParked,
        ProbeKind::kTimerSlop, ProbeKind::kWakeup, ProbeKind::kTimerSchedule,
        ProbeKind::kTimerFire, ProbeKind::kHandlerMessage,
        ProbeKind::kHandlerControl, ProbeKind::kHandlerTimer,
        ProbeKind::kBatch, ProbeKind::kRunQueue, ProbeKind::kHandoff}) {
    if (to_string(kind) == name) return kind;
  }
  ensure(false, "unknown probe kind " + std::string(name));
  return ProbeKind::kLinkPush;
}

ProbeRing::ProbeRing(std::size_t min_capacity) {
  std::size_t cap = 16;
  while (cap < min_capacity) cap <<= 1;
  slots_ = std::make_unique_for_overwrite<ProbeEntry[]>(cap);
  mask_ = cap - 1;
}

std::vector<ProbeEntry> ProbeRing::snapshot() const {
  std::vector<ProbeEntry> out;
  const std::uint64_t retained = std::min<std::uint64_t>(next_, capacity());
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = next_ - retained; i < next_; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  return out;
}

// -- phase attribution --------------------------------------------------------

namespace {

struct Interval {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

/// Sorts and merges into disjoint intervals (coalescing adjacency), so
/// the sweep below can walk each set with one monotone cursor.
void normalize(std::vector<Interval>& set) {
  std::sort(set.begin(), set.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start;
  });
  std::size_t out = 0;
  for (const Interval& iv : set) {
    if (out > 0 && iv.start <= set[out - 1].end) {
      set[out - 1].end = std::max(set[out - 1].end, iv.end);
    } else {
      set[out++] = iv;
    }
  }
  set.resize(out);
}

/// Whether `t` lies in `set`, advancing the cursor (queries must come in
/// nondecreasing t, which the sorted cut sweep guarantees).
bool covered(const std::vector<Interval>& set, std::size_t& cursor,
             std::uint64_t t) {
  while (cursor < set.size() && set[cursor].end <= t) ++cursor;
  return cursor < set.size() && set[cursor].start <= t;
}

}  // namespace

PhaseBreakdown attribute_window(const std::vector<ProbeEntry>& entries,
                                std::uint64_t t0_ns, std::uint64_t t1_ns) {
  PhaseBreakdown out;
  if (t1_ns <= t0_ns) return out;
  out.wall_ns = t1_ns - t0_ns;

  std::vector<Interval> exec;
  std::vector<Interval> slop;
  std::vector<Interval> queued;
  std::vector<Interval> parked;
  auto clip_add = [&](std::vector<Interval>& set, std::uint64_t s,
                      std::uint64_t e) {
    s = std::max(s, t0_ns);
    e = std::min(e, t1_ns);
    if (e > s) set.push_back(Interval{s, e});
  };
  for (const ProbeEntry& e : entries) {
    switch (e.kind) {
      case ProbeKind::kHandlerMessage:
      case ProbeKind::kHandlerControl:
      case ProbeKind::kHandlerTimer:
        clip_add(exec, e.t_ns, e.t_ns + e.value);
        break;
      case ProbeKind::kTimerSlop:
        clip_add(slop, e.t_ns, e.t_ns + e.value);
        break;
      case ProbeKind::kParked:
        clip_add(parked, e.t_ns, e.t_ns + e.value);
        break;
      case ProbeKind::kLinkPop:
      case ProbeKind::kControlPop:
        // A pop at t after waiting v means the item was in flight to
        // this thread over [t - v, t].
        if (e.value != 0 && e.value <= e.t_ns) {
          clip_add(queued, e.t_ns - e.value, e.t_ns);
        }
        break;
      default:
        break;
    }
  }
  normalize(exec);
  normalize(slop);
  normalize(queued);
  normalize(parked);

  std::vector<std::uint64_t> cuts;
  cuts.reserve(2 * (exec.size() + slop.size() + queued.size() + parked.size()) +
               2);
  cuts.push_back(t0_ns);
  cuts.push_back(t1_ns);
  for (const auto* set : {&exec, &slop, &queued, &parked}) {
    for (const Interval& iv : *set) {
      cuts.push_back(iv.start);
      cuts.push_back(iv.end);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::size_t ce = 0;
  std::size_t cs = 0;
  std::size_t cq = 0;
  std::size_t cp = 0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const std::uint64_t s = cuts[i];
    if (s < t0_ns || s >= t1_ns) continue;
    const std::uint64_t len = cuts[i + 1] - s;
    if (covered(exec, ce, s)) {
      out.executing_ns += len;
    } else if (covered(slop, cs, s)) {
      out.timer_slop_ns += len;
    } else if (covered(queued, cq, s)) {
      out.queued_ns += len;
    } else if (covered(parked, cp, s)) {
      out.parked_ns += len;
    } else {
      out.unattributed_ns += len;
    }
  }
  return out;
}

// -- metric aggregation -------------------------------------------------------

void aggregate_probe_metrics(const std::vector<ThreadProbeLog>& logs,
                             MetricsHub& hub) {
  ensure(hub.num_groups() == logs.size(),
         "probe aggregation needs one hub group per lane");
  for (std::size_t i = 0; i < logs.size(); ++i) {
    MetricsRegistry& r = hub.group(i);
    if (logs[i].dropped != 0) {
      r.counter("rt.probe.dropped").add(logs[i].dropped);
    }
    for (const ProbeEntry& e : logs[i].entries) {
      switch (e.kind) {
        case ProbeKind::kLinkPush:
          r.counter("rt.probe.push").increment();
          r.histogram("rt.probe.queue_depth").observe(e.value);
          break;
        case ProbeKind::kLinkPushFailed:
          r.counter("rt.probe.push_failed").increment();
          r.histogram("rt.probe.backpressure_ns").observe(e.value);
          break;
        case ProbeKind::kLinkPop:
          r.counter("rt.probe.pop").increment();
          r.histogram("rt.probe.queued_ns").observe(e.value);
          break;
        case ProbeKind::kControlPush:
          r.counter("rt.probe.control_push").increment();
          r.histogram("rt.probe.queue_depth").observe(e.value);
          break;
        case ProbeKind::kControlPop:
          r.counter("rt.probe.control_pop").increment();
          r.histogram("rt.probe.queued_ns").observe(e.value);
          break;
        case ProbeKind::kParked:
          r.counter("rt.probe.parks").increment();
          r.histogram("rt.probe.park_ns").observe(e.value);
          break;
        case ProbeKind::kTimerSlop:
          r.histogram("rt.probe.sleep_slop_ns").observe(e.value);
          break;
        case ProbeKind::kWakeup:
          r.counter("rt.probe.wakeups").increment();
          r.histogram("rt.probe.wakeup_ns").observe(e.value);
          break;
        case ProbeKind::kTimerSchedule:
          r.counter("rt.probe.timer_scheduled").increment();
          r.histogram("rt.probe.timer_delay_ns").observe(e.value);
          break;
        case ProbeKind::kTimerFire:
          r.counter("rt.probe.timer_fired").increment();
          r.histogram("rt.probe.timer_slop_ns").observe(e.value);
          break;
        case ProbeKind::kHandlerMessage:
        case ProbeKind::kHandlerControl:
        case ProbeKind::kHandlerTimer:
          r.counter("rt.probe.handlers").increment();
          r.histogram("rt.probe.handler_ns").observe(e.value);
          break;
        case ProbeKind::kBatch:
          r.counter("rt.probe.batches").increment();
          r.histogram("rt.probe.batch_size").observe(e.value);
          break;
        case ProbeKind::kRunQueue:
          r.histogram("rt.probe.run_queue_depth").observe(e.value);
          break;
        case ProbeKind::kHandoff:
          r.counter("rt.probe.handoffs").increment();
          r.histogram("rt.probe.queue_depth").observe(e.value);
          break;
      }
    }
  }
}

// -- JSON document ------------------------------------------------------------

namespace {

JsonValue entry_to_json(const ProbeEntry& e) {
  JsonValue out = JsonValue::object();
  out.reserve(5);
  out.set("t", JsonValue(e.t_ns));
  out.set("k", JsonValue(to_string(e.kind)));
  if (e.link != kNoLane) out.set("l", JsonValue(std::uint64_t{e.link}));
  if (e.value != 0) out.set("v", JsonValue(e.value));
  if (e.eid != 0) out.set("e", JsonValue(e.eid));
  return out;
}

ProbeEntry entry_from_json(const JsonValue& json) {
  ProbeEntry e;
  e.t_ns = json.at("t").as_uint();
  e.kind = probe_kind_from_string(json.at("k").as_string());
  const JsonValue* link = json.find("l");
  e.link = link == nullptr ? kNoLane : static_cast<std::uint16_t>(link->as_uint());
  const JsonValue* value = json.find("v");
  e.value = value == nullptr ? 0 : value->as_uint();
  const JsonValue* eid = json.find("e");
  e.eid = eid == nullptr ? 0 : eid->as_uint();
  return e;
}

JsonValue breakdown_to_json(const ReconfigWindow& w) {
  JsonValue out = JsonValue::object();
  out.reserve(10);
  out.set("verb", JsonValue(w.verb));
  out.set("t0_ns", JsonValue(w.t0_ns));
  out.set("t1_ns", JsonValue(w.t1_ns));
  out.set("wall_ns", JsonValue(w.phases.wall_ns));
  out.set("critical_thread", JsonValue(std::uint64_t{w.critical_thread}));
  out.set("queued_ns", JsonValue(w.phases.queued_ns));
  out.set("parked_ns", JsonValue(w.phases.parked_ns));
  out.set("executing_ns", JsonValue(w.phases.executing_ns));
  out.set("timer_slop_ns", JsonValue(w.phases.timer_slop_ns));
  out.set("unattributed_ns", JsonValue(w.phases.unattributed_ns));
  return out;
}

}  // namespace

JsonValue runtime_probes_json(const RuntimeProbeMeta& meta,
                              const std::vector<ThreadProbeLog>& logs,
                              const std::vector<ReconfigWindow>& reconfigs) {
  JsonValue out = JsonValue::object();
  out.reserve(8);
  out.set("schema_version",
          JsonValue(static_cast<std::int64_t>(kRuntimeProbeSchemaVersion)));
  out.set("experiment", JsonValue("runtime_probes"));
  out.set("protocol", JsonValue(meta.protocol));
  out.set("n", JsonValue(std::uint64_t{meta.n}));
  out.set("wheel_tick_us", JsonValue(meta.wheel_tick_us));
  out.set("workers", JsonValue(std::uint64_t{meta.workers}));

  JsonValue threads = JsonValue::array();
  threads.reserve(logs.size());
  for (const ThreadProbeLog& log : logs) {
    JsonValue lane = JsonValue::object();
    lane.reserve(3);
    lane.set("thread", JsonValue(std::uint64_t{log.thread}));
    lane.set("dropped", JsonValue(log.dropped));
    JsonValue events = JsonValue::array();
    events.reserve(log.entries.size());
    for (const ProbeEntry& e : log.entries) events.push_back(entry_to_json(e));
    lane.set("events", std::move(events));
    threads.push_back(std::move(lane));
  }
  out.set("threads", std::move(threads));

  JsonValue windows = JsonValue::array();
  windows.reserve(reconfigs.size());
  for (const ReconfigWindow& w : reconfigs) {
    windows.push_back(breakdown_to_json(w));
  }
  out.set("reconfigs", std::move(windows));

  MetricsHub hub(logs.size());
  aggregate_probe_metrics(logs, hub);
  out.set("metrics", hub.to_json());
  return out;
}

RuntimeProbeDoc load_runtime_probes(const std::string& text) {
  const JsonValue json = JsonValue::parse(text);
  ensure(json.at("schema_version").as_int() == kRuntimeProbeSchemaVersion,
         "runtime probe document schema version mismatch (have " +
             std::to_string(json.at("schema_version").as_int()) + ", want " +
             std::to_string(kRuntimeProbeSchemaVersion) + ")");
  RuntimeProbeDoc doc;
  doc.meta.protocol = json.at("protocol").as_string();
  doc.meta.n = static_cast<std::uint32_t>(json.at("n").as_uint());
  doc.meta.wheel_tick_us = json.at("wheel_tick_us").as_uint();
  const JsonValue* workers = json.find("workers");
  doc.meta.workers =
      workers == nullptr ? 0 : static_cast<std::uint32_t>(workers->as_uint());
  for (const JsonValue& lane : json.at("threads").as_array()) {
    ThreadProbeLog log;
    log.thread = static_cast<std::uint32_t>(lane.at("thread").as_uint());
    log.dropped = lane.at("dropped").as_uint();
    for (const JsonValue& e : lane.at("events").as_array()) {
      log.entries.push_back(entry_from_json(e));
    }
    doc.threads.push_back(std::move(log));
  }
  for (const JsonValue& w : json.at("reconfigs").as_array()) {
    ReconfigWindow window;
    window.verb = w.at("verb").as_string();
    window.t0_ns = w.at("t0_ns").as_uint();
    window.t1_ns = w.at("t1_ns").as_uint();
    window.critical_thread =
        static_cast<std::uint32_t>(w.at("critical_thread").as_uint());
    window.phases.wall_ns = w.at("wall_ns").as_uint();
    window.phases.queued_ns = w.at("queued_ns").as_uint();
    window.phases.parked_ns = w.at("parked_ns").as_uint();
    window.phases.executing_ns = w.at("executing_ns").as_uint();
    window.phases.timer_slop_ns = w.at("timer_slop_ns").as_uint();
    window.phases.unattributed_ns = w.at("unattributed_ns").as_uint();
    doc.reconfigs.push_back(std::move(window));
  }
  doc.metrics = json.at("metrics");
  return doc;
}

// -- Chrome export ------------------------------------------------------------

namespace {

std::string lane_name(std::uint32_t thread, std::uint32_t workers) {
  if (thread == kControllerLane) return "ctl";
  return (workers > 0 ? "w" : "p") + std::to_string(thread);
}

JsonValue chrome_slice(const std::string& name, std::uint64_t tid,
                       std::uint64_t t_ns, std::uint64_t dur_ns) {
  JsonValue e = JsonValue::object();
  e.reserve(6);
  e.set("name", JsonValue(name));
  e.set("ph", JsonValue("X"));
  e.set("pid", JsonValue(std::uint64_t{1}));
  e.set("tid", JsonValue(tid));
  e.set("ts", JsonValue(t_ns / 1000));
  e.set("dur", JsonValue(dur_ns / 1000));
  return e;
}

JsonValue chrome_instant(const std::string& name, std::uint64_t tid,
                         std::uint64_t t_ns) {
  JsonValue e = JsonValue::object();
  e.reserve(6);
  e.set("name", JsonValue(name));
  e.set("ph", JsonValue("i"));
  e.set("s", JsonValue("t"));
  e.set("pid", JsonValue(std::uint64_t{1}));
  e.set("tid", JsonValue(tid));
  e.set("ts", JsonValue(t_ns / 1000));
  return e;
}

}  // namespace

JsonValue runtime_probe_chrome_json(const RuntimeProbeDoc& doc) {
  JsonValue events = JsonValue::array();

  JsonValue process_meta = JsonValue::object();
  process_meta.set("name", JsonValue("process_name"));
  process_meta.set("ph", JsonValue("M"));
  process_meta.set("pid", JsonValue(std::uint64_t{1}));
  JsonValue process_args = JsonValue::object();
  std::string run_name =
      "dynvote-runtime " + doc.meta.protocol + " n=" + std::to_string(doc.meta.n);
  if (doc.meta.workers > 0) {
    run_name += " pool W=" + std::to_string(doc.meta.workers);
  }
  process_args.set("name", JsonValue(run_name));
  process_meta.set("args", std::move(process_args));
  events.push_back(std::move(process_meta));

  // Pool runs map one tid per worker; handler entries carry the handling
  // process in `link`, so each slice is named for its process — adjacent
  // slices on a worker lane get per-process colors in the viewer.
  const bool pool = doc.meta.workers > 0;
  auto handler_name = [&](const char* base, const ProbeEntry& e) {
    if (pool && e.link != kNoLane && e.link != kControllerLane) {
      return std::string(base) + " p" + std::to_string(e.link);
    }
    return std::string(base);
  };

  for (const ThreadProbeLog& log : doc.threads) {
    JsonValue thread_meta = JsonValue::object();
    thread_meta.set("name", JsonValue("thread_name"));
    thread_meta.set("ph", JsonValue("M"));
    thread_meta.set("pid", JsonValue(std::uint64_t{1}));
    thread_meta.set("tid", JsonValue(std::uint64_t{log.thread}));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue(lane_name(log.thread, doc.meta.workers)));
    thread_meta.set("args", std::move(args));
    events.push_back(std::move(thread_meta));

    const std::uint64_t tid = log.thread;
    for (const ProbeEntry& e : log.entries) {
      switch (e.kind) {
        case ProbeKind::kHandlerMessage:
          events.push_back(
              chrome_slice(handler_name("h:msg", e), tid, e.t_ns, e.value));
          break;
        case ProbeKind::kHandlerControl:
          events.push_back(
              chrome_slice(handler_name("h:ctl", e), tid, e.t_ns, e.value));
          break;
        case ProbeKind::kHandlerTimer:
          events.push_back(
              chrome_slice(handler_name("h:timer", e), tid, e.t_ns, e.value));
          break;
        case ProbeKind::kParked:
          events.push_back(chrome_slice("parked", tid, e.t_ns, e.value));
          break;
        case ProbeKind::kTimerSlop:
          events.push_back(chrome_slice("timer-slop", tid, e.t_ns, e.value));
          break;
        case ProbeKind::kLinkPop:
        case ProbeKind::kControlPop:
          // The item's ring residence, drawn on the consuming lane.
          if (e.value != 0 && e.value <= e.t_ns) {
            events.push_back(
                chrome_slice("queued", tid, e.t_ns - e.value, e.value));
          }
          break;
        case ProbeKind::kLinkPushFailed:
          events.push_back(chrome_instant("backpressure", tid, e.t_ns));
          break;
        case ProbeKind::kTimerFire:
          events.push_back(chrome_instant("timer-fire", tid, e.t_ns));
          break;
        case ProbeKind::kHandoff:
          events.push_back(chrome_instant("handoff", tid, e.t_ns));
          break;
        default:
          break;
      }
    }
  }

  for (std::size_t i = 0; i < doc.reconfigs.size(); ++i) {
    const ReconfigWindow& w = doc.reconfigs[i];
    const std::string id = "reconfig-" + std::to_string(i);
    JsonValue begin = JsonValue::object();
    begin.set("name", JsonValue("reconfig:" + w.verb));
    begin.set("cat", JsonValue("reconfig"));
    begin.set("ph", JsonValue("b"));
    begin.set("id", JsonValue(id));
    begin.set("pid", JsonValue(std::uint64_t{1}));
    begin.set("tid", JsonValue(std::uint64_t{w.critical_thread}));
    begin.set("ts", JsonValue(w.t0_ns / 1000));
    events.push_back(std::move(begin));
    JsonValue end = JsonValue::object();
    end.set("name", JsonValue("reconfig:" + w.verb));
    end.set("cat", JsonValue("reconfig"));
    end.set("ph", JsonValue("e"));
    end.set("id", JsonValue(id));
    end.set("pid", JsonValue(std::uint64_t{1}));
    end.set("tid", JsonValue(std::uint64_t{w.critical_thread}));
    end.set("ts", JsonValue(w.t1_ns / 1000));
    events.push_back(std::move(end));
  }

  JsonValue out = JsonValue::object();
  out.set("displayTimeUnit", JsonValue("ns"));
  out.set("traceEvents", std::move(events));
  return out;
}

}  // namespace dynvote::obs
