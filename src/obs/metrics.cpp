#include "obs/metrics.hpp"

#include <bit>

namespace dynvote::obs {

Histogram::Histogram() : buckets_(64, 0) {}

void Histogram::observe(std::uint64_t value) noexcept {
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  // Bucket i counts values in (2^(i-1), 2^i]; value 0 and 1 land in
  // bucket 0. bit_width(v-1) is the index of the smallest power of two
  // >= v.
  const std::size_t bucket =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
  buckets_[bucket < buckets_.size() ? bucket : buckets_.size() - 1] += 1;
}

void Histogram::reset() noexcept {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  buckets_.assign(buckets_.size(), 0);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, JsonValue(c.value()));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) {
    JsonValue entry = JsonValue::object();
    entry.set("value", JsonValue(g.value()));
    entry.set("max", JsonValue(g.max()));
    gauges.set(name, std::move(entry));
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(h.count()));
    entry.set("sum", JsonValue(h.sum()));
    entry.set("min", JsonValue(h.min()));
    entry.set("max", JsonValue(h.max()));
    entry.set("mean", JsonValue(h.mean()));
    histograms.set(name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace dynvote::obs
