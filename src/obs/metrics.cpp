#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dynvote::obs {

Histogram::Histogram() : buckets_(64, 0) {}

void Histogram::observe(std::uint64_t value) noexcept {
  if (value < min_) min_ = value;  // kNoMin sentinel: any value is below
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  // Bucket i counts values in (2^(i-1), 2^i]; value 0 and 1 land in
  // bucket 0. bit_width(v-1) is the index of the smallest power of two
  // >= v.
  const std::size_t bucket =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
  buckets_[bucket < buckets_.size() ? bucket : buckets_.size() - 1] += 1;
}

double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t count, std::uint64_t min,
                          std::uint64_t max, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count] (1-based): the smallest value with at
  // least `rank` observations at or below it estimates the quantile.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket bounds: [0, 1] for bucket 0, (2^(i-1), 2^i] above. The
    // bucket's observations are assumed evenly spread over the span;
    // interpolate to the position of the target rank.
    const double lower = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    const double upper = std::ldexp(1.0, static_cast<int>(i == 0 ? 0 : i));
    const double within = (rank - before) / static_cast<double>(buckets[i]);
    const double estimate = lower + (upper - lower) * within;
    return std::clamp(estimate, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

double Histogram::quantile(double q) const {
  return histogram_quantile(buckets_, count_, min(), max_, q);
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size();
       ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::reset() noexcept {
  count_ = 0;
  sum_ = 0;
  min_ = kNoMin;  // back to the no-observations sentinel, not a stale
                  // (or fake-zero) minimum — merges after a reset must
                  // treat this histogram as empty
  max_ = 0;
  buckets_.assign(buckets_.size(), 0);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).merge_from(c);
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).merge_from(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge_from(h);
  }
}

namespace {

/// Unit metadata for exported histograms, inferred from the repo's
/// naming convention (histogram names end in their unit). Consumers
/// (dvtrace tables) read the explicit "unit" key instead of re-guessing
/// from the name; names outside the convention export no unit.
std::string_view histogram_unit(std::string_view name) {
  for (const std::string_view unit : {"ticks", "ns", "us", "bytes"}) {
    if (name.size() > unit.size() + 1 &&
        name.ends_with(unit) &&
        name[name.size() - unit.size() - 1] == '_') {
      return unit;
    }
  }
  return {};
}

}  // namespace

JsonValue MetricsRegistry::to_json() const {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, JsonValue(c.value()));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) {
    JsonValue entry = JsonValue::object();
    entry.set("value", JsonValue(g.value()));
    entry.set("max", JsonValue(g.max()));
    gauges.set(name, std::move(entry));
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(h.count()));
    entry.set("sum", JsonValue(h.sum()));
    entry.set("min", JsonValue(h.min()));
    entry.set("max", JsonValue(h.max()));
    entry.set("mean", JsonValue(h.mean()));
    const std::string_view unit = histogram_unit(name);
    if (!unit.empty()) entry.set("unit", JsonValue(unit));
    if (h.count() != 0) {
      // Sparse [index, count] pairs: enough for offline quantile
      // recomputation (histogram_quantile) without 64 mostly-zero
      // entries per histogram.
      JsonValue buckets = JsonValue::array();
      for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (h.buckets()[i] == 0) continue;
        JsonValue pair = JsonValue::array();
        pair.push_back(JsonValue(std::uint64_t{i}));
        pair.push_back(JsonValue(h.buckets()[i]));
        buckets.push_back(std::move(pair));
      }
      entry.set("buckets", std::move(buckets));
    }
    histograms.set(name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace dynvote::obs
