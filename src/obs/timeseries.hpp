// Sim-time time series: periodic snapshots of selected hub instruments.
//
// A fleet run is a single virtual timeline; knowing only the end-of-run
// totals hides *when* a shard stalled. The sampler snapshots selected
// instruments from a MetricsHub on a configurable sim-time tick:
// tracked counters are summed across groups and carry a windowed rate
// (delta per virtual second since the previous sample — ticks are
// microseconds), tracked gauges report the max across groups. Samples
// land in a ring buffer so long runs stay bounded; evictions are
// counted, never silent.
//
// Determinism: sampling is driven by the simulation (ShardedFleet calls
// sample() at the end of every settle()), values come from the hub's
// deterministic registries, and the JSON export is schema-versioned and
// byte-identical for identical runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/hub.hpp"
#include "util/ids.hpp"
#include "util/json.hpp"

namespace dynvote::obs {

/// Version stamped into every time-series JSON export; bump on any
/// incompatible change to the payload shape.
inline constexpr int kTimeSeriesSchemaVersion = 1;

struct TimeSeriesOptions {
  /// Minimum sim-time spacing between retained samples (virtual ticks =
  /// microseconds). Calls inside the window are dropped, so callers may
  /// sample opportunistically (e.g. after every settle).
  SimTime tick = 2'000;
  /// Ring bound on retained samples (0 = unbounded).
  std::size_t capacity = 512;
};

class TimeSeriesSampler {
 public:
  /// The hub must outlive the sampler.
  TimeSeriesSampler(const MetricsHub& hub, TimeSeriesOptions options);

  /// Tracks a counter by name: each sample records the cross-group sum
  /// and the windowed rate (delta / elapsed virtual seconds). Call at
  /// wiring time, before the first sample.
  void track_counter(std::string name);
  /// Tracks a gauge by name: each sample records the cross-group max of
  /// the current level.
  void track_gauge(std::string name);

  /// Takes a sample at sim-time `now` unless the previous retained
  /// sample is closer than the tick spacing (the first sample is always
  /// retained). Out-of-order calls (now below the last sample) are
  /// dropped.
  void sample(SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  /// Samples evicted by the ring bound.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// {"schema_version", "tick", "dropped", "times": [...],
  ///  "counters": {name: {"values": [...], "rates": [...]}},
  ///  "gauges": {name: {"values": [...]}}}. Column order follows
  /// track_* registration order; rows are sample order.
  [[nodiscard]] JsonValue to_json() const;

 private:
  struct Row {
    SimTime time = 0;
    std::vector<std::uint64_t> counter_values;
    std::vector<double> counter_rates;  // per virtual second
    std::vector<std::int64_t> gauge_values;
  };

  const MetricsHub& hub_;
  TimeSeriesOptions options_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::deque<Row> rows_;
  bool have_sample_ = false;
  SimTime last_time_ = 0;
  std::vector<std::uint64_t> last_counters_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dynvote::obs
