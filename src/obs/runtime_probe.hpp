// Wall-clock probe rings for the thread-per-process runtime backend.
//
// The DES observability spine (TraceSink -> MetricsHub -> FlightRecorder)
// speaks simulated time; the runtime backend (runtime/thread_transport.hpp)
// runs on real threads, where the interesting questions are wall-clock
// ones: how long did a message sit in its SPSC ring, how long was a
// thread parked, how late did a timer fire, where did a reconfiguration's
// microseconds actually go. ProbeRing answers them without perturbing the
// system under test:
//
//  * one ring per thread, written only by its owning thread — lock-free
//    by construction, no atomics on the record path;
//  * zero allocation after construction: fixed-size POD entries in a
//    preallocated ring, overwritten in place oldest-first (the
//    FlightRecorder discipline, flattened to PODs);
//  * nanosecond timestamps on a shared epoch (the transport's start), so
//    entries from different threads merge into one timeline;
//  * every entry is stamped {thread (implicit: the ring), link, eid} —
//    eid is the recording process's latest protocol-trace event id, the
//    join key back into the causal trace.
//
// Reading a ring is the cold path and is only safe from the owning
// thread (run_on + quiesce) or after the transport has joined; the
// runtime exposes snapshots through RuntimeFleet::probe_logs().
//
// On top of the raw rings this header provides the offline analyses:
// per-thread metric aggregation into a MetricsHub (one child per lane,
// so rollup() and the JSON export work unchanged), the reconfiguration
// phase breakdown (queued / parked / executing / timer-slop attribution
// of a wall-clock window), and the schema-versioned JSON document that
// `dvtrace runtime` renders and exports as a Chrome trace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hub.hpp"
#include "util/json.hpp"

namespace dynvote::obs {

/// Version stamped into runtime_probes_json(); bump on any incompatible
/// change to the probe-document shape. v2: pool-scheduler kinds
/// (batch / run_queue / handoff), `workers` in the meta (0 = one lane
/// per process, >0 = per-worker lanes with handler entries stamping the
/// handling process in `link`).
inline constexpr int kRuntimeProbeSchemaVersion = 2;

/// `link` value for "the controller lane" (pushes from / pops of the
/// control queue) and for entries with no peer at all (parks, timers).
inline constexpr std::uint16_t kControllerLane = 0xFFFF;
inline constexpr std::uint16_t kNoLane = 0xFFFE;

enum class ProbeKind : std::uint8_t {
  kLinkPush,        // data-link push; value = producer-side depth after push
  kLinkPushFailed,  // backpressure episode; t = first failed push,
                    // value = stall duration ns until the push landed
  kLinkPop,         // data-link pop; value = queue wait ns (pop - send)
  kControlPush,     // control-queue push (controller ring); value = depth
  kControlPop,      // control-queue pop; value = queue wait ns
  kParked,          // t = park start, value = parked ns (for timer-bounded
                    // naps: only the portion before the deadline)
  kTimerSlop,       // t = deadline, value = ns spent asleep past it
  kWakeup,          // t = wake, value = ns from the last notify to running
  kTimerSchedule,   // value = requested delay ns
  kTimerFire,       // value = fire slop ns (fire time - deadline)
  kHandlerMessage,  // t = begin, value = handler duration ns
  kHandlerControl,  // t = begin, value = handler duration ns
  kHandlerTimer,    // t = begin, value = duration of a firing advance()
  // Pool-scheduler kinds (per-worker lanes; schema v2):
  kBatch,           // one batched inbox drain; value = batch size,
                    // link = source lane (sender / source worker)
  kRunQueue,        // local run-queue sample; value = depth after a
                    // same-worker fast-path enqueue
  kHandoff,         // cross-worker push; value = ring depth after push,
                    // link = destination worker
};

[[nodiscard]] std::string_view to_string(ProbeKind kind);
/// Inverse of to_string; throws InvariantViolation on an unknown name.
[[nodiscard]] ProbeKind probe_kind_from_string(std::string_view name);

/// 32-byte POD ring slot. Interval-shaped kinds stamp `t_ns` with the
/// interval START and `value` with its duration, so entries appear in
/// the ring ordered by completion but reconstruct exact intervals.
/// Deliberately no member initializers: ProbeRing allocates its slots
/// uninitialized (a 2MB default ring would otherwise cost milliseconds
/// of zeroing per thread at fleet construction, dwarfing the probes'
/// own runtime cost). Value-initialize (`ProbeEntry{}`) when a zeroed
/// entry is needed.
struct ProbeEntry {
  std::uint64_t t_ns;   // ns since transport start
  std::uint64_t value;  // kind-specific payload (see ProbeKind)
  std::uint64_t eid;    // recorder's latest trace eid (0 = none yet)
  std::uint16_t link;   // peer lane: push = destination, pop = source
  ProbeKind kind;

  friend bool operator==(const ProbeEntry&, const ProbeEntry&) = default;
};

/// Single-writer overwrite-in-place ring of ProbeEntry. All methods are
/// owner-thread only (snapshot additionally allowed after the owning
/// thread joined); the ring itself never synchronizes.
class ProbeRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 16.
  explicit ProbeRing(std::size_t min_capacity);

  void record(ProbeKind kind, std::uint64_t t_ns, std::uint64_t value,
              std::uint16_t link, std::uint64_t eid) noexcept {
    ProbeEntry& slot = slots_[next_ & mask_];
    slot.t_ns = t_ns;
    slot.value = value;
    slot.eid = eid;
    slot.link = link;
    slot.kind = kind;
    ++next_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Total entries ever recorded (retained + evicted).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return next_; }
  /// Entries overwritten by newer ones.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return next_ > capacity() ? next_ - capacity() : 0;
  }

  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<ProbeEntry> snapshot() const;

 private:
  /// Uninitialized storage on purpose: record() writes every field of a
  /// slot before ++next_, and snapshot() never reads past next_, so no
  /// uninitialized byte is ever observed — and construction costs one
  /// mapping, not a multi-megabyte memset per thread.
  std::unique_ptr<ProbeEntry[]> slots_;
  std::uint64_t mask_ = 0;
  std::uint64_t next_ = 0;
};

/// One lane's snapshot: a process thread (thread = its index) or the
/// controller (thread = kControllerLane).
struct ThreadProbeLog {
  std::uint32_t thread = 0;
  std::uint64_t dropped = 0;
  std::vector<ProbeEntry> entries;  // oldest first
};

/// Where a wall-clock window's nanoseconds went, as seen by ONE thread
/// (phase definitions in docs/OBSERVABILITY.md). Each nanosecond of the
/// window gets exactly one label, by precedence:
///
///   executing > timer_slop > queued > parked > unattributed
///
///  * executing: inside a message/control/timer handler;
///  * timer_slop: asleep past a due timer deadline;
///  * queued: work addressed to this thread was in flight (pushed but
///    not yet popped) while the thread was not executing — covers both
///    ring residence and the tail of a park spent waiting to wake;
///  * parked: idle with nothing pending for this thread;
///  * unattributed: awake outside handlers with nothing measurably
///    queued — loop scan/dispatch overhead. The acceptance gate bounds
///    this residue (< 10% of wall), which is what makes the breakdown
///    falsifiable rather than true by construction.
struct PhaseBreakdown {
  std::uint64_t wall_ns = 0;
  std::uint64_t queued_ns = 0;
  std::uint64_t parked_ns = 0;
  std::uint64_t executing_ns = 0;
  std::uint64_t timer_slop_ns = 0;
  std::uint64_t unattributed_ns = 0;

  friend bool operator==(const PhaseBreakdown&, const PhaseBreakdown&) =
      default;
};

/// Attributes [t0_ns, t1_ns) of the recording thread's time from its
/// probe entries (any order; intervals are clipped to the window).
[[nodiscard]] PhaseBreakdown attribute_window(
    const std::vector<ProbeEntry>& entries, std::uint64_t t0_ns,
    std::uint64_t t1_ns);

/// One reconfiguration as measured by the bench: the window from the
/// topology verb to the last member's formation, attributed on the
/// critical (last-forming) thread.
struct ReconfigWindow {
  std::string verb;  // "partition" | "merge" | ...
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint32_t critical_thread = 0;
  PhaseBreakdown phases;
};

/// Folds raw rings into per-lane metrics. The hub must have exactly
/// logs.size() groups; child i holds lane i's instruments (counters
/// rt.probe.*, histograms rt.probe.*_ns / rt.probe.queue_depth), so the
/// hub's deterministic rollup() and to_json() work unchanged.
void aggregate_probe_metrics(const std::vector<ThreadProbeLog>& logs,
                             MetricsHub& hub);

/// Shape of the run the probes came from (stamped into the document).
struct RuntimeProbeMeta {
  std::string protocol;
  std::uint32_t n = 0;
  std::uint64_t wheel_tick_us = 0;
  /// 0: thread-per-process backend, one lane per process. >0: pool
  /// backend with this many workers — lanes are workers, and handler
  /// entries carry the handling process's index in `link`.
  std::uint32_t workers = 0;
};

/// The schema-versioned document `dvtrace runtime` consumes:
/// {schema_version, experiment:"runtime_probes", protocol, n,
///  wheel_tick_us, threads:[{thread,dropped,events:[...]}],
///  reconfigs:[{verb,t0_ns,...,phase buckets}], metrics: hub JSON}.
[[nodiscard]] JsonValue runtime_probes_json(
    const RuntimeProbeMeta& meta, const std::vector<ThreadProbeLog>& logs,
    const std::vector<ReconfigWindow>& reconfigs);

/// Parsed form of runtime_probes_json (metrics kept as raw JSON — the
/// consumers only re-render it). Throws JsonError on malformed input and
/// InvariantViolation on a schema-version mismatch.
struct RuntimeProbeDoc {
  RuntimeProbeMeta meta;
  std::vector<ThreadProbeLog> threads;
  std::vector<ReconfigWindow> reconfigs;
  JsonValue metrics;
};

[[nodiscard]] RuntimeProbeDoc load_runtime_probes(const std::string& text);

/// Chrome trace-event JSON of a probe document: one tid per lane
/// (thread_name metadata), "X" slices for handlers / parks / slop,
/// instants for backpressure episodes and timer fires, and one async
/// "b"/"e" span per reconfiguration window. Loads in chrome://tracing
/// and Perfetto; `dvtrace runtime --chrome` validates it with the same
/// checker as export-chrome before writing.
[[nodiscard]] JsonValue runtime_probe_chrome_json(const RuntimeProbeDoc& doc);

}  // namespace dynvote::obs
