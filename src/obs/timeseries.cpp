#include "obs/timeseries.hpp"

#include <utility>

namespace dynvote::obs {

TimeSeriesSampler::TimeSeriesSampler(const MetricsHub& hub,
                                     TimeSeriesOptions options)
    : hub_(hub), options_(options) {}

void TimeSeriesSampler::track_counter(std::string name) {
  counter_names_.push_back(std::move(name));
  last_counters_.push_back(0);
}

void TimeSeriesSampler::track_gauge(std::string name) {
  gauge_names_.push_back(std::move(name));
}

void TimeSeriesSampler::sample(SimTime now) {
  if (have_sample_ &&
      (now < last_time_ || now - last_time_ < options_.tick)) {
    return;
  }

  Row row;
  row.time = now;
  row.counter_values.reserve(counter_names_.size());
  row.counter_rates.reserve(counter_names_.size());
  const double elapsed_seconds =
      have_sample_ ? static_cast<double>(now - last_time_) / 1e6 : 0.0;
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    const std::uint64_t value = hub_.group_counter_sum(counter_names_[i]);
    const std::uint64_t delta =
        value >= last_counters_[i] ? value - last_counters_[i] : 0;
    row.counter_values.push_back(value);
    row.counter_rates.push_back(
        elapsed_seconds > 0.0 ? static_cast<double>(delta) / elapsed_seconds
                              : 0.0);
    last_counters_[i] = value;
  }
  row.gauge_values.reserve(gauge_names_.size());
  for (const std::string& name : gauge_names_) {
    std::int64_t level = 0;
    for (std::size_t g = 0; g < hub_.num_groups(); ++g) {
      const auto& gauges = hub_.group(g).gauges();
      const auto it = gauges.find(name);
      if (it != gauges.end() && it->second.value() > level) {
        level = it->second.value();
      }
    }
    row.gauge_values.push_back(level);
  }

  rows_.push_back(std::move(row));
  if (options_.capacity != 0 && rows_.size() > options_.capacity) {
    rows_.pop_front();
    ++dropped_;
  }
  have_sample_ = true;
  last_time_ = now;
}

JsonValue TimeSeriesSampler::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("schema_version", JsonValue(kTimeSeriesSchemaVersion));
  out.set("tick", JsonValue(std::uint64_t{options_.tick}));
  out.set("dropped", JsonValue(dropped_));

  JsonValue times = JsonValue::array();
  times.reserve(rows_.size());
  for (const Row& row : rows_) times.push_back(JsonValue(row.time));
  out.set("times", std::move(times));

  JsonValue counters = JsonValue::object();
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    JsonValue values = JsonValue::array();
    JsonValue rates = JsonValue::array();
    values.reserve(rows_.size());
    rates.reserve(rows_.size());
    for (const Row& row : rows_) {
      values.push_back(JsonValue(row.counter_values[i]));
      rates.push_back(JsonValue(row.counter_rates[i]));
    }
    JsonValue series = JsonValue::object();
    series.set("values", std::move(values));
    series.set("rates", std::move(rates));
    counters.set(counter_names_[i], std::move(series));
  }
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    JsonValue values = JsonValue::array();
    values.reserve(rows_.size());
    for (const Row& row : rows_) {
      values.push_back(JsonValue(row.gauge_values[i]));
    }
    JsonValue series = JsonValue::object();
    series.set("values", std::move(values));
    gauges.set(gauge_names_[i], std::move(series));
  }
  out.set("gauges", std::move(gauges));
  return out;
}

}  // namespace dynvote::obs
