#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/ensure.hpp"

namespace dynvote::obs {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  ensure(options_.num_groups > 0 && options_.group_size > 0,
         "FlightRecorder: need a positive fleet shape");
  ensure(options_.per_group_capacity > 0,
         "FlightRecorder: per-group ring needs capacity");
  rings_.resize(options_.num_groups);
}

void FlightRecorder::note(const TraceEvent& event) {
  std::uint32_t pid = 0;
  switch (event.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDrop:
    case TraceEventKind::kMessageDeliver:
      return;  // per-message events are exactly what we cannot afford
    case TraceEventKind::kTopologyChange:
      // Global event with no acting process; components never span
      // groups, so the first member identifies the group.
      if (event.members.empty()) return;
      pid = event.members.begin()->value();
      break;
    default:
      pid = event.a.value();
      break;
  }
  std::uint32_t group = pid / options_.group_size;
  if (group >= options_.num_groups) group = options_.num_groups - 1;
  GroupRing& ring = rings_[group];
  if (ring.slots.size() < options_.per_group_capacity) {
    ring.slots.push_back(event);
    return;
  }
  // Overwrite-in-place circular buffer: once a slot has held an event,
  // assigning the next one reuses its member-set and detail-string
  // allocations. This path runs for every protocol event of a saturated
  // group, and allocation-free assignment is what keeps the recorder
  // inside the telemetry overhead budget.
  ring.slots[ring.next] = event;
  ring.next = (ring.next + 1) % ring.slots.size();
  ++ring.dropped;
}

std::vector<TraceEvent> FlightRecorder::group_events(
    std::uint32_t group) const {
  ensure(group < rings_.size(), "FlightRecorder: group out of range");
  const GroupRing& ring = rings_[group];
  std::vector<TraceEvent> out;
  out.reserve(ring.slots.size());
  for (std::size_t i = 0; i < ring.slots.size(); ++i) {
    out.push_back(ring.slots[(ring.next + i) % ring.slots.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::dropped(std::uint32_t group) const {
  ensure(group < rings_.size(), "FlightRecorder: group out of range");
  return rings_[group].dropped;
}

JsonValue FlightRecorder::postmortem_json(std::uint32_t group,
                                          std::string_view reason,
                                          SimTime now) const {
  ensure(group < rings_.size(), "FlightRecorder: group out of range");
  const std::vector<TraceEvent> ring = group_events(group);

  JsonValue out = JsonValue::object();
  out.set("schema_version", JsonValue(kPostmortemSchemaVersion));
  out.set("group", JsonValue(std::uint64_t{group}));
  out.set("reason", JsonValue(std::string(reason)));
  out.set("time", JsonValue(now));
  out.set("dropped", JsonValue(rings_[group].dropped));

  std::unordered_map<std::uint64_t, std::size_t> by_eid;
  by_eid.reserve(ring.size());
  JsonValue events = JsonValue::array();
  events.reserve(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    by_eid.emplace(ring[i].eid, i);
    events.push_back(to_json(ring[i]));
  }
  out.set("events", std::move(events));

  // Causal chains for the events a post-mortem reader asks about first:
  // the most recent event, the last formation, and the last abort.
  std::vector<std::uint64_t> anchors;
  const auto add_last = [&](auto&& predicate) {
    for (auto it = ring.rbegin(); it != ring.rend(); ++it) {
      if (!predicate(*it)) continue;
      if (std::find(anchors.begin(), anchors.end(), it->eid) ==
          anchors.end()) {
        anchors.push_back(it->eid);
      }
      return;
    }
  };
  add_last([](const TraceEvent&) { return true; });
  add_last([](const TraceEvent& e) {
    return e.kind == TraceEventKind::kSessionFormed;
  });
  add_last([](const TraceEvent& e) {
    return e.kind == TraceEventKind::kSessionAbort;
  });

  JsonValue chains = JsonValue::array();
  for (const std::uint64_t anchor : anchors) {
    // Walk cause links inside the ring, then reverse to root-first. A
    // cause pointing outside the ring (evicted, or recorded before the
    // recorder attached) truncates the chain.
    std::vector<std::uint64_t> walk;
    bool truncated = false;
    std::uint64_t eid = anchor;
    while (eid != 0) {
      const auto it = by_eid.find(eid);
      if (it == by_eid.end()) {
        truncated = true;
        break;
      }
      walk.push_back(eid);
      eid = ring[it->second].cause;
    }
    JsonValue chain = JsonValue::object();
    chain.set("for", JsonValue(anchor));
    JsonValue eids = JsonValue::array();
    eids.reserve(walk.size());
    for (auto it = walk.rbegin(); it != walk.rend(); ++it) {
      eids.push_back(JsonValue(*it));
    }
    chain.set("eids", std::move(eids));
    chain.set("truncated", JsonValue(truncated));
    chains.push_back(std::move(chain));
  }
  out.set("chains", std::move(chains));
  return out;
}

}  // namespace dynvote::obs
