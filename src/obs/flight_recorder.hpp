// Per-group flight recorder: bounded last-N protocol events per group.
//
// Full tracing at fleet scale is unaffordable — 256 groups x 8 replicas
// exchange millions of messages, and the one global TraceSink ring
// interleaves every group, so by the time a shard misbehaves its events
// have been evicted by everyone else's. The flight recorder keeps a
// small independent ring of *protocol* events (messages are always
// skipped) per group, routed by the dense group-major ProcessId layout,
// and only materializes JSON when something goes wrong: a consistency
// violation or a reconfiguration-latency outlier dumps that group's
// ring as a post-mortem with causal chains — tracing that is affordable
// precisely because it is paid only on failure.
//
// The TraceSink tees every recorded event into the recorder
// (TraceSink::set_flight_recorder); the recorder never interferes with
// the sink's own ring or event ids, so post-mortem eids line up with
// any full trace export of the same run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dynvote::obs {

/// Version stamped into every post-mortem JSON document.
inline constexpr int kPostmortemSchemaVersion = 1;

struct FlightRecorderOptions {
  /// Fleet shape: replica ProcessIds are dense group-major, so
  /// group = pid / group_size (shard/sharded_fleet.hpp).
  std::uint32_t num_groups = 1;
  std::uint32_t group_size = 1;
  /// Ring bound per group (protocol events only).
  std::size_t per_group_capacity = 64;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  /// Routes `event` to its group's ring. Message kinds are skipped
  /// (affordability is the whole point); topology events are routed by
  /// their first member (components never span groups). Called by
  /// TraceSink::record for every retained event.
  void note(const TraceEvent& event);

  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return options_.num_groups;
  }
  /// The ring's surviving events, oldest first (materialized from the
  /// circular buffer; cold path — only post-mortems and tests read it).
  [[nodiscard]] std::vector<TraceEvent> group_events(
      std::uint32_t group) const;
  /// Events evicted from `group`'s ring since construction.
  [[nodiscard]] std::uint64_t dropped(std::uint32_t group) const;

  /// Post-mortem for one group: the ring's events (same single-letter
  /// schema as trace.json) plus causal chains (root-first eid walks,
  /// flagged as truncated when the root's cause was evicted) for the
  /// most recent event and the last formation/abort. `reason` states
  /// what fired (the violation detail or the latency outlier).
  [[nodiscard]] JsonValue postmortem_json(std::uint32_t group,
                                          std::string_view reason,
                                          SimTime now) const;

 private:
  /// Circular buffer, overwritten in place once full: slot assignment
  /// reuses each TraceEvent's heap allocations, so a saturated ring
  /// records allocation-free. `next` is the oldest slot (= the one the
  /// next event overwrites) once size reached capacity.
  struct GroupRing {
    std::vector<TraceEvent> slots;
    std::size_t next = 0;
    std::uint64_t dropped = 0;
  };

  FlightRecorderOptions options_;
  std::vector<GroupRing> rings_;
};

}  // namespace dynvote::obs
