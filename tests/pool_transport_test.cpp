// Tests for the M:N pool backend (src/runtime/pool_transport.*): worker
// clamping, primary formation and fault verbs through RuntimeFleet, the
// determinism contract (byte-identical outcome transcripts at ANY
// worker count, equal to the thread backend and the DES oracle), the
// same-worker fast path vs cross-worker handoff split visible in the
// probe lanes, and a churn stress meant for the TSan pass
// (tools/run_experiments.sh wires the Runtime* prefixes in).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runtime_probe.hpp"
#include "runtime/crosscheck.hpp"
#include "runtime/fleet.hpp"
#include "runtime/pool_transport.hpp"

namespace dynvote::runtime {
namespace {

std::vector<ProcessId> make_ids(std::uint32_t n) {
  std::vector<ProcessId> ids;
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(ProcessId(i));
  return ids;
}

FleetOptions pool_options(std::uint32_t n, std::uint32_t workers,
                          bool probes = false) {
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = n;
  options.backend = RuntimeBackend::kPool;
  options.workers = workers;
  options.runtime.probes = probes;
  return options;
}

// ------------------------------------------------------------- clamping

TEST(RuntimePool, ClampsWorkerCountToProcessRange) {
  // More workers than processes would idle: clamp to n.
  EXPECT_EQ(PoolTransport(make_ids(3), /*workers=*/16).workers(), 3u);
  // Explicit counts inside [1, n] are honored exactly.
  EXPECT_EQ(PoolTransport(make_ids(5), /*workers=*/2).workers(), 2u);
  EXPECT_EQ(PoolTransport(make_ids(5), /*workers=*/5).workers(), 5u);
  // 0 = hardware_concurrency, still clamped to [1, n].
  const std::uint32_t automatic = PoolTransport(make_ids(4), 0).workers();
  EXPECT_GE(automatic, 1u);
  EXPECT_LE(automatic, 4u);
}

// ------------------------------------------------------------ lifecycle

TEST(RuntimePool, FormsOnePrimaryOnStartAndSurvivesVerbs) {
  RuntimeFleet fleet(pool_options(/*n=*/5, /*workers=*/2));
  fleet.start();
  EXPECT_EQ(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);

  ProcessSet left;
  ProcessSet right;
  for (std::uint32_t i = 0; i < 2; ++i) left.insert(ProcessId(i));
  for (std::uint32_t i = 2; i < 5; ++i) right.insert(ProcessId(i));
  fleet.partition({left, right});
  EXPECT_LE(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
  fleet.crash(ProcessId(0));
  EXPECT_FALSE(fleet.transport().alive(ProcessId(0)));
  fleet.recover(ProcessId(0));
  fleet.merge();
  EXPECT_EQ(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
  fleet.stop();
}

// ---------------------------------------------------------- determinism

// The tentpole contract, at worker counts the default cross-check does
// not visit: odd W, W=1 (everything on the fast path), and W=n (every
// message a cross-worker handoff) all reproduce the DES transcript.
TEST(RuntimePool, ByteIdenticalDigestsAtAnyWorkerCount) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const CrossCheckResult result =
        run_scenario(ProtocolKind::kOptimized, /*n=*/5, seed, /*steps=*/10,
                     /*probes=*/false, /*pool_workers=*/{1, 2, 3, 5});
    EXPECT_TRUE(result.digests_equal)
        << "seed " << seed << "\n--- DES ---\n"
        << result.sim_summary << "--- pool (divergent) ---\n"
        << result.pool_divergent_summary;
    ASSERT_EQ(result.pool.size(), 4u);
    for (const PoolCheck& check : result.pool) {
      EXPECT_EQ(check.digest, result.sim_digest)
          << "seed " << seed << " W=" << check.workers;
    }
  }
}

// Probe instrumentation must not perturb pool scheduling decisions:
// probes on or off, every worker count lands on the same digest.
TEST(RuntimePool, ProbesAreDigestNeutral) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const CrossCheckResult off = run_scenario(
        ProtocolKind::kOptimized, 4, seed, 10, /*probes=*/false, {1, 2});
    const CrossCheckResult on = run_scenario(
        ProtocolKind::kOptimized, 4, seed, 10, /*probes=*/true, {1, 2});
    EXPECT_TRUE(on.digests_equal) << "seed " << seed;
    ASSERT_EQ(on.pool.size(), off.pool.size());
    for (std::size_t i = 0; i < on.pool.size(); ++i) {
      EXPECT_EQ(on.pool[i].digest, off.pool[i].digest)
          << "seed " << seed << " W=" << on.pool[i].workers;
    }
  }
}

// --------------------------------------------------------------- probes

TEST(RuntimePool, ProbeLogsHaveOneLanePerWorker) {
  RuntimeFleet fleet(pool_options(/*n=*/4, /*workers=*/2, /*probes=*/true));
  // Static sharding: global index mod W.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.transport().lane_of(ProcessId(i)), i % 2);
  }
  fleet.start();
  ProcessSet left;
  ProcessSet right;
  for (std::uint32_t i = 0; i < 2; ++i) left.insert(ProcessId(i));
  for (std::uint32_t i = 2; i < 4; ++i) right.insert(ProcessId(i));
  fleet.partition({left, right});
  fleet.merge();
  const std::vector<obs::ThreadProbeLog> logs = fleet.probe_logs();
  fleet.stop();

  ASSERT_EQ(logs.size(), 3u);  // 2 worker lanes + controller
  EXPECT_EQ(logs[0].thread, 0u);
  EXPECT_EQ(logs[1].thread, 1u);
  EXPECT_EQ(logs.back().thread, obs::kControllerLane);
  std::uint64_t batches = 0;
  std::uint64_t run_queue = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t handlers = 0;
  for (const obs::ThreadProbeLog& lane : logs) {
    for (const obs::ProbeEntry& e : lane.entries) {
      switch (e.kind) {
        case obs::ProbeKind::kBatch:
          ++batches;
          EXPECT_GT(e.value, 0u);  // batch size
          break;
        case obs::ProbeKind::kRunQueue:
          ++run_queue;
          break;
        case obs::ProbeKind::kHandoff:
          ++handoffs;
          break;
        case obs::ProbeKind::kHandlerMessage:
          ++handlers;
          // The handling process's global index rides in `link` so the
          // Chrome export can color slices per process.
          EXPECT_LT(e.link, 4u);
          break;
        default:
          break;
      }
    }
  }
  // With 4 processes on 2 workers there is both same-worker traffic
  // (p0<->p2 share worker 0) and cross-worker traffic (p0<->p1).
  EXPECT_GT(batches, 0u);
  EXPECT_GT(run_queue, 0u);
  EXPECT_GT(handoffs, 0u);
  EXPECT_GT(handlers, 0u);
}

// W=1 pins every process to one worker: the whole run must ride the
// same-worker fast path — not a single cross-worker handoff.
TEST(RuntimePool, SingleWorkerRunsEntirelyOnFastPath) {
  RuntimeFleet fleet(pool_options(/*n=*/4, /*workers=*/1, /*probes=*/true));
  fleet.start();
  fleet.merge();
  const std::vector<obs::ThreadProbeLog> logs = fleet.probe_logs();
  fleet.stop();

  ASSERT_EQ(logs.size(), 2u);  // 1 worker lane + controller
  std::uint64_t run_queue = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t batches = 0;
  for (const obs::ThreadProbeLog& lane : logs) {
    for (const obs::ProbeEntry& e : lane.entries) {
      if (e.kind == obs::ProbeKind::kRunQueue) ++run_queue;
      if (e.kind == obs::ProbeKind::kHandoff) ++handoffs;
      if (e.kind == obs::ProbeKind::kBatch) ++batches;
    }
  }
  EXPECT_GT(run_queue, 0u);
  EXPECT_EQ(handoffs, 0u);
  EXPECT_EQ(batches, 0u);
}

// --------------------------------------------------------------- stress

// Heavy churn at several worker counts, for the TSan pass: every verb
// runs to quiescence, so completing at all proves no lost wakeup and no
// stuck spill; identical transcripts across W prove the scheduler left
// no fingerprint on the protocol.
TEST(RuntimePool, StressChurnIsDigestStableAcrossWorkerCounts) {
  std::vector<std::string> summaries;
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    RuntimeFleet fleet(pool_options(/*n=*/8, workers));
    fleet.start();
    ProcessSet left;
    ProcessSet right;
    for (std::uint32_t i = 0; i < 4; ++i) left.insert(ProcessId(i));
    for (std::uint32_t i = 4; i < 8; ++i) right.insert(ProcessId(i));
    for (int round = 0; round < 3; ++round) {
      fleet.partition({left, right});
      fleet.crash(ProcessId(7));
      fleet.merge();
      fleet.recover(ProcessId(7));
      fleet.merge();
    }
    EXPECT_EQ(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
    fleet.stop();
    summaries.push_back(fleet.outcome_summary());
  }
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[0], summaries[1]);
  EXPECT_EQ(summaries[0], summaries[2]);
}

}  // namespace
}  // namespace dynvote::runtime
