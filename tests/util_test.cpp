// Unit tests: strong ids, ProcessSet algebra, Rng determinism, Summary
// statistics, Table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/ensure.hpp"
#include "util/ids.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dynvote {
namespace {

TEST(Ids, ProcessIdOrderingFollowsValue) {
  EXPECT_LT(ProcessId(1), ProcessId(2));
  EXPECT_EQ(ProcessId(7), ProcessId(7));
  EXPECT_GT(ProcessId(10), ProcessId(9));
}

TEST(Ids, ViewIdZeroIsInvalid) {
  EXPECT_FALSE(ViewId().valid());
  EXPECT_TRUE(ViewId(1).valid());
}

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(to_string(ProcessId(3)), "p3");
  EXPECT_EQ(to_string(ViewId(12)), "v12");
}

TEST(Ensure, ThrowsWithLocationOnFailure) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  try {
    ensure(false, "broken invariant");
    FAIL() << "ensure did not throw";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(ProcessSet, NormalizesDuplicatesAndOrder) {
  ProcessSet s{ProcessId(3), ProcessId(1), ProcessId(3), ProcessId(2)};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.members()[0], ProcessId(1));
  EXPECT_EQ(s.members()[2], ProcessId(3));
}

TEST(ProcessSet, RangeAndOfBuilders) {
  EXPECT_EQ(ProcessSet::range(3), ProcessSet::of({0, 1, 2}));
  EXPECT_TRUE(ProcessSet::range(0).empty());
}

TEST(ProcessSet, InsertEraseContains) {
  ProcessSet s;
  EXPECT_TRUE(s.insert(ProcessId(5)));
  EXPECT_FALSE(s.insert(ProcessId(5)));
  EXPECT_TRUE(s.contains(ProcessId(5)));
  EXPECT_TRUE(s.erase(ProcessId(5)));
  EXPECT_FALSE(s.erase(ProcessId(5)));
  EXPECT_FALSE(s.contains(ProcessId(5)));
}

TEST(ProcessSet, UnionIntersectionDifference) {
  const auto a = ProcessSet::of({0, 1, 2, 3});
  const auto b = ProcessSet::of({2, 3, 4});
  EXPECT_EQ(a.set_union(b), ProcessSet::of({0, 1, 2, 3, 4}));
  EXPECT_EQ(a.set_intersection(b), ProcessSet::of({2, 3}));
  EXPECT_EQ(a.set_difference(b), ProcessSet::of({0, 1}));
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(ProcessSet::of({9})));
}

TEST(ProcessSet, SubsetChecks) {
  EXPECT_TRUE(ProcessSet::of({1, 2}).is_subset_of(ProcessSet::of({0, 1, 2})));
  EXPECT_FALSE(ProcessSet::of({1, 5}).is_subset_of(ProcessSet::of({0, 1, 2})));
  EXPECT_TRUE(ProcessSet{}.is_subset_of(ProcessSet::of({0})));
}

TEST(ProcessSet, MajorityAndHalf) {
  const auto core = ProcessSet::of({0, 1, 2, 3});
  EXPECT_TRUE(ProcessSet::of({0, 1, 2}).contains_majority_of(core));
  EXPECT_FALSE(ProcessSet::of({0, 1}).contains_majority_of(core));
  EXPECT_TRUE(ProcessSet::of({0, 1}).contains_exact_half_of(core));
  EXPECT_FALSE(ProcessSet::of({0}).contains_exact_half_of(core));
  // Odd-sized set has no exact half.
  EXPECT_FALSE(
      ProcessSet::of({0, 1}).contains_exact_half_of(ProcessSet::of({0, 1, 2})));
}

TEST(ProcessSet, MajorityOfEmptySetIsFalse) {
  EXPECT_FALSE(ProcessSet::of({0}).contains_majority_of(ProcessSet{}));
}

TEST(ProcessSet, MaxMemberAndIndexOf) {
  const auto s = ProcessSet::of({4, 1, 7});
  EXPECT_EQ(s.max_member(), ProcessId(7));
  EXPECT_EQ(ProcessSet{}.max_member(), std::nullopt);
  EXPECT_EQ(s.index_of(ProcessId(1)), 0u);
  EXPECT_EQ(s.index_of(ProcessId(7)), 2u);
  EXPECT_THROW((void)s.index_of(ProcessId(2)), InvariantViolation);
}

TEST(ProcessSet, ToStringRendersSorted) {
  EXPECT_EQ(ProcessSet::of({2, 0}).to_string(), "{p0,p2}");
  EXPECT_EQ(ProcessSet{}.to_string(), "{}");
}

TEST(ProcessSet, TotalOrderForContainers) {
  std::set<ProcessSet> sets;
  sets.insert(ProcessSet::of({0, 1}));
  sets.insert(ProcessSet::of({0, 2}));
  sets.insert(ProcessSet::of({0, 1}));
  EXPECT_EQ(sets.size(), 2u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Summary, BasicStatistics) {
  Summary s;
  s.add_all({1, 2, 3, 4});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 0.011);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Summary, EmptyAndSingleton) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW((void)s.percentile(0.5), InvariantViolation);
  s.add(42);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Formatting, DoublesAndPercents) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.934123), "93.41%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"proto", "avail"});
  t.add_row({"dv", "99.9%"});
  t.add_separator();
  t.add_row({"static", "80.0%"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| proto  |"), std::string::npos);
  EXPECT_NE(out.find("| dv     |"), std::string::npos);
  EXPECT_NE(out.find("| static |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

}  // namespace
}  // namespace dynvote
