// Whole-stack determinism and the built-in fault modes.
//
// Determinism is the load-bearing property of this reproduction: paired
// protocol comparisons and reproducible experiments both assume that a
// seed fully determines an execution. These tests pin that down at the
// level of the complete event trace, not just final states.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/availability.hpp"
#include "harness/cluster.hpp"
#include "harness/schedule.hpp"
#include "util/ensure.hpp"

namespace dynvote {
namespace {

std::string run_trace(ProtocolKind kind, std::uint64_t sim_seed,
                      std::uint64_t schedule_seed) {
  ScheduleOptions schedule_options;
  schedule_options.seed = schedule_seed;
  schedule_options.duration = 800'000;
  const auto schedule = generate_schedule(ProcessSet::range(5), schedule_options);

  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = sim_seed;
  Cluster cluster(options);
  for (const ScheduleEvent& event : schedule) {
    cluster.sim().queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const auto& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  cluster.merge();
  cluster.settle();

  std::ostringstream out;
  out << cluster.trace().to_string();
  out << "msgs=" << cluster.sim().network().stats().messages_sent
      << " bytes=" << cluster.sim().network().stats().bytes_sent
      << " now=" << cluster.sim().now();
  return out.str();
}

TEST(Determinism, IdenticalSeedsProduceIdenticalTraces) {
  for (ProtocolKind kind :
       {ProtocolKind::kOptimized, ProtocolKind::kCentralized,
        ProtocolKind::kHybridJm}) {
    const std::string a = run_trace(kind, 7, 70);
    const std::string b = run_trace(kind, 7, 70);
    EXPECT_EQ(a, b) << to_string(kind);
  }
}

TEST(Determinism, DifferentSimSeedsChangeTimingsOnly) {
  // Different delivery latencies, same schedule: the trace differs, but
  // safety and final membership agree.
  const std::string a = run_trace(ProtocolKind::kOptimized, 7, 70);
  const std::string b = run_trace(ProtocolKind::kOptimized, 8, 70);
  EXPECT_NE(a, b);
}

TEST(Determinism, ScheduleSeedChangesTheFailurePattern) {
  const std::string a = run_trace(ProtocolKind::kOptimized, 7, 70);
  const std::string b = run_trace(ProtocolKind::kOptimized, 7, 71);
  EXPECT_NE(a, b);
}

// ---- the built-in cluster fault modes ---------------------------------------

TEST(FaultModes, FormationMissLeavesAmbiguousSessionsBehind) {
  ClusterOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 5;
  options.sim.seed = 3;
  options.formation_miss = 1.0;  // every component, every change
  Cluster cluster(options);
  cluster.start();
  // Exactly one member missed the attempt round: 4 primaries, 1 outsider
  // holding the session ambiguous.
  EXPECT_EQ(cluster.primary_members().size(), 4u);
  EXPECT_EQ(cluster.checker().check_all().size(), 0u);
}

TEST(FaultModes, MessageLossModeDropsRoughlyTheConfiguredFraction) {
  ClusterOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 5;
  options.sim.seed = 4;
  options.message_loss = 0.25;
  Cluster cluster(options);
  cluster.start();
  for (int i = 0; i < 30; ++i) {
    cluster.oracle().inject_view(ProcessSet::range(5));
    cluster.settle();
  }
  const auto& stats = cluster.sim().network().stats();
  const double remote =
      static_cast<double>(stats.messages_sent - stats.messages_loopback);
  const double dropped = static_cast<double>(stats.messages_dropped);
  ASSERT_GT(remote, 100.0);
  EXPECT_NEAR(dropped / remote, 0.25, 0.08);
  EXPECT_TRUE(cluster.checker().check_basic().empty());
}

TEST(FaultModes, BothModesTogetherAreRejected) {
  ClusterOptions options;
  options.message_loss = 0.1;
  options.formation_miss = 0.1;
  EXPECT_THROW(Cluster cluster(options), InvariantViolation);
}

TEST(FaultModes, PairedSchedulesAreIdenticalAcrossProtocols) {
  // The availability harness's core promise: the schedule applied to one
  // protocol is byte-identical to the schedule applied to another.
  ScheduleOptions options;
  options.seed = 99;
  const auto a = generate_schedule(ProcessSet::range(7), options);
  const auto b = generate_schedule(ProcessSet::range(7), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
}

TEST(FaultModes, AvailabilityResultsAreReproducible) {
  ClusterOptions base;
  base.n = 5;
  ScheduleOptions schedule;
  schedule.duration = 600'000;
  schedule.seed = 17;
  const auto events = generate_schedule(ProcessSet::range(5), schedule);
  const auto r1 = run_schedule(ProtocolKind::kOptimized, events, base);
  const auto r2 = run_schedule(ProtocolKind::kOptimized, events, base);
  EXPECT_DOUBLE_EQ(r1.availability, r2.availability);
  EXPECT_EQ(r1.formed_sessions, r2.formed_sessions);
  EXPECT_EQ(r1.messages_sent, r2.messages_sent);
  EXPECT_EQ(r1.bytes_sent, r2.bytes_sent);
}

}  // namespace
}  // namespace dynvote
