// The paper's worked executions, replayed exactly (experiments E1-E3).
//
//  * section 1 / 4.5: the "typical problematic scenario" — naive dynamic
//    voting creates two live quorums; the paper's protocol leaves one;
//  * section 4.6: the trivial "record only the last attempt" approach
//    forms S3 and S3' concurrently; the full protocol refuses S3';
//  * section 4.7: exponentially many ambiguous sessions without garbage
//    collection; constant with it (on that execution).
//
// Processes: a..e = p0..p4 throughout.
#include <gtest/gtest.h>

#include "dv/basic_protocol.hpp"
#include "dv/optimized_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

ClusterOptions options_for(ProtocolKind kind, std::uint32_t n = 5,
                           std::uint64_t seed = 3) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = seed;
  return options;
}

const BasicDvProtocol& dv(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(p)));
}

// ---- Section 1 / 4.5: the typical problematic scenario ---------------------

// Runs the scenario steps common to both protocols:
//   1. partition {a,b,c} | {d,e}; c misses the final message of the
//      {a,b,c} session (a and b complete it);
//   2. a,b continue alone as {a,b}; concurrently c joins d,e.
void run_typical_scenario(Cluster& cluster, const std::string& last_msg_type) {
  FaultInjector faults(cluster.sim().network());
  // c (= p2) never receives the session's closing messages from a, b.
  const int rule = faults.drop_to(ProcessId(2), last_msg_type, 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_EQ(faults.dropped(rule), 2u);
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
}

TEST(TypicalScenario, PaperProtocolLeavesExactlyOneLiveQuorum) {
  Cluster cluster(options_for(ProtocolKind::kBasic));
  run_typical_scenario(cluster, "dv.attempt");

  // a and b formed {a,b}; c,d,e refused because c recorded the ambiguous
  // {a,b,c} attempt and {c,d,e} is no Sub_Quorum of it.
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(1)).is_primary());
  for (std::uint32_t p : {2u, 3u, 4u}) {
    EXPECT_FALSE(cluster.protocol(ProcessId(p)).is_primary()) << "p" << p;
  }
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));

  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << to_string(violations);
}

TEST(TypicalScenario, DetachedMemberHoldsTheAmbiguousSession) {
  Cluster cluster(options_for(ProtocolKind::kBasic));
  run_typical_scenario(cluster, "dv.attempt");
  // c's record of the (possibly formed) {a,b,c} session is exactly what
  // blocks {c,d,e} — the paper's key mechanism.
  bool c_holds_abc = false;
  for (const auto& amb : dv(cluster, 2).state().ambiguous) {
    if (amb.session.members == ProcessSet::of({0, 1, 2})) c_holds_abc = true;
  }
  EXPECT_TRUE(c_holds_abc);
  EXPECT_GT(cluster.checker().rejected_sessions(), 0u);
}

TEST(TypicalScenario, NaiveProtocolSplitsIntoTwoLiveQuorums) {
  Cluster cluster(options_for(ProtocolKind::kNaiveDynamic));
  // For the naive one-round protocol the "last message" is the info
  // exchange itself.
  run_typical_scenario(cluster, "dv.info");

  // Both sides are live: split brain.
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(1)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(4)).is_primary());
  EXPECT_EQ(cluster.live_primary(), std::nullopt);  // two distinct sessions

  const auto violations = cluster.checker().check_all();
  bool split_brain = false;
  for (const auto& v : violations) split_brain |= (v.kind == "split-brain");
  EXPECT_TRUE(split_brain) << "expected a split-brain violation, got:\n"
                           << to_string(violations);
}

TEST(TypicalScenario, OptimizedProtocolAlsoSafe) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  run_typical_scenario(cluster, "dv.attempt");
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- Section 4.6: the trivial approach ------------------------------------

// Replays the paper's S1/S2/S3/S3' table from the initial configuration
// (everyone starts with Last_Primary = (W0, 0)).
void run_trivial_scenario(Cluster& cluster) {
  FaultInjector faults(cluster.sim().network());

  // S1 = ({a,b,c}, 1): a forms; b and c attempt but detach before
  // forming (they miss the others' attempt messages).
  faults.drop_to(ProcessId(1), "dv.attempt", 2);
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();

  // S2 = ({b,c,d}, 2): c and d attempt; b detaches before performing the
  // attempt step (misses the info messages).
  faults.drop_to(ProcessId(1), "dv.info", 2);
  cluster.partition({ProcessSet::of({1, 2, 3}), ProcessSet::of({0}),
                     ProcessSet::of({4})});
  cluster.settle();
  faults.clear();

  // S3 = ({a,b}, 2) and S3' = ({c,d,e}, 3), concurrently.
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
}

TEST(TrivialScenario, S1StateMatchesPaperTable) {
  Cluster cluster(options_for(ProtocolKind::kLastAttemptOnly));
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(1), "dv.attempt", 2);
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();

  const Session s1{ProcessSet::of({0, 1, 2}), 1};
  EXPECT_EQ(dv(cluster, 0).state().last_primary, s1);  // a formed S1
  ASSERT_EQ(dv(cluster, 1).state().ambiguous.size(), 1u);
  EXPECT_EQ(dv(cluster, 1).state().ambiguous[0].session, s1);
  ASSERT_EQ(dv(cluster, 2).state().ambiguous.size(), 1u);
  EXPECT_EQ(dv(cluster, 2).state().ambiguous[0].session, s1);
}

TEST(TrivialScenario, LastAttemptOnlyFormsTwoConcurrentPrimaries) {
  Cluster cluster(options_for(ProtocolKind::kLastAttemptOnly));
  run_trivial_scenario(cluster);

  // S3 = ({a,b}, 2) — legal successor of S1.
  const auto s3 = dv(cluster, 0).state().last_primary;
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(s3->members, ProcessSet::of({0, 1}));
  EXPECT_EQ(s3->number, 2);
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());

  // S3' = ({c,d,e}, 3) — formed because c forgot S1 (kept only S2).
  const auto s3p = dv(cluster, 2).state().last_primary;
  ASSERT_TRUE(s3p.has_value());
  EXPECT_EQ(s3p->members, ProcessSet::of({2, 3, 4}));
  EXPECT_EQ(s3p->number, 3);
  EXPECT_TRUE(cluster.protocol(ProcessId(2)).is_primary());

  // Two concurrent live disjoint primaries: the checker must object.
  const auto violations = cluster.checker().check_all();
  bool split_brain = false;
  for (const auto& v : violations) split_brain |= (v.kind == "split-brain");
  EXPECT_TRUE(split_brain) << to_string(violations);
}

TEST(TrivialScenario, FullProtocolRefusesS3Prime) {
  Cluster cluster(options_for(ProtocolKind::kBasic));
  run_trivial_scenario(cluster);

  // S3 forms as before...
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(1)).is_primary());
  // ...but c still remembers S1 = {a,b,c}, and {c,d,e} is no Sub_Quorum
  // of it: S3' is refused.
  EXPECT_FALSE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(4)).is_primary());

  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(TrivialScenario, OptimizedProtocolAlsoRefusesS3Prime) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  run_trivial_scenario(cluster);
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- Section 4.7: the exponential example ----------------------------------

// Drives the paper's execution: G = the first ceil((n+1)/2) processes;
// for every subset G_i of the rest, a session with membership G ∪ G_i in
// which only p0 completes the attempt step (everyone else misses the
// info messages and "detaches"). p0's Ambiguous_Sessions then holds one
// entry per distinct membership.
std::size_t run_exponential_example(Cluster& cluster, std::uint32_t n) {
  const std::uint32_t g_size = (n + 2) / 2;  // ceil((n+1)/2)
  ProcessSet g;
  for (std::uint32_t i = 0; i < g_size; ++i) g.insert(ProcessId(i));
  const std::uint32_t tail = n - g_size;

  FaultInjector faults(cluster.sim().network());
  for (std::uint32_t bits = 0; bits < (1u << tail); ++bits) {
    ProcessSet members = g;
    for (std::uint32_t b = 0; b < tail; ++b) {
      if (bits & (1u << b)) members.insert(ProcessId(g_size + b));
    }
    // Everyone but p0 misses the step-1 exchange, so only p0 attempts.
    faults.clear();
    for (ProcessId p : members) {
      if (p != ProcessId(0)) faults.drop_to(p, "dv.info");
    }
    std::vector<ProcessSet> groups{members};
    for (std::uint32_t q = 0; q < n; ++q) {
      if (!members.contains(ProcessId(q))) {
        groups.push_back(ProcessSet{ProcessId(q)});
      }
    }
    cluster.partition(groups);
    cluster.settle();
  }
  faults.clear();
  return dv(cluster, 0).max_ambiguous_recorded();
}

TEST(ExponentialExample, BasicProtocolRecordsExponentiallyMany) {
  // With |G| = ceil((n+1)/2), the execution visits 2^(n - |G|) distinct
  // memberships; for odd n that is the paper's 2^⌊n/2⌋.
  for (std::uint32_t n : {4u, 5u, 6u, 7u, 8u}) {
    Cluster cluster(options_for(ProtocolKind::kBasic, n));
    const std::size_t recorded = run_exponential_example(cluster, n);
    const std::size_t expected = 1u << (n - (n + 2) / 2);
    EXPECT_EQ(recorded, expected) << "n=" << n;
    if (n % 2 == 1) {
      EXPECT_EQ(recorded, 1u << (n / 2)) << "paper formula, n=" << n;
    }
  }
}

TEST(ExponentialExample, OptimizedProtocolStaysSmallOnSameExecution) {
  // The members of G return in every session carrying no record of the
  // previous attempts, so the optimized protocol resolves each previous
  // attempt as formed-by-nobody and deletes it.
  for (std::uint32_t n : {4u, 5u, 6u, 7u, 8u}) {
    Cluster cluster(options_for(ProtocolKind::kOptimized, n));
    const std::size_t recorded = run_exponential_example(cluster, n);
    EXPECT_LE(recorded, 2u) << "n=" << n;
  }
}

TEST(ExponentialExample, GarbageCollectionActuallyDeletes) {
  Cluster cluster(options_for(ProtocolKind::kOptimized, 6));
  run_exponential_example(cluster, 6);
  const auto& proto =
      dynamic_cast<const OptimizedDvProtocol&>(cluster.protocol(ProcessId(0)));
  EXPECT_GT(proto.gc_deletions(), 0u);
}

}  // namespace
}  // namespace dynvote
