// Tests for the perf-critical data structures and the parallel sweep:
//
//   - ProcessSet's inline-bitset fast paths pinned to a std::set model
//     on randomized inputs straddling the 256-id boundary, so the bitset
//     and sorted-vector representations can never diverge silently;
//   - EventQueue tombstone cancellation and the drained-vs-event-limit
//     distinction of drain();
//   - the sweep runner's determinism contract: index-ordered results,
//     identical output at any thread count (including the full E1
//     trace.json byte-for-byte through a 4-thread pool), and exception
//     propagation;
//   - trace_json_string as a byte-identical fast path for
//     trace_to_json(...).dump().
#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "harness/trace_replay.hpp"
#include "sim/event_queue.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

// ---------------------------------------------------------------------------
// ProcessSet: bitset fast paths vs a std::set<uint32_t> model.

using Model = std::set<std::uint32_t>;

ProcessSet from_model(const Model& m) {
  ProcessSet s;
  for (const std::uint32_t id : m) s.insert(ProcessId(id));
  return s;
}

/// Random model set. `max_id` above ProcessSet::kSmallIdLimit produces
/// sets that straddle the boundary, forcing the sorted-vector fallback.
Model random_model(Rng& rng, std::uint32_t max_id) {
  Model m;
  const std::uint64_t count = rng.next_below(12);
  for (std::uint64_t i = 0; i < count; ++i) {
    m.insert(static_cast<std::uint32_t>(rng.next_below(max_id)));
  }
  return m;
}

Model model_union(const Model& a, const Model& b) {
  Model out = a;
  out.insert(b.begin(), b.end());
  return out;
}

Model model_intersection(const Model& a, const Model& b) {
  Model out;
  for (const std::uint32_t id : a) {
    if (b.count(id) != 0) out.insert(id);
  }
  return out;
}

Model model_difference(const Model& a, const Model& b) {
  Model out;
  for (const std::uint32_t id : a) {
    if (b.count(id) == 0) out.insert(id);
  }
  return out;
}

void expect_matches_model(const ProcessSet& s, const Model& m) {
  ASSERT_EQ(s.size(), m.size());
  auto it = m.begin();
  for (const ProcessId p : s) {
    EXPECT_EQ(p.value(), *it) << "iteration order diverged from the model";
    ++it;
  }
  const bool all_small = std::all_of(m.begin(), m.end(), [](std::uint32_t id) {
    return id < ProcessSet::kSmallIdLimit;
  });
  EXPECT_EQ(s.uses_bitset(), all_small);
  if (m.empty()) {
    EXPECT_FALSE(s.max_member().has_value());
  } else {
    ASSERT_TRUE(s.max_member().has_value());
    EXPECT_EQ(s.max_member()->value(), *m.rbegin());
  }
}

TEST(ProcessSetProperty, PredicatesAgreeWithModelAcrossTheBitsetBoundary) {
  Rng rng(20260805);
  // max_id 40: pure-bitset pairs. max_id 320: pairs where one or both
  // sets spill past kSmallIdLimit and take the sorted-vector fallback.
  for (const std::uint32_t max_id : {40u, 320u}) {
    for (int round = 0; round < 500; ++round) {
      const Model ma = random_model(rng, max_id);
      const Model mb = random_model(rng, max_id);
      const ProcessSet a = from_model(ma);
      const ProcessSet b = from_model(mb);
      expect_matches_model(a, ma);
      expect_matches_model(b, mb);

      EXPECT_EQ(a.intersection_size(b), model_intersection(ma, mb).size());
      EXPECT_EQ(a.intersects(b), !model_intersection(ma, mb).empty());
      EXPECT_EQ(a.is_subset_of(b),
                std::includes(mb.begin(), mb.end(), ma.begin(), ma.end()));
      EXPECT_EQ(a.contains_majority_of(b),
                2 * model_intersection(ma, mb).size() > mb.size());
      EXPECT_EQ(a.contains_exact_half_of(b),
                2 * model_intersection(ma, mb).size() == mb.size());
      for (const std::uint32_t probe : {std::uint32_t{0}, max_id / 2, max_id}) {
        EXPECT_EQ(a.contains(ProcessId(probe)), ma.count(probe) != 0);
      }

      expect_matches_model(a.set_union(b), model_union(ma, mb));
      expect_matches_model(a.set_intersection(b), model_intersection(ma, mb));
      expect_matches_model(a.set_difference(b), model_difference(ma, mb));
    }
  }
}

TEST(ProcessSetProperty, InsertEraseMaintainTheBitsetIncrementally) {
  Rng rng(77);
  Model m;
  ProcessSet s;
  for (int step = 0; step < 2000; ++step) {
    // Cross kSmallIdLimit in both directions: an insert of a large id
    // must drop the set to the vector representation, and erasing the
    // last large id must restore the bitset.
    const auto id = static_cast<std::uint32_t>(rng.next_below(300));
    if (rng.next_bool(0.6)) {
      EXPECT_EQ(s.insert(ProcessId(id)), m.insert(id).second);
    } else {
      EXPECT_EQ(s.erase(ProcessId(id)), m.erase(id) != 0);
    }
    expect_matches_model(s, m);
  }
}

// ---------------------------------------------------------------------------
// EventQueue: tombstones and the drain() status.

TEST(EventQueuePerf, CancelledEventsNeverRun) {
  sim::EventQueue q;
  std::vector<int> order;
  const sim::EventToken a = q.schedule_at(10, [&] { order.push_back(1); });
  const sim::EventToken b = q.schedule_at(20, [&] { order.push_back(2); });
  q.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b)) << "second cancel of the same token";
  EXPECT_EQ(q.pending(), 2u);
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_FALSE(q.cancel(a)) << "cancel after the event ran";
}

TEST(EventQueuePerf, DrainDistinguishesEventLimitFromDrained) {
  sim::EventQueue q;
  // A self-rescheduling event: each run schedules the next, so the queue
  // never drains on its own.
  std::function<void()> reschedule = [&] { q.schedule_after(1, [&] { reschedule(); }); };
  q.schedule_at(0, [&] { reschedule(); });

  const auto limited = q.drain(/*max_events=*/100);
  EXPECT_EQ(limited.executed, 100u);
  EXPECT_EQ(limited.status, sim::EventQueue::DrainStatus::kEventLimit);
  EXPECT_FALSE(q.empty()) << "the runaway schedule still has work pending";

  // Stop the cascade, then the queue must report a genuine drain.
  reschedule = [] {};
  const auto drained = q.drain();
  EXPECT_EQ(drained.status, sim::EventQueue::DrainStatus::kDrained);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Sweep runner.

TEST(Sweep, ResultsLandInIndexOrderAtAnyThreadCount) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial = sweep_map<std::size_t>(64, 1, square);
  const auto pooled = sweep_map<std::size_t>(64, 4, square);
  ASSERT_EQ(serial.size(), 64u);
  EXPECT_EQ(serial, pooled);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], i * i);
}

TEST(Sweep, WorkerExceptionsPropagateToTheCaller) {
  EXPECT_THROW(
      sweep_run(16, 4,
                [](std::size_t i) {
                  if (i == 7) throw std::runtime_error("cell 7 failed");
                }),
      std::runtime_error);
}

TEST(Sweep, ZeroJobsIsANoOp) {
  sweep_run(0, 4, [](std::size_t) { FAIL() << "no job should run"; });
}

// ---------------------------------------------------------------------------
// E1 through the sweep pool: byte-identical traces.

std::string run_e1_trace(ProtocolKind kind) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 2026;
  options.trace_messages = true;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2),
                 kind == ProtocolKind::kNaiveDynamic ? "dv.info" : "dv.attempt",
                 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  return trace_json_string(cluster.trace_meta(), cluster.sim().trace());
}

TEST(SweepDeterminism, E1TraceJsonIsByteIdenticalThroughTheParallelSweep) {
  const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kNaiveDynamic, ProtocolKind::kBasic,
      ProtocolKind::kOptimized, ProtocolKind::kBasic,
      ProtocolKind::kOptimized, ProtocolKind::kNaiveDynamic,
  };
  const auto job = [&](std::size_t i) { return run_e1_trace(kinds[i]); };
  const auto serial = sweep_map<std::string>(kinds.size(), 1, job);
  const auto pooled = sweep_map<std::string>(kinds.size(), 4, job);
  const auto pooled_again = sweep_map<std::string>(kinds.size(), 4, job);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(pooled, pooled_again);
  // Same protocol, same seed => same trace, even from different workers.
  EXPECT_EQ(serial[1], serial[3]);
  EXPECT_EQ(serial[2], serial[4]);
  EXPECT_FALSE(serial[0].empty());
}

// ---------------------------------------------------------------------------
// trace_json_string: the no-tree export path.

TEST(TraceExport, DirectStringMatchesTreeDumpByteForByte) {
  for (const ProtocolKind kind :
       {ProtocolKind::kBasic, ProtocolKind::kOptimized,
        ProtocolKind::kCentralized, ProtocolKind::kThreePhaseRecovery}) {
    ClusterOptions options;
    options.kind = kind;
    options.n = 6;
    options.sim.seed = 31;
    options.trace_messages = true;
    Cluster cluster(options);
    cluster.partition({ProcessSet::of({0, 1, 2, 3}), ProcessSet::of({4, 5})});
    cluster.settle();
    cluster.partition({ProcessSet::of({0, 5}), ProcessSet::of({1, 2, 3, 4})});
    cluster.settle();
    const std::string direct =
        trace_json_string(cluster.trace_meta(), cluster.sim().trace());
    const std::string via_tree =
        trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump();
    EXPECT_EQ(direct, via_tree);
    // And the loader accepts it: export -> load -> export round-trips.
    const TraceMetaAndEvents loaded = load_trace_json(direct);
    EXPECT_EQ(loaded.events.size(),
              cluster.sim().trace().events().size());
  }
}

}  // namespace
}  // namespace dynvote
